//! Quickstart: trace one simulated workstation for a minute and look at
//! what the filter driver saw.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nt_fs::{NtPath, VolumeConfig};
use nt_io::{
    AccessMode, CreateOptions, DiskParams, Disposition, Machine, MachineConfig, ProcessId,
};
use nt_sim::{SimDuration, SimTime};
use nt_trace::{CollectionServer, MachineId, TraceFilter};

fn main() {
    // A machine with the study's filter driver attached.
    let mut machine = Machine::new(MachineConfig::default(), TraceFilter::new(MachineId(0)));
    let vol = machine.add_local_volume(
        'C',
        VolumeConfig::local_ntfs(2 << 30),
        DiskParams::local_ide(),
    );

    let p = ProcessId(7);
    let t0 = SimTime::from_secs(1);

    // Create a file, write it, read it back, delete it — and watch the
    // two-stage close and the cache at work.
    let (_, handle) = machine.create(
        p,
        vol,
        &NtPath::parse(r"\docs\hello.txt"),
        AccessMode::ReadWrite,
        Disposition::OpenIf,
        CreateOptions::default(),
        t0,
    );
    // The parent directory does not exist yet: the first open fails, just
    // like the failed probes that make up 12 % of the study's opens.
    assert!(handle.is_none(), "no \\docs directory yet");

    let (_, handle) = machine.create(
        p,
        vol,
        &NtPath::parse(r"\hello.txt"),
        AccessMode::ReadWrite,
        Disposition::OpenIf,
        CreateOptions::default(),
        t0 + SimDuration::from_millis(1),
    );
    let handle = handle.expect("open in the root succeeds");
    let mut t = machine
        .write(handle, Some(0), 2_000, t0 + SimDuration::from_millis(2))
        .end;
    for _ in 0..3 {
        t = machine
            .read(handle, Some(0), 512, t + SimDuration::from_micros(90))
            .end;
    }
    machine.close(handle, t + SimDuration::from_millis(1));
    // The lazy writer drains the dirty pages once per second (§9.2).
    for s in 2..8 {
        machine.lazy_tick(SimTime::from_secs(s));
    }

    // Ship the trace to the collection server and read it back.
    let mut server = CollectionServer::new();
    machine.observer_mut().final_flush(&mut server);
    let records = server.records_for(MachineId(0));
    println!("the filter driver recorded {} events:", records.len());
    println!(
        "{:<28} {:>8} {:>9} {:>12}  status",
        "event", "offset", "bytes", "latency"
    );
    for rec in &records {
        println!(
            "{:<28} {:>8} {:>9} {:>9} us  {:?}{}",
            format!("{:?}", rec.kind()),
            rec.offset,
            rec.transferred,
            rec.latency_ticks() / 10,
            rec.status,
            if rec.is_paging() { "  [PagingIO]" } else { "" }
        );
    }
    let m = machine.metrics();
    println!("\nmachine counters:");
    println!("  opens: {} ok / {} failed", m.opens, m.open_failures);
    println!("  reads: {} FastIO / {} IRP", m.fastio_reads, m.irp_reads);
    println!(
        "  paging: {} reads / {} writes",
        m.paging_reads, m.paging_writes
    );
    println!(
        "  cache: {:.0}% hit rate",
        100.0 * machine.cache_metrics().hit_rate()
    );
}
