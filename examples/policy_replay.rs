//! The downstream-user workflow the paper's introduction promises: use
//! the collected traces as input for file-system simulation studies and
//! as configuration for realistic benchmarks.
//!
//! 1. Run a study and collect a trace.
//! 2. Replay the trace under alternative cache policies (§9 ablations).
//! 3. Fit a workload profile and run a profile-driven synthetic bench.
//!
//! ```text
//! cargo run --release --example policy_replay
//! ```

use nt_analysis::profile::fit_profile;
use nt_cache::CacheConfig;
use nt_io::MachineConfig;
use nt_sim::SimDuration;
use nt_study::{compare_policies, ReplayConfig, Study, StudyConfig, SyntheticBench};

fn main() {
    // 1. Collect a trace.
    eprintln!("collecting a trace (5 machines, 5 simulated minutes) ...");
    let data = Study::run(&StudyConfig::smoke_test(7));
    println!(
        "trace: {} records, {} open sessions\n",
        data.total_records,
        data.trace_set.instances.len()
    );

    // 2. Replay it under different cache policies.
    println!("replaying the trace under alternative cache policies:");
    let rows = compare_policies(
        &data.trace_set,
        [
            ("nt-defaults", ReplayConfig::default()),
            (
                "no-read-ahead",
                ReplayConfig {
                    cache: CacheConfig {
                        readahead_enabled: false,
                        ..CacheConfig::default()
                    },
                    ..ReplayConfig::default()
                },
            ),
            (
                "write-through",
                ReplayConfig {
                    cache: CacheConfig {
                        force_write_through: true,
                        ..CacheConfig::default()
                    },
                    ..ReplayConfig::default()
                },
            ),
            (
                "irp-only",
                ReplayConfig {
                    disable_fastio: true,
                    ..ReplayConfig::default()
                },
            ),
            (
                "tiny-cache-256k",
                ReplayConfig {
                    cache_budget_bytes: 256 << 10,
                    ..ReplayConfig::default()
                },
            ),
        ],
    );
    println!(
        "  {:<16} {:>9} {:>8} {:>9} {:>10} {:>10}",
        "policy", "requests", "hit%", "fastio%", "pag.reads", "pag.writes"
    );
    for (label, r) in &rows {
        println!(
            "  {:<16} {:>9} {:>7.0}% {:>8.0}% {:>10} {:>10}",
            label,
            r.replayed_requests,
            100.0 * r.hit_rate(),
            100.0 * r.fastio_read_fraction(),
            r.paging_reads,
            r.paging_writes
        );
    }

    // 3. Fit a profile and drive a synthetic bench from it.
    println!("\nfitting a workload profile from the trace:");
    let profile = fit_profile(&data.trace_set).expect("trace large enough to fit");
    println!(
        "  control fraction {:.0}%, open failures {:.0}%, classes RO/WO/RW {:.0}/{:.0}/{:.0}%",
        100.0 * profile.control_fraction,
        100.0 * profile.open_failure_fraction,
        100.0 * profile.class_shares.0,
        100.0 * profile.class_shares.1,
        100.0 * profile.class_shares.2,
    );
    println!(
        "  read-size median {:.0} B, file-size p90 {:.0} KB, inter-arrival alpha {:.2}",
        profile.read_sizes.median(),
        profile.file_sizes.quantile(0.9) / 1024.0,
        profile.interarrival_alpha
    );
    println!("\nrunning the profile-driven synthetic bench (10 simulated minutes):");
    let mut bench = SyntheticBench::new(profile, MachineConfig::default(), 500, 11);
    let metrics = bench.run(SimDuration::from_secs(600));
    println!(
        "  {} opens, {} reads ({} FastIO), {} writes, {:.1} MB moved",
        metrics.opens,
        metrics.fastio_reads + metrics.irp_reads,
        metrics.fastio_reads,
        metrics.fastio_writes + metrics.irp_writes,
        (metrics.bytes_read + metrics.bytes_written) as f64 / 1.0e6
    );
    let binned = nt_analysis::burstiness::bin_arrivals(&bench.open_ticks, 1);
    println!(
        "  synthetic arrival dispersion at 1 s bins: {:.1} (Poisson would be ~1)",
        binned.dispersion()
    );
}
