//! The downstream-user workflow the paper's introduction promises: use
//! the collected traces as input for file-system simulation studies and
//! as configuration for realistic benchmarks.
//!
//! 1. Run a study and collect a trace.
//! 2. Answer a what-if matrix over it: a baseline policy plus named
//!    variants (§9 ablations and a disk latency-model axis), replayed in
//!    parallel, audited, and differenced against the baseline.
//! 3. Fit a workload profile and run a profile-driven synthetic bench.
//!
//! ```text
//! cargo run --release --example policy_replay
//! ```

use nt_analysis::profile::fit_profile;
use nt_cache::CacheConfig;
use nt_io::{DiskParams, MachineConfig};
use nt_sim::SimDuration;
use nt_study::{ReplayConfig, Study, StudyConfig, SyntheticBench, WhatIfStudy};

fn main() {
    // 1. Collect a trace.
    eprintln!("collecting a trace (5 machines, 5 simulated minutes) ...");
    let data = Study::run(&StudyConfig::smoke_test(7));
    println!(
        "trace: {} records, {} open sessions\n",
        data.total_records,
        data.trace_set.instances.len()
    );

    // 2. The what-if matrix: every variant replayed over every machine
    // on the work-stealing pool, reconciled by the conservation ledger,
    // and differenced against the baseline.
    println!("what-if study: 5 policy variants vs the NT-defaults baseline");
    let report = WhatIfStudy::new(ReplayConfig::default())
        .variant(
            "no-read-ahead",
            ReplayConfig {
                cache: CacheConfig {
                    readahead_enabled: false,
                    ..CacheConfig::default()
                },
                ..ReplayConfig::default()
            },
        )
        .variant(
            "lazy-writer-8s",
            ReplayConfig {
                cache: CacheConfig {
                    lazy_write_interval: SimDuration::from_secs(8),
                    ..CacheConfig::default()
                },
                ..ReplayConfig::default()
            },
        )
        .variant(
            "irp-only",
            ReplayConfig {
                disable_fastio: true,
                ..ReplayConfig::default()
            },
        )
        .variant(
            "tiny-cache-256k",
            ReplayConfig {
                cache_budget_bytes: 256 << 10,
                ..ReplayConfig::default()
            },
        )
        .variant(
            "ssd-class-disk",
            ReplayConfig {
                disk: DiskParams::ssd_class(),
                ..ReplayConfig::default()
            },
        )
        .run_trace_set(&data.trace_set)
        .expect("every variant reconciles");

    println!("\n{}", report.render_summary());

    // The per-machine differential fact tables behind the summary.
    println!("per-machine read-hit movement (variant − baseline):");
    for table in &report.tables {
        let moved: Vec<String> = table
            .rows
            .iter()
            .filter(|r| r.read_hits != 0)
            .map(|r| format!("m{}:{:+}", r.machine, r.read_hits))
            .collect();
        println!(
            "  {:<16} {}",
            table.variant,
            if moved.is_empty() {
                "(no movement)".to_string()
            } else {
                moved.join(" ")
            }
        );
    }
    println!(
        "\ndisk busy time: baseline {} ms vs ssd-class {} ms",
        report.baseline.total.disk_busy_ticks / 10_000,
        report
            .variants
            .iter()
            .find(|v| v.name == "ssd-class-disk")
            .map(|v| v.total.disk_busy_ticks / 10_000)
            .unwrap_or(0)
    );

    // 3. Fit a profile and drive a synthetic bench from it.
    println!("\nfitting a workload profile from the trace:");
    let profile = fit_profile(&data.trace_set).expect("trace large enough to fit");
    println!(
        "  control fraction {:.0}%, open failures {:.0}%, classes RO/WO/RW {:.0}/{:.0}/{:.0}%",
        100.0 * profile.control_fraction,
        100.0 * profile.open_failure_fraction,
        100.0 * profile.class_shares.0,
        100.0 * profile.class_shares.1,
        100.0 * profile.class_shares.2,
    );
    println!(
        "  read-size median {:.0} B, file-size p90 {:.0} KB, inter-arrival alpha {:.2}",
        profile.read_sizes.median(),
        profile.file_sizes.quantile(0.9) / 1024.0,
        profile.interarrival_alpha
    );
    println!("\nrunning the profile-driven synthetic bench (10 simulated minutes):");
    let mut bench = SyntheticBench::new(profile, MachineConfig::default(), 500, 11);
    let metrics = bench.run(SimDuration::from_secs(600));
    println!(
        "  {} opens, {} reads ({} FastIO), {} writes, {:.1} MB moved",
        metrics.opens,
        metrics.fastio_reads + metrics.irp_reads,
        metrics.fastio_reads,
        metrics.fastio_writes + metrics.irp_writes,
        (metrics.bytes_read + metrics.bytes_written) as f64 / 1.0e6
    );
    let binned = nt_analysis::burstiness::bin_arrivals(&bench.open_ticks, 1);
    println!(
        "  synthetic arrival dispersion at 1 s bins: {:.1} (Poisson would be ~1)",
        binned.dispersion()
    );
}
