//! The NTT trace warehouse end to end: export a live study into
//! versioned binary segments, re-ingest them into a fresh analysis run,
//! and prove the two are the same study — bit-identical streaming
//! aggregates and a directly-follows-graph similarity of exactly 1.0.
//! Then the other door in: importing a foreign (strace-style) text
//! trace into the same format.
//!
//! ```text
//! cargo run --release --example warehouse_roundtrip
//! ```

use nt_analysis::dfg::Dfg;
use nt_study::{StreamOptions, Study, StudyConfig};
use nt_warehouse::import_strace;

fn main() {
    let dir = std::env::temp_dir().join(format!("ntt-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- Export: a live smoke-scale study, teed into the warehouse. ---
    eprintln!("running a smoke-scale study with warehouse export ...");
    let config = StudyConfig::smoke_test(17);
    let options = StreamOptions {
        retain: true,
        warehouse: Some(dir.clone()),
        ..StreamOptions::default()
    };
    let live = Study::run_streaming(&config, &options);
    let stats = live.warehouse.as_ref().expect("export enabled");
    println!(
        "exported {} segments, {} records, {} bytes:",
        stats.len(),
        stats.iter().map(|s| s.records).sum::<u64>(),
        stats.iter().map(|s| s.bytes).sum::<u64>(),
    );
    for s in stats {
        println!(
            "  machine-{:05}.ntt  {:>6} records  {:>2} batches  {:>3} names  {:>8} bytes",
            s.machine, s.records, s.batches, s.names, s.bytes
        );
    }

    // --- Re-ingest: the stored segments through a fresh analysis. ---
    let ingest = Study::ingest_warehouse(&dir, &options).expect("warehouse re-ingests");
    println!(
        "\nre-ingested {} records from {} machines",
        ingest.records,
        ingest.machines.len()
    );

    let live_set = live.trace_set.expect("retained");
    let ingest_set = ingest.trace_set.expect("retained");
    let live_dfg = Dfg::of_trace_set(&live_set);
    let back_dfg = Dfg::of_trace_set(&ingest_set);
    println!(
        "records {} == {}, instances {} == {}",
        live_set.records.len(),
        ingest_set.records.len(),
        live_set.instances.len(),
        ingest_set.instances.len(),
    );
    println!(
        "directly-follows graphs: {} cases, {} edges, similarity {:.3}",
        live_dfg.cases,
        live_dfg.edges.len(),
        live_dfg.similarity(&back_dfg)
    );
    assert_eq!(live_dfg.similarity(&back_dfg), 1.0);
    println!("busiest transitions:");
    for ((from, to), count) in live_dfg.top_edges(5) {
        println!("  {from:>2} -> {to:>2}  x{count}");
    }

    // --- Import: a foreign strace-style trace becomes a segment. ---
    let strace = "\
1723111200.000100 openat(AT_FDCWD, \"/var/log/app.log\", O_WRONLY|O_CREAT) = 3\n\
1723111200.000900 write(3, \"...\", 512) = 512\n\
1723111200.001700 write(3, \"...\", 2048) = 2048\n\
1723111200.002500 close(3) = 0\n\
1723111200.003300 openat(AT_FDCWD, \"/etc/app/missing.conf\", O_RDONLY) = -1 ENOENT (No such file or directory)\n\
not a trace line at all\n";
    let import = import_strace(strace.as_bytes(), 900);
    println!(
        "\nstrace import: {} lines, {} imported, {} skipped ({} without a timestamp) -> {} NTT bytes",
        import.ledger.lines,
        import.ledger.imported,
        import.ledger.skipped(),
        import.ledger.bad_timestamp,
        import.segment.len()
    );
    assert!(import.ledger.reconciles(), "every line accounted for");

    let _ = std::fs::remove_dir_all(&dir);
}
