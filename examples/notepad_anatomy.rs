//! The paper's opening anecdote, §1: "When we type a few characters in
//! the notepad text editor, saving this to a file will trigger 26 system
//! calls, including 3 failed open attempts, 1 file overwrite and 4
//! additional file open and close sequences."
//!
//! This example replays that save through the simulated I/O stack and
//! prints the anatomy.
//!
//! ```text
//! cargo run --release --example notepad_anatomy
//! ```

use nt_fs::{NtPath, VolumeConfig};
use nt_io::{AntivirusFilter, DiskParams, Machine, MachineConfig, ProcessId};
use nt_sim::{SimDuration, SimTime};
use nt_trace::{CollectionServer, MachineId, TraceFilter};
use nt_workload::apps::notepad_save;
use nt_workload::plan::run_plan;

fn main() {
    let mut machine = Machine::new(MachineConfig::default(), TraceFilter::new(MachineId(0)));
    // A third-party filter driver above the trace agent, the way §3.2
    // says virus scanners attach: every create and read pays a scan.
    machine.attach_filter(Box::new(AntivirusFilter::new(SimDuration::from_micros(
        200,
    ))));
    let vol = machine.add_local_volume(
        'C',
        VolumeConfig::local_ntfs(1 << 30),
        DiskParams::local_ide(),
    );
    // The document already exists (we are re-saving it).
    {
        let v = machine.namespace_mut().volume_mut(vol).unwrap();
        let root = v.root();
        let docs = v.mkdir(root, "docs", SimTime::ZERO).unwrap();
        let f = v.create_file(docs, "letter.txt", SimTime::ZERO).unwrap();
        v.set_file_size(f, 640, SimTime::ZERO).unwrap();
    }

    let plan = notepad_save(vol, &NtPath::parse(r"\docs\letter.txt"), 900);
    println!("notepad's save plan is {} file-system calls\n", plan.len());

    let stats = run_plan(&mut machine, ProcessId(12), &plan, SimTime::from_secs(1));
    println!(
        "executed: {} operations, {} failed, {} bytes written, finished at {:?}\n",
        stats.ops, stats.failures, stats.bytes_written, stats.end
    );

    let mut server = CollectionServer::new();
    machine.observer_mut().final_flush(&mut server);
    let records = server.records_for(MachineId(0));

    let mut failed_opens = 0;
    let mut overwrites = 0;
    let mut open_close_pairs = 0;
    println!("the trace, as the filter driver saw it:");
    for rec in &records {
        let kind = format!("{:?}", rec.kind());
        let marker = if rec.status.is_error() {
            failed_opens += 1;
            "  <-- failed"
        } else if rec.disposition.map(|d| d.truncates()).unwrap_or(false) {
            overwrites += 1;
            "  <-- the overwrite"
        } else {
            ""
        };
        if kind.contains("Close") {
            open_close_pairs += 1;
        }
        println!("  {kind:<34} {:?}{marker}", rec.status);
    }
    println!("\nanatomy check (vs the paper's 26 calls):");
    println!("  failed open attempts: {failed_opens} (paper: 3)");
    println!("  file overwrites:      {overwrites} (paper: 1)");
    println!("  close IRPs:           {open_close_pairs}");
    println!("  total records:        {}", records.len());

    // The same save, seen by the driver stack: which layer handled each
    // packet, and how much of the work never built an IRP at all.
    println!("\nthe driver stack, top to bottom:");
    for (name, counters) in machine.stack().layers() {
        println!(
            "  {name:<12} completed {:>3}  passed down {:>3}",
            counters.completed, counters.passed
        );
    }
    println!(
        "  {:<12} completed {:>3}  (the FSD at the bottom)",
        "fsd",
        machine.stack().fsd_completed()
    );
    let fastio: usize = records.iter().filter(|r| r.kind().is_fastio()).count();
    println!(
        "\nfast path: {fastio} FastIO calls short-circuited the stack \
         (no IRP built), {} IRPs descended it",
        records.len() - fastio
    );
    let av: &AntivirusFilter = machine.stack().find().expect("attached at startup");
    println!("antivirus layer scanned {} opens/reads", av.scans());
}
