//! The §7 heavy-tail analysis on a single busy machine: arrivals at three
//! time scales vs a Poisson synthesis (figure 8), the QQ comparison
//! (figure 9) and the LLCD tail fit (figure 10).
//!
//! ```text
//! cargo run --release --example burst_analysis
//! ```

use nt_analysis::{burstiness, tails, TraceSet};
use nt_study::{MachineRun, StudyConfig};
use nt_trace::CollectionServer;

fn main() {
    // One pool (development) machine, 30 simulated minutes.
    let mut config = StudyConfig::smoke_test(11);
    config.duration = nt_sim::SimDuration::from_secs(1_800);
    let spec = config.machines[1].clone(); // the Pool machine
    let mut run = MachineRun::build(&config, 1, &spec);
    let mut server = CollectionServer::new();
    run.simulate(&config, &mut server);

    let records = server.records_for(run.id);
    let names = server.names_for(run.id).into_iter().cloned().collect();
    println!(
        "machine {:?} ({:?}): {} records",
        run.id,
        run.category,
        records.len()
    );
    let ts = TraceSet::build(vec![(run.id.0, records, names)]);

    println!("\nfigure 8 — arrivals vs Poisson:");
    let b = burstiness::burstiness(&ts, 99);
    for s in &b.scales {
        println!(
            "  {:>4}s bins: {:>5} intervals, traced dispersion {:>8.2}, poisson {:>5.2}",
            s.traced.interval_secs,
            s.traced.counts.len(),
            s.traced.dispersion(),
            s.poisson.dispersion()
        );
    }
    println!("  (a Poisson process smooths out at coarse scales; the trace does not)");

    let gaps: Vec<f64> = burstiness::open_arrival_ticks(&ts)
        .windows(2)
        .map(|w| (w[1].saturating_sub(w[0])) as f64 / 10.0)
        .filter(|&g| g > 0.0)
        .collect();

    if let Some(base) = b.scales.iter().find(|s| s.traced.interval_secs == 1) {
        let vt = burstiness::variance_time(&base.traced);
        println!(
            "  variance-time Hurst: {:.2} (H > 0.5 means long-range dependence)",
            vt.hurst
        );
    }

    println!("\nfigure 9 — QQ of open inter-arrivals (us):");
    let qq = tails::qq_plot(&gaps, 60);
    println!(
        "  deviation vs fitted Normal: {:.2}; vs fitted Pareto: {:.2}",
        qq.normal_deviation, qq.pareto_deviation
    );
    println!(
        "  -> the {} distribution tracks the sample",
        if qq.pareto_deviation < qq.normal_deviation {
            "Pareto"
        } else {
            "Normal"
        }
    );

    println!("\nfigure 10 — LLCD of the upper tail:");
    let l = tails::llcd(&gaps, 0.1);
    for (x, y) in l.points.iter().rev().take(12).rev() {
        println!("    log10(gap)={x:>6.2}  log10(P[X>x])={y:>6.2}");
    }
    println!(
        "  fitted slope {:.2} -> alpha = {:.2} (alpha < 2 means infinite variance)",
        l.tail_slope, l.alpha
    );
    println!(
        "  Hill estimator over the top decile: {:.2}",
        tails::hill_alpha(&gaps)
    );
}
