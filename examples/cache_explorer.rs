//! A tour of the cache manager's §9 behaviours: read-ahead granularity
//! and boosting, the sequential-only doubling, the lazy writer's bursts,
//! the temporary-file attribute, and the FastIO/IRP latency split.
//!
//! ```text
//! cargo run --release --example cache_explorer
//! ```

use nt_fs::{NtPath, VolumeConfig};
use nt_io::{
    AccessMode, CreateOptions, DiskParams, Disposition, Machine, MachineConfig, NullObserver,
    ProcessId,
};
use nt_sim::{SimDuration, SimTime};

fn machine() -> (Machine<NullObserver>, nt_fs::VolumeId) {
    let mut m = Machine::new(MachineConfig::default(), NullObserver);
    let vol = m.add_local_volume(
        'C',
        VolumeConfig::local_ntfs(2 << 30),
        DiskParams::local_ide(),
    );
    // Pre-existing files of interesting sizes.
    {
        let v = m.namespace_mut().volume_mut(vol).unwrap();
        let root = v.root();
        for (name, size) in [
            ("small.txt", 9_000u64),
            ("medium.dat", 120_000),
            ("big.bin", 4 << 20),
        ] {
            let f = v.create_file(root, name, SimTime::ZERO).unwrap();
            v.set_file_size(f, size, SimTime::ZERO).unwrap();
        }
    }
    (m, vol)
}

fn open_read(
    m: &mut Machine<NullObserver>,
    vol: nt_fs::VolumeId,
    path: &str,
    options: CreateOptions,
    t: SimTime,
) -> nt_io::HandleId {
    let (_, h) = m.create(
        ProcessId(1),
        vol,
        &NtPath::parse(path),
        AccessMode::Read,
        Disposition::Open,
        options,
        t,
    );
    h.expect("file exists")
}

fn main() {
    println!("== read-ahead: one prefetch covers a small file (§9.1) ==");
    let (mut m, vol) = machine();
    let h = open_read(
        &mut m,
        vol,
        r"\small.txt",
        CreateOptions::default(),
        SimTime::from_secs(1),
    );
    let mut t = SimTime::from_secs(1);
    for i in 0..3 {
        let r = m.read(h, None, 4_096, t);
        println!(
            "  read {i}: {} bytes in {}",
            r.transferred,
            r.end.saturating_since(t)
        );
        t = r.end + SimDuration::from_micros(50);
    }
    m.close(h, t);
    let cm = m.cache_metrics();
    println!(
        "  paging reads: {} read-ahead I/Os, {} demand bytes -> everything after read 0 hit\n",
        cm.readahead_ios, cm.demand_read_bytes
    );

    println!("== sequential-only hint doubles the read-ahead unit (§9.1) ==");
    let (mut m, vol) = machine();
    let h = open_read(
        &mut m,
        vol,
        r"\big.bin",
        CreateOptions {
            sequential_only: true,
            ..CreateOptions::default()
        },
        SimTime::from_secs(1),
    );
    let mut t = SimTime::from_secs(1);
    for _ in 0..16 {
        t = m
            .read(h, None, 65_536, t + SimDuration::from_micros(80))
            .end;
    }
    m.close(h, t);
    println!(
        "  1 MB streamed; read-ahead bytes: {} (doubled unit keeps the reader fed)\n",
        m.cache_metrics().readahead_bytes
    );

    println!("== the lazy writer drains dirty pages in bursts (§9.2) ==");
    let (mut m, vol) = machine();
    let (_, h) = m.create(
        ProcessId(1),
        vol,
        &NtPath::parse(r"\log.out"),
        AccessMode::Write,
        Disposition::OpenIf,
        CreateOptions::default(),
        SimTime::from_secs(1),
    );
    let h = h.unwrap();
    m.write(h, Some(0), 700_000, SimTime::from_secs(1));
    m.close(h, SimTime::from_secs(2));
    println!(
        "  close returned; {} deferred close pending",
        m.deferred_closes()
    );
    for s in 3..12 {
        let before = m.metrics().paging_writes;
        m.lazy_tick(SimTime::from_secs(s));
        let burst = m.metrics().paging_writes - before;
        if burst > 0 {
            println!("  t={s}s: lazy writer issued {burst} paging writes");
        }
        if m.deferred_closes() == 0 {
            println!("  t={s}s: dirty data drained, the close IRP finally went down (§8.1)");
            break;
        }
    }
    println!();

    println!("== the temporary attribute keeps scratch files off the disk (§6.3) ==");
    let (mut m, vol) = machine();
    let (_, h) = m.create(
        ProcessId(1),
        vol,
        &NtPath::parse(r"\scratch.tmp"),
        AccessMode::Write,
        Disposition::Create,
        CreateOptions {
            temporary: true,
            delete_on_close: true,
            ..CreateOptions::default()
        },
        SimTime::from_secs(1),
    );
    let h = h.unwrap();
    m.write(h, Some(0), 300_000, SimTime::from_secs(1));
    m.lazy_tick(SimTime::from_secs(2));
    m.close(h, SimTime::from_secs(3));
    println!(
        "  300 KB written and deleted: {} paging writes issued, {} bytes spared\n",
        m.metrics().paging_writes,
        m.cache_metrics().temporary_bytes_spared
    );

    println!("== FastIO vs IRP latency (figure 13) ==");
    let (mut m, vol) = machine();
    let h = open_read(
        &mut m,
        vol,
        r"\medium.dat",
        CreateOptions::default(),
        SimTime::from_secs(1),
    );
    let t0 = SimTime::from_secs(1);
    let r1 = m.read(h, Some(0), 4_096, t0);
    let t1 = r1.end + SimDuration::from_millis(1);
    let r2 = m.read(h, Some(0), 4_096, t1);
    m.close(h, r2.end);
    println!(
        "  cold read (IRP + disk): {}   warm read (FastIO): {}",
        r1.end.saturating_since(t0),
        r2.end.saturating_since(t1)
    );
    println!(
        "  counters: {} IRP reads, {} FastIO reads",
        m.metrics().irp_reads,
        m.metrics().fastio_reads
    );
}
