//! The full study, end to end: a 45-machine deployment traced for a
//! simulated hour, every table and figure rendered.
//!
//! ```text
//! cargo run --release --example deployment_study            # evaluation preset
//! cargo run --release --example deployment_study -- smoke   # tiny preset
//! cargo run --release --example deployment_study -- seed=7  # other seed
//! ```

use nt_study::{report, Study, StudyConfig};

fn main() {
    let mut seed = 1;
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "smoke" {
            smoke = true;
        } else if let Some(s) = arg.strip_prefix("seed=") {
            seed = s.parse().expect("seed must be an integer");
        }
    }
    let config = if smoke {
        StudyConfig::smoke_test(seed)
    } else {
        StudyConfig::evaluation(seed)
    };
    eprintln!(
        "running {} machines for {} simulated seconds ...",
        config.machines.len(),
        config.duration.as_secs()
    );
    let started = std::time::Instant::now();
    let data = Study::run(&config);
    eprintln!(
        "collected {} records ({:.1} MB compressed) in {:.1}s wall time\n",
        data.total_records,
        data.stored_bytes as f64 / 1.0e6,
        started.elapsed().as_secs_f64()
    );
    print!("{}", report::full_report(&data));
}
