//! A tour of the §4 data warehouse: the star schema's fact tables, the
//! dimension drill-down, the per-process slice — and, at the end, the
//! §9 workflow the warehouse exists for: replaying the *stored* trace
//! under a what-if policy matrix without the original fleet.
//!
//! "We developed a de-normalized star schema for the trace data … an
//! example of categorization is that a mailbox file with a .mbx type is
//! part of the mail files category, which is part of the application
//! files category."
//!
//! ```text
//! cargo run --release --example warehouse_tour
//! ```

use nt_analysis::dimensions::{type_cube, LeafCategory, TopCategory};
use nt_analysis::processes::process_analysis;
use nt_cache::CacheConfig;
use nt_io::DiskParams;
use nt_study::{ReplayConfig, StreamOptions, Study, StudyConfig, WhatIfStudy};
use nt_warehouse::Warehouse;

fn main() {
    // Stream the study so every shipment is teed into an NTT warehouse
    // on disk beside the live analysis.
    let dir = std::env::temp_dir().join(format!("ntt-tour-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "running a smoke-scale study (warehouse tee -> {}) ...",
        dir.display()
    );
    let data = Study::run_streaming(
        &StudyConfig::smoke_test(21),
        &StreamOptions {
            retain: true,
            warehouse: Some(dir.clone()),
            ..StreamOptions::default()
        },
    );
    let ts = data
        .trace_set
        .as_ref()
        .expect("retained under StreamOptions::retain");
    println!(
        "fact tables: {} trace records, {} instance rows, {} name-dimension entries\n",
        ts.records.len(),
        ts.instances.len(),
        ts.names.len()
    );

    let cube = type_cube(ts);
    println!("level 1 — top categories (by bytes moved):");
    let mut tops: Vec<_> = cube.by_top.iter().collect();
    tops.sort_by_key(|(_, m)| std::cmp::Reverse(m.bytes()));
    for (top, m) in &tops {
        println!(
            "  {:<22} {:>6} opens  {:>9.2} MB  mean session {:>7.2} ms",
            format!("{top:?}"),
            m.opens,
            m.bytes() as f64 / 1.0e6,
            m.mean_duration_ms()
        );
    }

    println!("\nlevel 2 — drill into TransientFiles (the §5 churn):");
    for (leaf, m) in cube.drill_down(TopCategory::TransientFiles) {
        println!(
            "  {:<22} {:>6} opens  {:>9.2} MB",
            format!("{leaf:?}"),
            m.opens,
            m.bytes() as f64 / 1.0e6
        );
    }

    println!("\nlevel 3 — extensions inside WebCache:");
    for (ext, m) in cube
        .extensions_of(LeafCategory::WebCache)
        .into_iter()
        .take(5)
    {
        println!("  .{ext:<8} {:>6} opens", m.opens);
    }

    println!("\nthe .mbx worked example:");
    let leaf = LeafCategory::of_extension(Some("mbx"));
    println!("  .mbx -> {:?} -> {:?}", leaf, leaf.top());

    let procs = process_analysis(ts);
    println!(
        "\nprocess slice: {} (machine, process) pairs, busiest decile issues {:.0}% of opens",
        procs.per_process.len(),
        100.0 * procs.top_decile_share
    );
    println!(
        "heavy tails (Hill alpha): activity spans {:.2}, files per process {:.2}",
        procs.span_alpha, procs.files_alpha
    );
    assert!(cube.consistent(), "roll-up conserves the grand total");
    println!("\nroll-up consistency check passed.");

    // The §9 workflow: the trace at rest is a full simulation input.
    // Open the exported warehouse and answer a what-if matrix from it —
    // no live fleet, no retained fact tables needed.
    println!("\nwhat-if replay from the stored warehouse:");
    let warehouse = Warehouse::open(&dir).expect("warehouse was just exported");
    println!(
        "  {} segments, {} stored records",
        warehouse.segments().len(),
        warehouse.total_records()
    );
    let report = WhatIfStudy::new(ReplayConfig::default())
        .variant(
            "no-read-ahead",
            ReplayConfig {
                cache: CacheConfig {
                    readahead_enabled: false,
                    ..CacheConfig::default()
                },
                ..ReplayConfig::default()
            },
        )
        .variant(
            "ssd-class-disk",
            ReplayConfig {
                disk: DiskParams::ssd_class(),
                ..ReplayConfig::default()
            },
        )
        .run(&warehouse)
        .expect("stored variants reconcile");
    println!("\n{}", report.render_summary());

    // The same matrix from the live fact tables answers identically —
    // the trace-source abstraction guarantees it.
    let live = WhatIfStudy::new(ReplayConfig::default())
        .variant(
            "no-read-ahead",
            ReplayConfig {
                cache: CacheConfig {
                    readahead_enabled: false,
                    ..CacheConfig::default()
                },
                ..ReplayConfig::default()
            },
        )
        .variant(
            "ssd-class-disk",
            ReplayConfig {
                disk: DiskParams::ssd_class(),
                ..ReplayConfig::default()
            },
        )
        .run_trace_set(ts)
        .expect("live variants reconcile");
    assert_eq!(
        report.tables, live.tables,
        "warehouse-sourced and live-sourced differential tables must be bit-identical"
    );
    println!("live-vs-warehouse differential tables: bit-identical.");
    let _ = std::fs::remove_dir_all(&dir);
}
