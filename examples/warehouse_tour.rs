//! A tour of the §4 data warehouse: the star schema's fact tables, the
//! dimension drill-down, and the per-process slice.
//!
//! "We developed a de-normalized star schema for the trace data … an
//! example of categorization is that a mailbox file with a .mbx type is
//! part of the mail files category, which is part of the application
//! files category."
//!
//! ```text
//! cargo run --release --example warehouse_tour
//! ```

use nt_analysis::dimensions::{type_cube, LeafCategory, TopCategory};
use nt_analysis::processes::process_analysis;
use nt_study::{Study, StudyConfig};

fn main() {
    eprintln!("running a smoke-scale study ...");
    let data = Study::run(&StudyConfig::smoke_test(21));
    let ts = &data.trace_set;
    println!(
        "fact tables: {} trace records, {} instance rows, {} name-dimension entries\n",
        ts.records.len(),
        ts.instances.len(),
        ts.names.len()
    );

    let cube = type_cube(ts);
    println!("level 1 — top categories (by bytes moved):");
    let mut tops: Vec<_> = cube.by_top.iter().collect();
    tops.sort_by_key(|(_, m)| std::cmp::Reverse(m.bytes()));
    for (top, m) in &tops {
        println!(
            "  {:<22} {:>6} opens  {:>9.2} MB  mean session {:>7.2} ms",
            format!("{top:?}"),
            m.opens,
            m.bytes() as f64 / 1.0e6,
            m.mean_duration_ms()
        );
    }

    println!("\nlevel 2 — drill into TransientFiles (the §5 churn):");
    for (leaf, m) in cube.drill_down(TopCategory::TransientFiles) {
        println!(
            "  {:<22} {:>6} opens  {:>9.2} MB",
            format!("{leaf:?}"),
            m.opens,
            m.bytes() as f64 / 1.0e6
        );
    }

    println!("\nlevel 3 — extensions inside WebCache:");
    for (ext, m) in cube
        .extensions_of(LeafCategory::WebCache)
        .into_iter()
        .take(5)
    {
        println!("  .{ext:<8} {:>6} opens", m.opens);
    }

    println!("\nthe .mbx worked example:");
    let leaf = LeafCategory::of_extension(Some("mbx"));
    println!("  .mbx -> {:?} -> {:?}", leaf, leaf.top());

    let procs = process_analysis(ts);
    println!(
        "\nprocess slice: {} (machine, process) pairs, busiest decile issues {:.0}% of opens",
        procs.per_process.len(),
        100.0 * procs.top_decile_share
    );
    println!(
        "heavy tails (Hill alpha): activity spans {:.2}, files per process {:.2}",
        procs.span_alpha, procs.files_alpha
    );
    assert!(cube.consistent(), "roll-up conserves the grand total");
    println!("\nroll-up consistency check passed.");
}
