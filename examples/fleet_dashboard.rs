//! Watching the fleet run: the `nt-obs` telemetry layer end to end.
//!
//! Runs the faulted 45-machine deployment over the sharded collection
//! tree with the whole observability stack on — span profiler, gauge
//! sampler, causal shipment tracer, flight recorder and health
//! watchdogs — then renders what the layer captured: the wall-clock
//! attribution table ([`nt_study::RuntimeProfile`]), terminal
//! sparklines over the fleet time-series, per-category operation rates,
//! per-hop shipment latency off the causal spans, the watchdog
//! findings, the flight-recorder rings, and the artefact paths
//! (`spans-mNN.jsonl` per machine, `timeseries.jsonl`, the Chrome
//! `trace.json` timeline and the `flight-recorder.jsonl` post-mortem).
//!
//! ```bash
//! cargo run --release --example fleet_dashboard
//! ```

use std::path::PathBuf;

use nt_obs::sparkline::sparkline;
use nt_obs::{Hop, RecorderScope, SeriesData};
use nt_sim::SimDuration;
use nt_study::{
    FaultPlan, MachineOutput, ShardOptions, Study, StudyConfig, TelemetryConfig, TelemetryOptions,
};

/// The faulted paper-shaped fleet at smoke duration, fully watched.
fn config(dir: PathBuf) -> StudyConfig {
    let mut c = StudyConfig::paper_scale(7);
    c.duration = SimDuration::from_secs(900);
    c.snapshot_interval = SimDuration::from_secs(300);
    c.files_per_volume = 1_200;
    c.web_cache_files = 150;
    c.faults = FaultPlan::lossy();
    c.telemetry = TelemetryConfig::On(TelemetryOptions {
        dir: Some(dir),
        sample_interval: SimDuration::from_secs(30),
        trace_shipments: true,
        flight_recorder: true,
        watchdogs: true,
        dump_on_loss: true,
        ..TelemetryOptions::default()
    });
    c
}

/// One dashboard line: sparkline plus min/max/last of a fleet series.
fn strip(label: &str, series: &SeriesData) {
    let values = series.values();
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "  {label:<22} {}  min {:>12.0}  max {:>12.0}  last {:>12.0}",
        sparkline(&values, 40),
        min,
        max,
        series.last().unwrap_or(0.0),
    );
}

/// Sums one series across a set of machines at aligned sample stamps.
fn fleet_series(machines: &[MachineOutput], name: &str) -> Option<SeriesData> {
    let mut merged: Option<SeriesData> = None;
    for m in machines {
        let series = m.telemetry.as_ref()?.series(name)?;
        match merged.as_mut() {
            None => merged = Some(series.clone()),
            Some(acc) => {
                for (point, &(t, v)) in acc.points.iter_mut().zip(&series.points) {
                    debug_assert_eq!(point.0, t, "sampler stamps are fleet-aligned");
                    point.1 += v;
                }
            }
        }
    }
    merged
}

fn main() {
    let dir = std::env::temp_dir().join("nt-fleet-dashboard");
    let _ = std::fs::remove_dir_all(&dir);
    println!("running the faulted 45-machine sharded fleet with the observability stack on …");
    let run = Study::run_sharded(
        &config(dir.clone()),
        &ShardOptions {
            shards: 4,
            warehouse: Some(dir.join("warehouse")),
            ..ShardOptions::default()
        },
    );
    let data = &run.data;

    println!();
    println!("== runtime profile (host wall-clock per subsystem phase) ==");
    print!("{}", data.profile);

    println!();
    println!("== fleet time-series (sampled every simulated 30 s) ==");
    for name in [
        "cache.resident_bytes",
        "cache.dirty_bytes",
        "engine.queue_depth",
        "io.open_handles",
        "io.ops",
        "io.bytes_read",
        "io.bytes_written",
        "trace.lost_records",
    ] {
        match fleet_series(&data.machines, name) {
            Some(series) => strip(name, &series),
            None => println!("  {name:<22} (no samples)"),
        }
    }

    println!();
    println!("== per-category op rates (ops per sample interval, averaged) ==");
    let mut categories: Vec<_> = data.machines.iter().map(|m| m.category).collect();
    categories.sort_by_key(|c| format!("{c:?}"));
    categories.dedup();
    for category in categories {
        let mut rates: Vec<f64> = Vec::new();
        for m in data.machines.iter().filter(|m| m.category == category) {
            if let Some(series) = m.telemetry.as_ref().and_then(|t| t.series("io.ops")) {
                let r = series.rates();
                if rates.is_empty() {
                    rates = r;
                } else {
                    for (acc, v) in rates.iter_mut().zip(&r) {
                        *acc += v;
                    }
                }
            }
        }
        let mean = if rates.is_empty() {
            0.0
        } else {
            rates.iter().sum::<f64>() / rates.len() as f64
        };
        println!(
            "  {:<16} {}  mean {:>10.1}",
            format!("{category:?}"),
            sparkline(&rates, 40),
            mean,
        );
    }

    println!();
    println!("== causal shipment tracing (agent → collector → aggregators) ==");
    let spans = &data.shipment_spans;
    let traces: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.ctx.trace_id).collect();
    println!(
        "  batch journeys traced: {}   hop spans: {}",
        traces.len(),
        spans.len()
    );
    for hop in Hop::ALL {
        let mut count = 0u64;
        let (mut sum, mut max) = (0u64, 0u64);
        for s in spans.iter().filter(|s| s.hop == hop) {
            let ticks = s.end_ticks - s.begin_ticks;
            sum += ticks;
            max = max.max(ticks);
            count += 1;
        }
        let mean_s = if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64 / 10_000_000.0
        };
        println!(
            "  {:<18} spans {:>6}   mean {:>8.2} s   max {:>8.2} s  (simulated)",
            hop.name(),
            count,
            mean_s,
            max as f64 / 10_000_000.0,
        );
    }

    println!();
    println!("== pipeline health (watchdog findings) ==");
    if data.health.is_empty() {
        println!("  (no findings — the fleet stayed inside its loss and backlog budgets)");
    }
    for finding in &data.health {
        println!("  {finding}");
    }

    println!();
    println!("== flight recorder (bounded per-scope event rings) ==");
    for (scope, events, evicted) in data.flight_recorder.snapshot() {
        let label = match scope {
            RecorderScope::Machine(m) => format!("machine:{m}"),
            RecorderScope::Shard(s) => format!("shard:{s}"),
            RecorderScope::Fleet => "fleet".to_string(),
        };
        let newest = events.last().map(|e| e.kind()).unwrap_or("-");
        println!(
            "  {label:<12} {:>4} events ({evicted} evicted)   newest: {newest}",
            events.len(),
        );
    }
    println!(
        "  dumped post-mortem: {} (dump_on_loss under the lossy fault plan)",
        data.flight_recorder.dumped(),
    );

    println!();
    println!("== study headline ==");
    println!(
        "  records: {}   compressed bytes: {}   lost to faults: {}",
        data.total_records,
        data.stored_bytes,
        data.total_lost(),
    );
    let logged: u64 = data
        .machines
        .iter()
        .filter_map(|m| m.telemetry.as_ref())
        .map(|t| t.spans_logged)
        .sum();
    println!("  profiler spans logged across the fleet: {logged}");

    println!();
    println!("== artefacts ==");
    println!("  {}", dir.join("timeseries.jsonl").display());
    println!(
        "  {}  (one per machine, 45 files)",
        dir.join("spans-m00.jsonl").display()
    );
    println!(
        "  {}  (Chrome trace-event timeline — load in chrome://tracing or Perfetto)",
        dir.join("trace.json").display()
    );
    println!(
        "  {}  (exactly-once post-mortem dump)",
        dir.join("flight-recorder.jsonl").display()
    );
}
