//! Watching the fleet run: the `nt-obs` telemetry layer end to end.
//!
//! Runs the faulted 45-machine deployment with telemetry on, then renders
//! what the layer captured — the wall-clock attribution table
//! ([`nt_study::RuntimeProfile`]), terminal sparklines over the fleet
//! time-series, per-category operation rates, and the artefact paths
//! (`spans-mNN.jsonl` per machine, `timeseries.jsonl` for the fleet).
//!
//! ```bash
//! cargo run --release --example fleet_dashboard
//! ```

use std::path::PathBuf;

use nt_obs::sparkline::sparkline;
use nt_obs::SeriesData;
use nt_sim::SimDuration;
use nt_study::{FaultPlan, Study, StudyConfig, StudyData, TelemetryConfig, TelemetryOptions};

/// The faulted paper-shaped fleet at smoke duration, watched.
fn config(dir: PathBuf) -> StudyConfig {
    let mut c = StudyConfig::paper_scale(7);
    c.duration = SimDuration::from_secs(900);
    c.snapshot_interval = SimDuration::from_secs(300);
    c.files_per_volume = 1_200;
    c.web_cache_files = 150;
    c.faults = FaultPlan::lossy();
    c.telemetry = TelemetryConfig::On(TelemetryOptions {
        dir: Some(dir),
        sample_interval: SimDuration::from_secs(30),
        ..TelemetryOptions::default()
    });
    c
}

/// One dashboard line: sparkline plus min/max/last of a fleet series.
fn strip(label: &str, series: &SeriesData) {
    let values = series.values();
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "  {label:<22} {}  min {:>12.0}  max {:>12.0}  last {:>12.0}",
        sparkline(&values, 40),
        min,
        max,
        series.last().unwrap_or(0.0),
    );
}

/// Sums one series across a set of machines at aligned sample stamps.
fn fleet_series(data: &StudyData, name: &str) -> Option<SeriesData> {
    let mut merged: Option<SeriesData> = None;
    for m in &data.machines {
        let series = m.telemetry.as_ref()?.series(name)?;
        match merged.as_mut() {
            None => merged = Some(series.clone()),
            Some(acc) => {
                for (point, &(t, v)) in acc.points.iter_mut().zip(&series.points) {
                    debug_assert_eq!(point.0, t, "sampler stamps are fleet-aligned");
                    point.1 += v;
                }
            }
        }
    }
    merged
}

fn main() {
    let dir = std::env::temp_dir().join("nt-fleet-dashboard");
    let _ = std::fs::remove_dir_all(&dir);
    println!("running the faulted 45-machine fleet with telemetry on …");
    let data = Study::run(&config(dir.clone()));

    println!();
    println!("== runtime profile (host wall-clock per subsystem phase) ==");
    print!("{}", data.profile);

    println!();
    println!("== fleet time-series (sampled every simulated 30 s) ==");
    for name in [
        "cache.resident_bytes",
        "cache.dirty_bytes",
        "engine.queue_depth",
        "io.open_handles",
        "io.ops",
        "io.bytes_read",
        "io.bytes_written",
        "trace.lost_records",
    ] {
        match fleet_series(&data, name) {
            Some(series) => strip(name, &series),
            None => println!("  {name:<22} (no samples)"),
        }
    }

    println!();
    println!("== per-category op rates (ops per sample interval, averaged) ==");
    let mut categories: Vec<_> = data.machines.iter().map(|m| m.category).collect();
    categories.sort_by_key(|c| format!("{c:?}"));
    categories.dedup();
    for category in categories {
        let mut rates: Vec<f64> = Vec::new();
        for m in data.machines.iter().filter(|m| m.category == category) {
            if let Some(series) = m.telemetry.as_ref().and_then(|t| t.series("io.ops")) {
                let r = series.rates();
                if rates.is_empty() {
                    rates = r;
                } else {
                    for (acc, v) in rates.iter_mut().zip(&r) {
                        *acc += v;
                    }
                }
            }
        }
        let mean = if rates.is_empty() {
            0.0
        } else {
            rates.iter().sum::<f64>() / rates.len() as f64
        };
        println!(
            "  {:<16} {}  mean {:>10.1}",
            format!("{category:?}"),
            sparkline(&rates, 40),
            mean,
        );
    }

    println!();
    println!("== per-layer view (FastIO short-circuit vs IRP descent) ==");
    let (mut fastio, mut irp) = (0u64, 0u64);
    for m in &data.machines {
        fastio += m.io.fastio_reads + m.io.fastio_writes;
        irp += m.io.irp_reads + m.io.irp_writes;
    }
    let total = (fastio + irp).max(1);
    println!(
        "  data ops served procedurally (no IRP built):   {fastio:>10}  ({:.1}%)",
        100.0 * fastio as f64 / total as f64
    );
    println!(
        "  data ops that descended the driver stack:      {irp:>10}  ({:.1}%)",
        100.0 * irp as f64 / total as f64
    );
    println!(
        "  each descending packet passed the span layer and the trace agent\n\
         \x20 (dispatch spans above are those descents, bracketed per layer)"
    );

    println!();
    println!("== study headline ==");
    println!(
        "  records: {}   compressed bytes: {}   lost to faults: {}",
        data.total_records,
        data.stored_bytes,
        data.total_lost(),
    );
    let spans: u64 = data
        .machines
        .iter()
        .filter_map(|m| m.telemetry.as_ref())
        .map(|t| t.spans_logged)
        .sum();
    println!("  spans logged across the fleet: {spans}");

    println!();
    println!("== artefacts ==");
    println!("  {}", dir.join("timeseries.jsonl").display());
    println!(
        "  {}  (one per machine, 45 files)",
        dir.join("spans-m00.jsonl").display()
    );
}
