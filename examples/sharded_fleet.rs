//! An org-scale study through the sharded collection tree: machines in
//! the paper's five-category proportions, partitioned across shard
//! collectors, merged shard → aggregator → fleet, with the per-tier
//! conservation ledgers reconciled at the end.
//!
//! ```text
//! cargo run --release --example sharded_fleet                    # 450 machines, 4 shards
//! cargo run --release --example sharded_fleet -- machines=1000 shards=8
//! cargo run --release --example sharded_fleet -- seed=7
//! ```

use nt_study::{ShardOptions, Study, StudyConfig};

fn main() {
    let mut seed = 1;
    let mut machines = 450;
    let mut shards = 4;
    for arg in std::env::args().skip(1) {
        if let Some(s) = arg.strip_prefix("seed=") {
            seed = s.parse().expect("seed must be an integer");
        } else if let Some(s) = arg.strip_prefix("machines=") {
            machines = s.parse().expect("machines must be an integer");
        } else if let Some(s) = arg.strip_prefix("shards=") {
            shards = s.parse().expect("shards must be an integer");
        }
    }
    let config = StudyConfig::org_scale(seed, machines);
    eprintln!(
        "running {} machines across {} shards for {} simulated seconds ...",
        config.machines.len(),
        shards,
        config.duration.as_secs()
    );
    let started = std::time::Instant::now();
    let audited = Study::run_sharded_audited(
        &config,
        &ShardOptions {
            shards,
            ..ShardOptions::default()
        },
    )
    .unwrap_or_else(|failure| panic!("{failure}"));
    let data = &audited.data;
    eprintln!(
        "collected {} records ({:.1} MB compressed) in {:.1}s wall time",
        data.data.total_records,
        data.data.stored_bytes as f64 / 1.0e6,
        started.elapsed().as_secs_f64()
    );
    println!(
        "{} aggregators over {} shards; every machine, shard and fleet ledger balanced",
        data.aggregators,
        data.shards.len()
    );
    for shard in &data.shards {
        println!(
            "  shard {}: machines {:>4}..{:<4}  {:>8} records analysed, \
             {:>9} shipped, peak analysis state {:>9} bytes",
            shard.shard,
            shard.machines.start,
            shard.machines.end,
            shard.records,
            shard.total_records,
            shard.peak_state_bytes
        );
    }
    let summary = &data.data.summary;
    println!(
        "fleet: {} machines, {} records, {} file names",
        summary.machines, summary.records, summary.names
    );
}
