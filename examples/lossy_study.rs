//! Lossy-deployment comparison: the same study run clean and under
//! `FaultPlan::lossy()`, with per-machine loss ledgers and the degraded
//! analyses side by side.
//!
//! ```bash
//! cargo run --release --example lossy_study
//! ```

use nt_analysis::{arrivals, gaps::LossWindows, ops};
use nt_study::{FaultPlan, FaultSchedule, Study, StudyConfig, StudyData};

fn seconds(ticks: u64) -> f64 {
    ticks as f64 / nt_sim::TICKS_PER_SEC as f64
}

fn summarize(label: &str, data: &StudyData) {
    println!("== {label} ==");
    println!(
        "  records collected: {}   compressed bytes: {}",
        data.total_records, data.stored_bytes
    );
    println!(
        "  {:<10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "machine", "recorded", "delivered", "overflow", "suspended", "retries", "down(s)"
    );
    for report in data.loss_reports() {
        let l = report.ledger;
        assert!(l.reconciles(), "ledger reconciles for {:?}", report.machine);
        println!(
            "  {:<10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8.1}",
            format!("{:?}", report.machine),
            l.recorded,
            l.delivered,
            l.dropped_overflow,
            l.dropped_suspended,
            l.batches_retried,
            seconds(l.downtime_ticks),
        );
    }
    println!("  total lost: {}", data.total_lost());
}

fn main() {
    let seed = 1;
    let clean_config = StudyConfig::smoke_test(seed);
    let mut lossy_config = clean_config.clone();
    lossy_config.faults = FaultPlan::lossy();

    let clean = Study::run(&clean_config);
    let lossy = Study::run(&lossy_config);

    summarize("clean deployment", &clean);
    summarize("lossy deployment (FaultPlan::lossy)", &lossy);

    // The degraded analysis excludes the holes the schedule predicts.
    let schedule = FaultSchedule::materialize(&lossy_config, 3);
    let mut windows = LossWindows::new();
    for (index, faults) in schedule.machines.iter().enumerate() {
        for w in &faults.agent_outages {
            windows.add(index as u32, *w);
        }
    }

    let clean_arrivals = arrivals::open_arrivals(&clean.trace_set);
    let naive = arrivals::open_arrivals(&lossy.trace_set);
    let degraded = arrivals::open_arrivals_excluding(&lossy.trace_set, &windows);
    println!("\n== degraded analysis (figure 11) ==");
    println!(
        "  lossy virtual time excluded: {:.1} s across {} windows",
        seconds(windows.total_lossy_ticks()),
        windows.flattened().len()
    );
    println!(
        "  inter-arrival pairs: clean {}   lossy naive {}   lossy excluded {}",
        clean_arrivals.all.len(),
        naive.all.len(),
        degraded.all.len()
    );
    println!(
        "  active-second fraction: clean {:.3}   lossy naive {:.3}   lossy excluded {:.3}",
        clean_arrivals.active_second_fraction,
        naive.active_second_fraction,
        degraded.active_second_fraction
    );

    let clean_ops = ops::operational_stats(&clean.trace_set);
    let lossy_ops = ops::operational_stats(&lossy.trace_set);
    println!(
        "  control-only opens: clean {:.3}   lossy {:.3}",
        clean_ops.control_only_fraction, lossy_ops.control_only_fraction
    );
}
