//! The NTT v1 byte-level layout.
//!
//! One segment holds one machine's stream. Every integer is
//! little-endian and the sections are contiguous, in a fixed order, so
//! the whole file can be validated from the fixed-size footer alone and
//! then read zero-copy (the normative layout diagram is in `DESIGN.md`
//! §10):
//!
//! ```text
//! ┌──────────┬───────────────┬─────────────┬──────────┬────────────┬────────┐
//! │ header   │ records       │ batches     │ strings  │ names      │ footer │
//! │ 16 B     │ n × 88 B      │ b × 4 B     │ s B      │ m × 32 B   │ 528 B  │
//! └──────────┴───────────────┴─────────────┴──────────┴────────────┴────────┘
//! ```
//!
//! The checksum in the footer is XXH64 (seed 0) over every byte that
//! precedes the checksum field — header, all four sections, and the
//! footer's own section table — so any single corrupted byte in the
//! file is caught either by the checksum, by the leading magic, or by
//! the trailing footer magic.
//!
//! **Versioning rules.** `NTT_VERSION` only moves for layout changes a
//! v(n) reader cannot skip over. Additions that fit the reserved header
//! flags, new event kinds within the 54-slot count table, or new
//! trailing footer fields *before* the checksum all stay within the
//! version; readers must reject versions they do not know
//! ([`crate::NttError::UnsupportedVersion`]) rather than guess.

use crate::NttError;
use nt_trace::RECORD_SIZE;

/// Leading magic: `NTTW`.
pub const MAGIC: [u8; 4] = *b"NTTW";
/// Trailing footer magic: `NTTWEND1`.
pub const FOOTER_MAGIC: [u8; 8] = *b"NTTWEND1";
/// Current format version.
pub const NTT_VERSION: u16 = 1;
/// Size of the fixed header.
pub const HEADER_SIZE: usize = 16;
/// Size of the fixed footer.
pub const FOOTER_SIZE: usize = 8 * 10 + KIND_SLOTS * 8 + 8 + 8;
/// Size of one name-table entry.
pub const NAME_ENTRY_SIZE: usize = 32;
/// Size of one batch-table entry (a record count).
pub const BATCH_ENTRY_SIZE: usize = 4;
/// Per-kind count slots in the footer — the full 54-kind taxonomy.
pub const KIND_SLOTS: usize = 54;

/// The decoded footer: section table, time span, per-kind counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Footer {
    /// Byte offset of the record section (always [`HEADER_SIZE`]).
    pub records_off: u64,
    /// Number of 88-byte records.
    pub record_count: u64,
    /// Byte offset of the batch-length table.
    pub batches_off: u64,
    /// Number of batch-table entries.
    pub batch_count: u64,
    /// Byte offset of the string table.
    pub strings_off: u64,
    /// Length of the string table in bytes.
    pub strings_len: u64,
    /// Byte offset of the name table.
    pub names_off: u64,
    /// Number of 32-byte name entries.
    pub name_count: u64,
    /// Smallest `start_ticks` across records (0 when empty).
    pub min_ticks: u64,
    /// Largest `end_ticks` across records (0 when empty).
    pub max_ticks: u64,
    /// Per-event-kind record counts, indexed by [`nt_io::EventKind::code`].
    pub kind_counts: [u64; KIND_SLOTS],
    /// XXH64 (seed 0) over every byte before the checksum field.
    pub checksum: u64,
}

impl Footer {
    /// Serializes the footer (including magic) into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.records_off.to_le_bytes());
        out.extend_from_slice(&self.record_count.to_le_bytes());
        out.extend_from_slice(&self.batches_off.to_le_bytes());
        out.extend_from_slice(&self.batch_count.to_le_bytes());
        out.extend_from_slice(&self.strings_off.to_le_bytes());
        out.extend_from_slice(&self.strings_len.to_le_bytes());
        out.extend_from_slice(&self.names_off.to_le_bytes());
        out.extend_from_slice(&self.name_count.to_le_bytes());
        out.extend_from_slice(&self.min_ticks.to_le_bytes());
        out.extend_from_slice(&self.max_ticks.to_le_bytes());
        for c in &self.kind_counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&self.checksum.to_le_bytes());
        out.extend_from_slice(&FOOTER_MAGIC);
    }

    /// Decodes a footer from the last [`FOOTER_SIZE`] bytes of `data`
    /// and cross-checks the section table against the file length.
    /// Does **not** verify the checksum — the caller does that once it
    /// knows how much body the footer claims.
    pub fn decode(data: &[u8]) -> Result<Footer, NttError> {
        if data.len() < HEADER_SIZE + FOOTER_SIZE {
            return Err(NttError::Truncated {
                need: HEADER_SIZE + FOOTER_SIZE,
                have: data.len(),
            });
        }
        let foot = &data[data.len() - FOOTER_SIZE..];
        if foot[FOOTER_SIZE - 8..] != FOOTER_MAGIC {
            return Err(NttError::BadFooterMagic);
        }
        let u64_at = |i: usize| -> u64 {
            u64::from_le_bytes(foot[i * 8..i * 8 + 8].try_into().expect("8 bytes"))
        };
        let mut kind_counts = [0u64; KIND_SLOTS];
        for (k, slot) in kind_counts.iter_mut().enumerate() {
            *slot = u64_at(10 + k);
        }
        let footer = Footer {
            records_off: u64_at(0),
            record_count: u64_at(1),
            batches_off: u64_at(2),
            batch_count: u64_at(3),
            strings_off: u64_at(4),
            strings_len: u64_at(5),
            names_off: u64_at(6),
            name_count: u64_at(7),
            min_ticks: u64_at(8),
            max_ticks: u64_at(9),
            kind_counts,
            checksum: u64_at(10 + KIND_SLOTS),
        };
        footer.check_layout(data.len() as u64)?;
        Ok(footer)
    }

    /// Validates that the section table describes exactly the bytes
    /// between header and footer, contiguously and in canonical order.
    fn check_layout(&self, file_len: u64) -> Result<(), NttError> {
        let sec = |count: u64, size: usize, rule: &'static str| -> Result<u64, NttError> {
            count
                .checked_mul(size as u64)
                .ok_or(NttError::BadLayout(rule))
        };
        let records_len = sec(self.record_count, RECORD_SIZE, "record section overflows")?;
        let batches_len = sec(self.batch_count, BATCH_ENTRY_SIZE, "batch table overflows")?;
        let names_len = sec(self.name_count, NAME_ENTRY_SIZE, "name table overflows")?;
        if self.records_off != HEADER_SIZE as u64 {
            return Err(NttError::BadLayout("records must follow the header"));
        }
        let after_records = self
            .records_off
            .checked_add(records_len)
            .ok_or(NttError::BadLayout("record section overflows"))?;
        if self.batches_off != after_records {
            return Err(NttError::BadLayout("batch table must follow the records"));
        }
        let after_batches = self
            .batches_off
            .checked_add(batches_len)
            .ok_or(NttError::BadLayout("batch table overflows"))?;
        if self.strings_off != after_batches {
            return Err(NttError::BadLayout(
                "string table must follow the batch table",
            ));
        }
        let after_strings = self
            .strings_off
            .checked_add(self.strings_len)
            .ok_or(NttError::BadLayout("string table overflows"))?;
        if self.names_off != after_strings {
            return Err(NttError::BadLayout(
                "name table must follow the string table",
            ));
        }
        let after_names = self
            .names_off
            .checked_add(names_len)
            .ok_or(NttError::BadLayout("name table overflows"))?;
        if after_names + FOOTER_SIZE as u64 != file_len {
            return Err(NttError::BadLayout(
                "sections must fill the file up to the footer",
            ));
        }
        if self.record_count > 0 && self.min_ticks > self.max_ticks {
            return Err(NttError::BadLayout("time span is inverted"));
        }
        Ok(())
    }
}

/// Encodes the 16-byte header for `machine`.
pub fn encode_header(out: &mut Vec<u8>, machine: u32) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&NTT_VERSION.to_le_bytes());
    out.extend_from_slice(&(HEADER_SIZE as u16).to_le_bytes());
    out.extend_from_slice(&machine.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved flags
}

/// Validates the header and returns the machine id.
pub fn decode_header(data: &[u8]) -> Result<u32, NttError> {
    if data.len() < HEADER_SIZE {
        return Err(NttError::Truncated {
            need: HEADER_SIZE,
            have: data.len(),
        });
    }
    if data[..4] != MAGIC {
        return Err(NttError::BadMagic);
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != NTT_VERSION {
        return Err(NttError::UnsupportedVersion(version));
    }
    let header_len = u16::from_le_bytes([data[6], data[7]]);
    if header_len as usize != HEADER_SIZE {
        return Err(NttError::BadLayout("unexpected header length"));
    }
    Ok(u32::from_le_bytes([data[8], data[9], data[10], data[11]]))
}

// ---------------------------------------------------------------------
// XXH64 — the footer checksum. Implemented from the specification so
// the crate stays dependency-free; seed is fixed at 0.
// ---------------------------------------------------------------------

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn read_u64(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"))
}

/// XXH64 with seed 0 over `data`.
pub fn xxh64(data: &[u8]) -> u64 {
    let len = data.len();
    let mut at = 0;
    let mut h: u64;
    if len >= 32 {
        let mut v1 = P1.wrapping_add(P2);
        let mut v2 = P2;
        let mut v3 = 0u64;
        let mut v4 = 0u64.wrapping_sub(P1);
        while at + 32 <= len {
            v1 = round(v1, read_u64(data, at));
            v2 = round(v2, read_u64(data, at + 8));
            v3 = round(v3, read_u64(data, at + 16));
            v4 = round(v4, read_u64(data, at + 24));
            at += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = P5;
    }
    h = h.wrapping_add(len as u64);
    while at + 8 <= len {
        h ^= round(0, read_u64(data, at));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        at += 8;
    }
    if at + 4 <= len {
        h ^= u64::from(read_u32(data, at)).wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        at += 4;
    }
    while at < len {
        h ^= u64::from(data[at]).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
        at += 1;
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xxh64_matches_reference_vectors() {
        // Published XXH64 seed-0 test vectors.
        assert_eq!(xxh64(b""), 0xef46_db37_51d8_e999);
        assert_eq!(xxh64(b"a"), 0xd24e_c4f1_a98c_6e5b);
        assert_eq!(xxh64(b"abc"), 0x44bc_2cf5_ad77_0999);
        assert_eq!(
            xxh64(b"Nobody inspects the spammish repetition"),
            0xfbce_a83c_8a37_8bf1
        );
    }

    #[test]
    fn xxh64_covers_every_tail_length() {
        // Exercise the 32-byte stripes plus all tail paths (8/4/1).
        let data: Vec<u8> = (0u16..200).map(|i| (i % 251) as u8).collect();
        let mut seen = std::collections::HashSet::new();
        for n in 0..data.len() {
            assert!(seen.insert(xxh64(&data[..n])), "collision at length {n}");
        }
    }

    #[test]
    fn header_roundtrip_and_rejection() {
        let mut buf = Vec::new();
        encode_header(&mut buf, 42);
        assert_eq!(buf.len(), HEADER_SIZE);
        assert_eq!(decode_header(&buf).unwrap(), 42);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(decode_header(&bad), Err(NttError::BadMagic)));
        let mut newer = buf.clone();
        newer[4] = 9;
        assert!(matches!(
            decode_header(&newer),
            Err(NttError::UnsupportedVersion(9))
        ));
        assert!(matches!(
            decode_header(&buf[..8]),
            Err(NttError::Truncated { .. })
        ));
    }
}
