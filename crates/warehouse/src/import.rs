//! Importing foreign trace formats into NTT.
//!
//! The first supported dialect is strace-style text — the shape
//! `strace -ttt -e trace=open,read,write,close` emits, one syscall per
//! line:
//!
//! ```text
//! 1723111201.000125 open("/var/mail/inbox.mbx", O_RDWR) = 3
//! 1723111201.000300 read(3, 4096) = 4096
//! 1723111201.000412 write(3, 512) = 512
//! 1723111201.000500 close(3) = 0
//! ```
//!
//! The importer maps each line onto the NT event taxonomy: `open` →
//! `Irp(Create)` (plus a name record binding the path), `read`/`write` →
//! `Irp(Read)`/`Irp(Write)` with offsets tracked per descriptor, and
//! `close` → `Irp(Cleanup)` + `Irp(Close)`, so the imported stream walks
//! the same open→access→close session shape the instance builder
//! expects. Unix paths are rewritten to the study's backslash form.
//!
//! **Nothing is dropped silently.** Every line either becomes records or
//! increments exactly one counter of the [`ImportLedger`] naming why it
//! was skipped — malformed timestamps, out-of-order timestamps, negative
//! sizes, non-UTF-8 paths, unknown descriptors, unknown syscalls. The
//! ledger reconciles: `lines == imported + skipped()`.

use nt_io::{AccessMode, CreateOptions, Disposition, EventKind, MajorFunction, NtStatus};
use nt_trace::{NameRecord, TraceRecord};

use crate::writer::SegmentWriter;

/// Records per batch in imported segments — matches the agent's
/// triple-buffer shipment size so imported streams exercise the same
/// batch cadence as live ones.
const IMPORT_BATCH: usize = 3_000;

/// Why (and how often) imported lines were skipped. The loss ledger of
/// the importer: the analysis can state exactly how much of a foreign
/// trace it is looking at.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImportLedger {
    /// Input lines seen (excluding blank and `#` comment lines).
    pub lines: u64,
    /// Lines converted into records.
    pub imported: u64,
    /// Timestamp missing or unparseable.
    pub bad_timestamp: u64,
    /// Timestamp ran backwards relative to the previous imported line.
    pub out_of_order: u64,
    /// A size argument or return value was negative.
    pub negative_size: u64,
    /// The path (or the line itself) was not valid UTF-8.
    pub non_utf8: u64,
    /// `read`/`write`/`close` on a descriptor no `open` produced.
    pub unknown_fd: u64,
    /// A syscall outside the supported set.
    pub unknown_syscall: u64,
    /// Structurally broken lines (no parenthesis, no `=`, …).
    pub malformed: u64,
}

impl ImportLedger {
    /// Lines skipped, by any cause.
    pub fn skipped(&self) -> u64 {
        self.bad_timestamp
            + self.out_of_order
            + self.negative_size
            + self.non_utf8
            + self.unknown_fd
            + self.unknown_syscall
            + self.malformed
    }

    /// Every line is accounted for exactly once.
    pub fn reconciles(&self) -> bool {
        self.lines == self.imported + self.skipped()
    }
}

/// The result of an import: a finished NTT segment plus the ledger.
pub struct StraceImport {
    /// The encoded segment (write it with `std::fs::write`, or parse it
    /// back with [`crate::Segment::parse`]).
    pub segment: Vec<u8>,
    /// Per-cause skip accounting.
    pub ledger: ImportLedger,
    /// Records in the segment.
    pub records: u64,
    /// Name records in the segment.
    pub names: u64,
}

/// Per-descriptor state while a file is open.
struct OpenFd {
    file_object: u64,
    cursor: u64,
    file_size: u64,
    opened_ticks: u64,
}

/// Converts strace-style text (as raw bytes — foreign traces are not
/// guaranteed UTF-8) into one NTT segment for `machine`.
pub fn import_strace(input: &[u8], machine: u32) -> StraceImport {
    let mut writer = SegmentWriter::new(machine);
    let mut ledger = ImportLedger::default();
    let mut pending: Vec<TraceRecord> = Vec::new();
    let mut names = 0u64;
    let mut last_ticks = 0u64;
    let mut next_file_object = 1u64;
    let mut fds: std::collections::HashMap<i64, OpenFd> = std::collections::HashMap::new();

    for raw_line in input.split(|&b| b == b'\n') {
        let trimmed = trim_ascii(raw_line);
        if trimmed.is_empty() || trimmed[0] == b'#' {
            continue;
        }
        ledger.lines += 1;
        let Ok(line) = std::str::from_utf8(trimmed) else {
            ledger.non_utf8 += 1;
            continue;
        };
        match import_line(
            line,
            &mut ledger,
            &mut last_ticks,
            &mut next_file_object,
            &mut fds,
        ) {
            Some(out) => {
                ledger.imported += 1;
                pending.extend(out.records);
                if let Some(name) = out.name {
                    // Unreachable by construction: the string table can
                    // only outgrow its 4-byte offsets if the in-memory
                    // input itself held >4 GiB of distinct paths.
                    writer.push_name(&name).expect("import paths fit u32");
                    names += 1;
                }
                while pending.len() >= IMPORT_BATCH {
                    let rest = pending.split_off(IMPORT_BATCH);
                    writer
                        .push_batch(&pending)
                        .expect("IMPORT_BATCH-sized batches fit u32");
                    pending = rest;
                }
            }
            None => {
                // The line's counter was already incremented by the
                // parser; nothing is dropped without a cause.
            }
        }
    }
    if !pending.is_empty() {
        writer
            .push_batch(&pending)
            .expect("IMPORT_BATCH-sized batches fit u32");
    }
    debug_assert!(ledger.reconciles(), "every line accounted for");
    let records = writer.records();
    StraceImport {
        segment: writer.finish(),
        ledger,
        records,
        names,
    }
}

/// What one imported line produced.
struct LineOutput {
    records: Vec<TraceRecord>,
    name: Option<NameRecord>,
}

/// Parses one line; on skip, increments the matching ledger counter and
/// returns `None`.
fn import_line(
    line: &str,
    ledger: &mut ImportLedger,
    last_ticks: &mut u64,
    next_file_object: &mut u64,
    fds: &mut std::collections::HashMap<i64, OpenFd>,
) -> Option<LineOutput> {
    // `<seconds.micros> <syscall>(<args>) = <ret>`
    let (ts_text, rest) = match line.split_once(' ') {
        Some(parts) => parts,
        None => {
            ledger.malformed += 1;
            return None;
        }
    };
    let Some(ticks) = parse_ticks(ts_text) else {
        ledger.bad_timestamp += 1;
        return None;
    };
    if ticks < *last_ticks {
        ledger.out_of_order += 1;
        return None;
    }
    let rest = rest.trim_start();
    let (call, after_call) = match rest.split_once('(') {
        Some(parts) => parts,
        None => {
            ledger.malformed += 1;
            return None;
        }
    };
    // Split on the *last* `") = "` — the errno parenthetical strace
    // appends to failed returns ("-1 ENOENT (No such file…)") means the
    // final `)` is not necessarily the argument list's.
    let (args, ret_text) = match after_call.rsplit_once(") = ") {
        Some(parts) => parts,
        None => {
            ledger.malformed += 1;
            return None;
        }
    };
    let ret: i64 = match ret_text.split_whitespace().next() {
        Some(token) => match token.parse() {
            Ok(v) => v,
            Err(_) => {
                ledger.malformed += 1;
                return None;
            }
        },
        None => {
            ledger.malformed += 1;
            return None;
        }
    };

    let out = match call.trim() {
        "open" | "openat" | "creat" => {
            import_open(call, args, ticks, ret, ledger, next_file_object, fds)
        }
        "read" | "pread64" => import_rw(MajorFunction::Read, args, ticks, ret, ledger, fds),
        "write" | "pwrite64" => import_rw(MajorFunction::Write, args, ticks, ret, ledger, fds),
        "close" => import_close(args, ticks, ledger, fds),
        _ => {
            ledger.unknown_syscall += 1;
            None
        }
    }?;
    *last_ticks = ticks;
    Some(out)
}

fn import_open(
    call: &str,
    args: &str,
    ticks: u64,
    ret: i64,
    ledger: &mut ImportLedger,
    next_file_object: &mut u64,
    fds: &mut std::collections::HashMap<i64, OpenFd>,
) -> Option<LineOutput> {
    // `openat` carries a leading dirfd argument; skip to the quoted path.
    let args = match call {
        "openat" => args.split_once(',').map_or(args, |(_, rest)| rest),
        _ => args,
    };
    let path = match quoted_path(args) {
        Ok(p) => p,
        Err(cause) => {
            match cause {
                SkipCause::NonUtf8 => ledger.non_utf8 += 1,
                SkipCause::Malformed => ledger.malformed += 1,
            }
            return None;
        }
    };
    let flags = args.split_once(',').map(|(_, f)| f).unwrap_or("");
    let writable = flags.contains("O_WRONLY") || flags.contains("O_RDWR") || call == "creat";
    let creating = flags.contains("O_CREAT") || flags.contains("O_TRUNC") || call == "creat";
    let status = if ret < 0 {
        NtStatus::ObjectNameNotFound
    } else {
        NtStatus::Success
    };
    let file_object = *next_file_object;
    *next_file_object += 1;
    let mut rec = blank_record(EventKind::Irp(MajorFunction::Create), file_object, ticks);
    rec.status = status;
    rec.access = Some(match (writable, call) {
        (true, "creat") => AccessMode::Write,
        (true, _) => AccessMode::ReadWrite,
        (false, _) => AccessMode::Read,
    });
    rec.disposition = Some(if creating {
        Disposition::OpenIf
    } else {
        Disposition::Open
    });
    rec.options = Some(CreateOptions::default());
    let name = NameRecord {
        file_object,
        volume: 0,
        process: 1,
        path: to_nt_path(path),
        at_ticks: ticks,
    };
    if ret >= 0 {
        fds.insert(
            ret,
            OpenFd {
                file_object,
                cursor: 0,
                file_size: 0,
                opened_ticks: ticks,
            },
        );
    }
    Some(LineOutput {
        records: vec![rec],
        name: Some(name),
    })
}

fn import_rw(
    kind: MajorFunction,
    args: &str,
    ticks: u64,
    ret: i64,
    ledger: &mut ImportLedger,
    fds: &mut std::collections::HashMap<i64, OpenFd>,
) -> Option<LineOutput> {
    let mut parts = args.split(',');
    let fd: i64 = match parts.next().map(str::trim).and_then(|s| s.parse().ok()) {
        Some(fd) => fd,
        None => {
            ledger.malformed += 1;
            return None;
        }
    };
    // The request size is the last numeric argument (strace elides the
    // buffer, so `read(3, 4096)` and `read(3, "…", 4096)` both work).
    let count: i64 = match parts
        .next_back()
        .map(str::trim)
        .and_then(|s| s.parse().ok())
    {
        Some(n) => n,
        None => {
            ledger.malformed += 1;
            return None;
        }
    };
    if count < 0 || ret < -1 {
        ledger.negative_size += 1;
        return None;
    }
    let Some(open) = fds.get_mut(&fd) else {
        ledger.unknown_fd += 1;
        return None;
    };
    let transferred = if ret < 0 { 0 } else { ret as u64 };
    if transferred > count as u64 {
        ledger.negative_size += 1;
        return None;
    }
    let mut rec = blank_record(EventKind::Irp(kind), open.file_object, ticks);
    rec.status = if ret < 0 {
        NtStatus::AccessDenied
    } else if kind == MajorFunction::Read && transferred < count as u64 {
        NtStatus::EndOfFile
    } else {
        NtStatus::Success
    };
    rec.offset = open.cursor;
    rec.byte_offset = open.cursor;
    rec.length = count as u64;
    rec.transferred = transferred;
    open.cursor += transferred;
    if kind == MajorFunction::Write {
        open.file_size = open.file_size.max(open.cursor);
    }
    rec.file_size = open.file_size;
    Some(LineOutput {
        records: vec![rec],
        name: None,
    })
}

fn import_close(
    args: &str,
    ticks: u64,
    ledger: &mut ImportLedger,
    fds: &mut std::collections::HashMap<i64, OpenFd>,
) -> Option<LineOutput> {
    let fd: i64 = match args.trim().parse() {
        Ok(fd) => fd,
        Err(_) => {
            ledger.malformed += 1;
            return None;
        }
    };
    let Some(open) = fds.remove(&fd) else {
        ledger.unknown_fd += 1;
        return None;
    };
    let mut cleanup = blank_record(
        EventKind::Irp(MajorFunction::Cleanup),
        open.file_object,
        ticks,
    );
    cleanup.file_size = open.file_size;
    cleanup.byte_offset = open.cursor;
    let mut close = blank_record(
        EventKind::Irp(MajorFunction::Close),
        open.file_object,
        ticks,
    );
    close.file_size = open.file_size;
    let _ = open.opened_ticks;
    Some(LineOutput {
        records: vec![cleanup, close],
        name: None,
    })
}

enum SkipCause {
    NonUtf8,
    Malformed,
}

/// Extracts the first double-quoted argument. Octal escapes (`\305` …)
/// are how strace spells non-UTF-8 path bytes; decoding them back to
/// bytes and failing UTF-8 validation is what the `non_utf8` counter
/// counts.
fn quoted_path(args: &str) -> Result<String, SkipCause> {
    let start = args.find('"').ok_or(SkipCause::Malformed)?;
    let rest = &args[start + 1..];
    let end = rest.find('"').ok_or(SkipCause::Malformed)?;
    let raw = &rest[..end];
    if !raw.contains('\\') {
        return Ok(raw.to_string());
    }
    // Decode octal escapes into bytes, then require UTF-8.
    let mut bytes = Vec::with_capacity(raw.len());
    let mut chars = raw.bytes().peekable();
    while let Some(b) = chars.next() {
        if b != b'\\' {
            bytes.push(b);
            continue;
        }
        let mut val: u32 = 0;
        let mut digits = 0;
        while digits < 3 {
            match chars.peek() {
                Some(&d) if d.is_ascii_digit() && d < b'8' => {
                    val = val * 8 + u32::from(d - b'0');
                    chars.next();
                    digits += 1;
                }
                _ => break,
            }
        }
        if digits == 0 {
            // A non-octal escape (\" \\ …): keep the escaped byte.
            if let Some(next) = chars.next() {
                bytes.push(next);
            }
        } else {
            bytes.push(val as u8);
        }
    }
    String::from_utf8(bytes).map_err(|_| SkipCause::NonUtf8)
}

/// `/var/mail/inbox.mbx` → `\var\mail\inbox.mbx`, lower-cased like the
/// study's name records.
fn to_nt_path(path: String) -> String {
    let mut out = path.replace('/', "\\").to_lowercase();
    if !out.starts_with('\\') {
        out.insert(0, '\\');
    }
    out
}

/// `1723111201.000125` → 100 ns ticks.
fn parse_ticks(text: &str) -> Option<u64> {
    let (secs, frac) = match text.split_once('.') {
        Some((s, f)) => (s, f),
        None => (text, ""),
    };
    let secs: u64 = secs.parse().ok()?;
    // Fraction: take up to 7 digits (tick precision), right-pad.
    let mut ticks_frac = 0u64;
    let mut digits = 0;
    for c in frac.chars() {
        if !c.is_ascii_digit() {
            return None;
        }
        if digits < 7 {
            ticks_frac = ticks_frac * 10 + u64::from(c as u8 - b'0');
            digits += 1;
        }
    }
    for _ in digits..7 {
        ticks_frac *= 10;
    }
    secs.checked_mul(10_000_000)?.checked_add(ticks_frac)
}

fn trim_ascii(bytes: &[u8]) -> &[u8] {
    let start = bytes
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .unwrap_or(bytes.len());
    let end = bytes
        .iter()
        .rposition(|b| !b.is_ascii_whitespace())
        .map_or(start, |e| e + 1);
    &bytes[start..end]
}

fn blank_record(kind: EventKind, file_object: u64, ticks: u64) -> TraceRecord {
    TraceRecord {
        code: kind.code(),
        flags: 1 << 2, // local volume
        status: NtStatus::Success,
        set_info: None,
        access: None,
        disposition: None,
        options: None,
        file_object,
        fcb: u64::MAX,
        process: 1,
        volume: 0,
        offset: 0,
        length: 0,
        transferred: 0,
        file_size: 0,
        byte_offset: 0,
        start_ticks: ticks,
        end_ticks: ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Segment;

    const SAMPLE: &str = "\
1723111201.000125 open(\"/var/mail/inbox.mbx\", O_RDWR) = 3
1723111201.000300 read(3, 4096) = 4096
1723111201.000412 write(3, 512) = 512
1723111201.000500 close(3) = 0
1723111201.000600 open(\"/etc/missing.conf\", O_RDONLY) = -1 ENOENT (No such file or directory)
";

    #[test]
    fn clean_sample_imports_fully() {
        let out = import_strace(SAMPLE.as_bytes(), 0);
        assert_eq!(out.ledger.lines, 5);
        assert_eq!(out.ledger.imported, 5);
        assert_eq!(out.ledger.skipped(), 0);
        assert!(out.ledger.reconciles());
        // open + read + write + cleanup + close + failed open = 6 records.
        assert_eq!(out.records, 6);
        assert_eq!(out.names, 2);
        let seg = Segment::parse(out.segment).expect("valid segment");
        let reader = seg.reader();
        let create_code = EventKind::Irp(MajorFunction::Create).code();
        assert_eq!(reader.footer().kind_counts[create_code as usize], 2);
        let names: Vec<String> = reader
            .names()
            .map(|n| n.path().unwrap().to_string())
            .collect();
        assert_eq!(names[0], r"\var\mail\inbox.mbx");
        // The failed open carries the not-found status.
        let last = reader.records().last().unwrap().to_record().unwrap();
        assert_eq!(last.status, NtStatus::ObjectNameNotFound);
    }

    #[test]
    fn malformed_lines_land_in_the_ledger_not_the_floor() {
        let dirty = "\
garbage without timestamp
1723111201.000125 open(\"/a.txt\", O_RDONLY) = 3
not-a-ts read(3, 100) = 100
1723111201.000200 read(3, -5) = -5
1723111201.000100 read(3, 100) = 100
1723111201.000300 read(9, 100) = 100
1723111201.000400 mmap(3, 4096) = 0
1723111201.000500 open(\"/\\303\\251\\377.dat\", O_RDONLY) = 4
1723111201.000600 close(3) = 0
1723111201.000700 read(3, 100
";
        let out = import_strace(dirty.as_bytes(), 0);
        assert_eq!(out.ledger.lines, 10);
        assert_eq!(out.ledger.imported, 2, "the open and the close");
        assert_eq!(out.ledger.malformed, 1, "unterminated read line");
        assert_eq!(out.ledger.bad_timestamp, 2, "garbage line + not-a-ts line");
        assert_eq!(out.ledger.negative_size, 1);
        assert_eq!(out.ledger.out_of_order, 1);
        assert_eq!(out.ledger.unknown_fd, 1);
        assert_eq!(out.ledger.unknown_syscall, 1);
        assert_eq!(out.ledger.non_utf8, 1, "\\377 is not UTF-8");
        assert!(out.ledger.reconciles());
        assert!(Segment::parse(out.segment).is_ok());
    }

    #[test]
    fn ticks_parse_at_full_precision() {
        assert_eq!(parse_ticks("1.0000001"), Some(10_000_001));
        assert_eq!(parse_ticks("2"), Some(20_000_000));
        assert_eq!(parse_ticks("1.5"), Some(15_000_000));
        assert_eq!(parse_ticks("x.5"), None);
        assert_eq!(parse_ticks("1.5x"), None);
    }
}
