//! Building NTT segments — one machine at a time, or a whole fleet as a
//! live export sink.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use bytes::BytesMut;
use nt_trace::{BatchMeta, MachineId, NameRecord, ShipmentConsumer, TraceRecord, RECORD_SIZE};

use crate::format::{encode_header, xxh64, Footer, KIND_SLOTS};
use crate::NttError;

/// End-of-write accounting for one segment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Machine the segment belongs to.
    pub machine: u32,
    /// Records written.
    pub records: u64,
    /// Batches written.
    pub batches: u64,
    /// Name entries written.
    pub names: u64,
    /// Total encoded size, bytes.
    pub bytes: u64,
}

/// Serializes one machine's stream into an NTT segment.
///
/// Batches must be pushed in the agent's sequence order — the writer
/// records their boundaries verbatim so a re-ingest can replay the same
/// per-batch state transitions. Paths are interned: the first occurrence
/// lands in the string table, later names reference the same bytes.
pub struct SegmentWriter {
    machine: u32,
    records: Vec<u8>,
    record_count: u64,
    batch_lens: Vec<u32>,
    kind_counts: [u64; KIND_SLOTS],
    min_ticks: u64,
    max_ticks: u64,
    strings: Vec<u8>,
    interned: HashMap<String, (u32, u32)>,
    names: Vec<u8>,
    name_count: u64,
    scratch: BytesMut,
}

impl SegmentWriter {
    /// An empty segment for `machine`.
    pub fn new(machine: u32) -> Self {
        SegmentWriter {
            machine,
            records: Vec::new(),
            record_count: 0,
            batch_lens: Vec::new(),
            kind_counts: [0; KIND_SLOTS],
            min_ticks: u64::MAX,
            max_ticks: 0,
            strings: Vec::new(),
            interned: HashMap::new(),
            names: Vec::new(),
            name_count: 0,
            scratch: BytesMut::new(),
        }
    }

    /// Appends one shipped batch, preserving its boundary. Empty batches
    /// are preserved too — the live sinks see them as batches.
    ///
    /// Fails with [`NttError::TooLarge`] when the batch holds more
    /// records than the format's 4-byte batch-length entry can encode —
    /// refusing up front instead of truncating the length with an `as`
    /// cast and writing a segment whose batch table no longer sums to
    /// its record count.
    pub fn push_batch(&mut self, records: &[TraceRecord]) -> Result<(), NttError> {
        self.batch_lens
            .push(fits_u32("batch length", records.len())?);
        for rec in records {
            self.scratch.clear();
            rec.encode(&mut self.scratch);
            debug_assert_eq!(self.scratch.len(), RECORD_SIZE);
            self.records.extend_from_slice(&self.scratch);
            if let Some(slot) = self.kind_counts.get_mut(rec.code as usize) {
                *slot += 1;
            }
            self.min_ticks = self.min_ticks.min(rec.start_ticks);
            self.max_ticks = self.max_ticks.max(rec.end_ticks);
        }
        self.record_count += records.len() as u64;
        Ok(())
    }

    /// Appends one name record, interning its path.
    ///
    /// Fails with [`NttError::TooLarge`] when the path is longer than
    /// the 4-byte length field, or when interning it would push the
    /// string table past the 4-byte offset field (4 GiB) — either cast
    /// would alias the entry onto unrelated string bytes.
    pub fn push_name(&mut self, name: &NameRecord) -> Result<(), NttError> {
        let (off, len) = match self.interned.get(&name.path) {
            Some(&span) => span,
            None => {
                let off = fits_u32("string table offset", self.strings.len())?;
                let len = fits_u32("name path length", name.path.len())?;
                self.strings.extend_from_slice(name.path.as_bytes());
                self.interned.insert(name.path.clone(), (off, len));
                (off, len)
            }
        };
        self.names
            .extend_from_slice(&name.file_object.to_le_bytes());
        self.names.extend_from_slice(&name.at_ticks.to_le_bytes());
        self.names.extend_from_slice(&name.volume.to_le_bytes());
        self.names.extend_from_slice(&name.process.to_le_bytes());
        self.names.extend_from_slice(&off.to_le_bytes());
        self.names.extend_from_slice(&len.to_le_bytes());
        self.name_count += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.record_count
    }

    /// Serializes the segment: header, sections, checksummed footer.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            crate::HEADER_SIZE
                + self.records.len()
                + self.batch_lens.len() * 4
                + self.strings.len()
                + self.names.len()
                + crate::FOOTER_SIZE,
        );
        encode_header(&mut out, self.machine);
        let records_off = out.len() as u64;
        out.extend_from_slice(&self.records);
        let batches_off = out.len() as u64;
        for len in &self.batch_lens {
            out.extend_from_slice(&len.to_le_bytes());
        }
        let strings_off = out.len() as u64;
        out.extend_from_slice(&self.strings);
        let names_off = out.len() as u64;
        out.extend_from_slice(&self.names);
        let (min_ticks, max_ticks) = if self.record_count == 0 {
            (0, 0)
        } else {
            (self.min_ticks, self.max_ticks)
        };
        let mut footer = Footer {
            records_off,
            record_count: self.record_count,
            batches_off,
            batch_count: self.batch_lens.len() as u64,
            strings_off,
            strings_len: self.strings.len() as u64,
            names_off,
            name_count: self.name_count,
            min_ticks,
            max_ticks,
            kind_counts: self.kind_counts,
            checksum: 0,
        };
        // The checksum covers everything before its own field: body plus
        // the footer's section table.
        let mut tail = Vec::with_capacity(crate::FOOTER_SIZE);
        footer.encode(&mut tail);
        let checksummed_len = out.len() + crate::FOOTER_SIZE - 16;
        out.extend_from_slice(&tail[..crate::FOOTER_SIZE - 16]);
        debug_assert_eq!(out.len(), checksummed_len);
        footer.checksum = xxh64(&out);
        out.extend_from_slice(&footer.checksum.to_le_bytes());
        out.extend_from_slice(&crate::format::FOOTER_MAGIC);
        out
    }

    /// [`SegmentWriter::finish`], written to `path`.
    pub fn write_to(self, path: &Path) -> Result<SegmentStats, NttError> {
        let machine = self.machine;
        let records = self.record_count;
        let batches = self.batch_lens.len() as u64;
        let names = self.name_count;
        let bytes = self.finish();
        std::fs::write(path, &bytes)?;
        Ok(SegmentStats {
            machine,
            records,
            batches,
            names,
            bytes: bytes.len() as u64,
        })
    }
}

/// Checked narrowing into the format's 4-byte fields: the exact value
/// `u32::MAX` still encodes, one past it is a typed refusal.
fn fits_u32(what: &'static str, n: usize) -> Result<u32, NttError> {
    u32::try_from(n).map_err(|_| NttError::TooLarge {
        what,
        max: u64::from(u32::MAX),
        got: n as u64,
    })
}

/// Canonical segment file name for a machine.
pub fn segment_file_name(machine: u32) -> String {
    format!("machine-{machine:05}.ntt")
}

/// One machine's export state inside the [`WarehouseSink`].
struct MachineExport {
    writer: SegmentWriter,
    next_seq: u64,
    parked: BTreeMap<u64, Vec<TraceRecord>>,
    /// Names keyed by sequence stamp (arrival-order names get synthetic
    /// keys from `u64::MAX / 2`, mirroring the analysis sinks).
    names: Vec<(u64, NameRecord)>,
    name_arrival: u64,
    /// First write refusal, if any. [`ShipmentConsumer::batch`] returns
    /// nothing — the collection threads cannot unwind an export error —
    /// so it parks here and [`WarehouseSink::finish`] surfaces it.
    error: Option<NttError>,
}

impl MachineExport {
    fn new(machine: u32) -> Self {
        MachineExport {
            writer: SegmentWriter::new(machine),
            next_seq: 0,
            parked: BTreeMap::new(),
            names: Vec::new(),
            name_arrival: u64::MAX / 2,
            error: None,
        }
    }

    /// Stashes the first write refusal; later ones keep the original
    /// cause.
    fn note(&mut self, result: Result<(), NttError>) {
        if let Err(e) = result {
            self.error.get_or_insert(e);
        }
    }

    /// Same reassembly discipline as `nt_analysis::MachineSink`: batches
    /// are written in the agent's stamp order, so the segment's batch
    /// table is the canonical stream no matter which servers carried it.
    fn on_batch(&mut self, seq: Option<u64>, records: Vec<TraceRecord>) {
        match seq {
            Some(s) if s > self.next_seq => {
                self.parked.insert(s, records);
            }
            Some(s) if s == self.next_seq => {
                let pushed = self.writer.push_batch(&records);
                self.note(pushed);
                self.next_seq += 1;
                while let Some(parked) = self.parked.remove(&self.next_seq) {
                    let pushed = self.writer.push_batch(&parked);
                    self.note(pushed);
                    self.next_seq += 1;
                }
            }
            _ => {
                let pushed = self.writer.push_batch(&records);
                self.note(pushed);
            }
        }
    }

    fn finish(mut self) -> Result<SegmentWriter, NttError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let parked: Vec<Vec<TraceRecord>> =
            std::mem::take(&mut self.parked).into_values().collect();
        for records in parked {
            self.writer.push_batch(&records)?;
        }
        self.names.sort_by_key(|(k, _)| *k);
        for (_, name) in &self.names {
            self.writer.push_name(name)?;
        }
        Ok(self.writer)
    }
}

/// A [`ShipmentConsumer`] that exports the fleet to an NTT warehouse
/// directory while the study runs — one segment file per machine,
/// written at [`WarehouseSink::finish`].
///
/// Distinct machines contend only on their own mutex, so the export adds
/// no cross-machine serialization to the collection-server threads; it
/// is designed to be tee'd beside a live `AnalysisSet`.
pub struct WarehouseSink {
    dir: PathBuf,
    index: HashMap<u32, usize>,
    exports: Vec<Mutex<MachineExport>>,
}

impl WarehouseSink {
    /// A sink exporting `machines` into `dir` (created if missing).
    pub fn create(dir: &Path, machines: &[u32]) -> Result<Self, NttError> {
        std::fs::create_dir_all(dir)?;
        let mut ids: Vec<u32> = machines.to_vec();
        ids.sort_unstable();
        ids.dedup();
        let index = ids.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        let exports = ids
            .iter()
            .map(|&m| Mutex::new(MachineExport::new(m)))
            .collect();
        Ok(WarehouseSink {
            dir: dir.to_path_buf(),
            index,
            exports,
        })
    }

    fn lock(&self, i: usize) -> MutexGuard<'_, MachineExport> {
        self.exports[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Writes every machine's segment file and returns the per-segment
    /// stats, in machine-id order.
    pub fn finish(self) -> Result<Vec<SegmentStats>, NttError> {
        let mut order: Vec<(u32, usize)> = self.index.iter().map(|(&m, &i)| (m, i)).collect();
        order.sort_unstable();
        let mut exports: Vec<Option<MachineExport>> = self
            .exports
            .into_iter()
            .map(|m| Some(m.into_inner().unwrap_or_else(PoisonError::into_inner)))
            .collect();
        let mut stats = Vec::with_capacity(order.len());
        for (machine, i) in order {
            let export = exports[i].take().expect("each export finishes once");
            let path = self.dir.join(segment_file_name(machine));
            stats.push(export.finish()?.write_to(&path)?);
        }
        Ok(stats)
    }
}

impl ShipmentConsumer for WarehouseSink {
    fn batch(
        &self,
        machine: MachineId,
        seq: Option<u64>,
        records: Vec<TraceRecord>,
        _meta: Option<BatchMeta>,
    ) {
        if let Some(&i) = self.index.get(&machine.0) {
            self.lock(i).on_batch(seq, records);
        }
    }

    fn name(&self, machine: MachineId, seq: Option<u64>, name: NameRecord) {
        if let Some(&i) = self.index.get(&machine.0) {
            let mut export = self.lock(i);
            let key = seq.unwrap_or_else(|| {
                let k = export.name_arrival;
                export.name_arrival += 1;
                k
            });
            export.names.push((key, name));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact boundary: `u32::MAX` encodes, `u32::MAX + 1` is a typed
    /// refusal carrying the limit and the offending value — never a
    /// silent wrap. (Exercised on the helper: materializing 2^32 records
    /// or a 4 GiB string table to hit it end-to-end is not a unit test.)
    #[test]
    fn narrowing_refuses_exactly_past_u32_max() {
        assert_eq!(fits_u32("x", 0).unwrap(), 0);
        assert_eq!(fits_u32("x", u32::MAX as usize).unwrap(), u32::MAX);
        match fits_u32("batch length", u32::MAX as usize + 1) {
            Err(NttError::TooLarge { what, max, got }) => {
                assert_eq!(what, "batch length");
                assert_eq!(max, u64::from(u32::MAX));
                assert_eq!(got, u64::from(u32::MAX) + 1);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn too_large_display_names_the_field() {
        let e = NttError::TooLarge {
            what: "name path length",
            max: u64::from(u32::MAX),
            got: 5_000_000_000,
        };
        let msg = e.to_string();
        assert!(msg.contains("name path length"), "{msg}");
        assert!(msg.contains("5000000000"), "{msg}");
    }

    /// In-bounds pushes keep succeeding after the API grew its error
    /// path — the common case is untouched.
    #[test]
    fn in_bounds_pushes_succeed() {
        let mut w = SegmentWriter::new(0);
        w.push_batch(&[]).expect("empty batch fits");
        w.push_name(&NameRecord {
            file_object: 1,
            volume: 0,
            process: 1,
            path: r"\a.dat".into(),
            at_ticks: 1,
        })
        .expect("short path fits");
        assert_eq!(w.records(), 0);
    }
}
