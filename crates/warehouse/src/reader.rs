//! Zero-copy segment reading and the warehouse directory wrapper.

use std::path::{Path, PathBuf};

use nt_io::EventKind;
use nt_trace::{NameRecord, TraceRecord, RECORD_SIZE};

use crate::format::{decode_header, xxh64, Footer, BATCH_ENTRY_SIZE, NAME_ENTRY_SIZE};
use crate::NttError;

/// A borrowed, validated view over one NTT segment.
///
/// Parsing validates the header, footer magic, checksum, section table
/// and batch-length sum once; after that every accessor is a bounds-safe
/// slice into the original buffer. Records are yielded as [`RecordView`]s
/// — borrowed 88-byte windows with field accessors — so a scan allocates
/// nothing per record. The only owned state is the decoded footer.
#[derive(Clone)]
pub struct SegmentReader<'a> {
    data: &'a [u8],
    machine: u32,
    footer: Footer,
}

/// Owns a segment's bytes plus its decoded footer, so readers can be
/// re-created cheaply without re-hashing the body.
pub struct Segment {
    machine: u32,
    bytes: Vec<u8>,
    footer: Footer,
}

impl Segment {
    /// Parses and fully validates `bytes` as an NTT segment.
    pub fn parse(bytes: Vec<u8>) -> Result<Segment, NttError> {
        let (machine, footer) = validate(&bytes)?;
        Ok(Segment {
            machine,
            bytes,
            footer,
        })
    }

    /// Reads and validates a segment file.
    pub fn open(path: &Path) -> Result<Segment, NttError> {
        Segment::parse(std::fs::read(path)?)
    }

    /// The machine this segment belongs to.
    pub fn machine(&self) -> u32 {
        self.machine
    }

    /// A zero-copy reader over the validated bytes.
    pub fn reader(&self) -> SegmentReader<'_> {
        SegmentReader {
            data: &self.bytes,
            machine: self.machine,
            footer: self.footer.clone(),
        }
    }
}

/// Full validation: header, footer (incl. section table), checksum, and
/// the batch table summing to the record count.
fn validate(data: &[u8]) -> Result<(u32, Footer), NttError> {
    let machine = decode_header(data)?;
    let footer = Footer::decode(data)?;
    let computed = xxh64(&data[..data.len() - 16]);
    if computed != footer.checksum {
        return Err(NttError::ChecksumMismatch {
            stored: footer.checksum,
            computed,
        });
    }
    // The batch table must partition the record section exactly.
    let mut covered = 0u64;
    let batches = &data[footer.batches_off as usize
        ..footer.batches_off as usize + footer.batch_count as usize * BATCH_ENTRY_SIZE];
    for entry in batches.chunks_exact(BATCH_ENTRY_SIZE) {
        covered = covered
            .checked_add(u64::from(u32::from_le_bytes(
                entry.try_into().expect("4 bytes"),
            )))
            .ok_or(NttError::BadLayout("batch lengths overflow"))?;
    }
    if covered != footer.record_count {
        return Err(NttError::BadLayout(
            "batch lengths must sum to the record count",
        ));
    }
    if footer.kind_counts.iter().sum::<u64>() != footer.record_count {
        return Err(NttError::BadLayout(
            "kind counts must sum to the record count",
        ));
    }
    Ok((machine, footer))
}

impl<'a> SegmentReader<'a> {
    /// Parses and fully validates a borrowed segment — the mmap-shaped
    /// entry point: any `&[u8]`, including a mapped file, works.
    pub fn parse(data: &'a [u8]) -> Result<Self, NttError> {
        let (machine, footer) = validate(data)?;
        Ok(SegmentReader {
            data,
            machine,
            footer,
        })
    }

    /// The machine this segment belongs to.
    pub fn machine(&self) -> u32 {
        self.machine
    }

    /// The validated footer: counts, time span, per-kind counts.
    pub fn footer(&self) -> &Footer {
        &self.footer
    }

    /// Number of records.
    pub fn record_count(&self) -> u64 {
        self.footer.record_count
    }

    /// Borrowed record windows, in stream order.
    pub fn records(&self) -> impl Iterator<Item = RecordView<'a>> + '_ {
        let base = self.footer.records_off as usize;
        let data = self.data;
        (0..self.footer.record_count as usize).map(move |i| {
            RecordView::new(&data[base + i * RECORD_SIZE..base + (i + 1) * RECORD_SIZE])
        })
    }

    /// Batch lengths, in shipment order.
    pub fn batch_lens(&self) -> impl Iterator<Item = u32> + 'a {
        let base = self.footer.batches_off as usize;
        self.data[base..base + self.footer.batch_count as usize * BATCH_ENTRY_SIZE]
            .chunks_exact(BATCH_ENTRY_SIZE)
            .map(|e| u32::from_le_bytes(e.try_into().expect("4 bytes")))
    }

    /// The record stream re-cut at the original batch boundaries: each
    /// item is the batch's records as borrowed views.
    pub fn batches(&self) -> impl Iterator<Item = &'a [u8]> + '_ {
        let base = self.footer.records_off as usize;
        let data = self.data;
        let mut at = 0usize;
        self.batch_lens().map(move |len| {
            let start = base + at * RECORD_SIZE;
            at += len as usize;
            &data[start..base + at * RECORD_SIZE]
        })
    }

    /// Decodes batch `bytes` (as yielded by [`SegmentReader::batches`])
    /// into owned records; `first_index` is the batch's starting record
    /// index, used for error attribution.
    pub fn decode_batch(batch: &[u8], first_index: u64) -> Result<Vec<TraceRecord>, NttError> {
        let mut out = Vec::with_capacity(batch.len() / RECORD_SIZE);
        for (i, window) in batch.chunks_exact(RECORD_SIZE).enumerate() {
            out.push(
                RecordView::new(window)
                    .to_record()
                    .map_err(|_| NttError::BadRecord {
                        index: first_index + i as u64,
                    })?,
            );
        }
        Ok(out)
    }

    /// Borrowed name entries, in write order.
    pub fn names(&self) -> impl Iterator<Item = NameView<'a>> + '_ {
        let base = self.footer.names_off as usize;
        let strings = &self.data[self.footer.strings_off as usize..self.footer.names_off as usize];
        let data = self.data;
        (0..self.footer.name_count as usize).map(move |i| NameView {
            bytes: &data[base + i * NAME_ENTRY_SIZE..base + (i + 1) * NAME_ENTRY_SIZE],
            strings,
            index: i as u64,
        })
    }
}

/// A borrowed 88-byte record window with field accessors. No allocation,
/// no validation until [`RecordView::to_record`] decodes the enums.
#[derive(Clone, Copy)]
pub struct RecordView<'a> {
    bytes: &'a [u8],
}

impl<'a> RecordView<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        debug_assert_eq!(bytes.len(), RECORD_SIZE);
        RecordView { bytes }
    }

    #[inline]
    fn u64_at(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Event-kind code (0–53).
    #[inline]
    pub fn code(&self) -> u8 {
        self.bytes[0]
    }

    /// The event kind, when the code is valid.
    pub fn kind(&self) -> Option<EventKind> {
        EventKind::from_code(self.code())
    }

    /// Header flags byte.
    #[inline]
    pub fn flags(&self) -> u8 {
        self.bytes[1]
    }

    /// File-object id.
    #[inline]
    pub fn file_object(&self) -> u64 {
        self.u64_at(8)
    }

    /// Requesting process.
    #[inline]
    pub fn process(&self) -> u32 {
        u32::from_le_bytes(self.bytes[24..28].try_into().expect("4 bytes"))
    }

    /// Request offset.
    #[inline]
    pub fn offset(&self) -> u64 {
        self.u64_at(32)
    }

    /// Requested length.
    #[inline]
    pub fn length(&self) -> u64 {
        self.u64_at(40)
    }

    /// Bytes transferred.
    #[inline]
    pub fn transferred(&self) -> u64 {
        self.u64_at(48)
    }

    /// Arrival timestamp, 100 ns ticks.
    #[inline]
    pub fn start_ticks(&self) -> u64 {
        self.u64_at(72)
    }

    /// Completion timestamp, 100 ns ticks.
    #[inline]
    pub fn end_ticks(&self) -> u64 {
        self.u64_at(80)
    }

    /// The raw 88 bytes.
    pub fn raw(&self) -> &'a [u8] {
        self.bytes
    }

    /// Decodes into an owned [`TraceRecord`], validating every enum
    /// field.
    pub fn to_record(&self) -> Result<TraceRecord, NttError> {
        TraceRecord::decode(&mut { self.bytes }).ok_or(NttError::BadRecord { index: 0 })
    }
}

/// A borrowed name-table entry; the path is a `&str` into the segment's
/// string table.
#[derive(Clone, Copy)]
pub struct NameView<'a> {
    bytes: &'a [u8],
    strings: &'a [u8],
    index: u64,
}

impl<'a> NameView<'a> {
    /// File-object id.
    pub fn file_object(&self) -> u64 {
        u64::from_le_bytes(self.bytes[0..8].try_into().expect("8 bytes"))
    }

    /// Creation tick.
    pub fn at_ticks(&self) -> u64 {
        u64::from_le_bytes(self.bytes[8..16].try_into().expect("8 bytes"))
    }

    /// Volume index.
    pub fn volume(&self) -> u32 {
        u32::from_le_bytes(self.bytes[16..20].try_into().expect("4 bytes"))
    }

    /// Opening process.
    pub fn process(&self) -> u32 {
        u32::from_le_bytes(self.bytes[20..24].try_into().expect("4 bytes"))
    }

    /// The interned path, borrowed from the string table.
    pub fn path(&self) -> Result<&'a str, NttError> {
        let off = u32::from_le_bytes(self.bytes[24..28].try_into().expect("4 bytes")) as usize;
        let len = u32::from_le_bytes(self.bytes[28..32].try_into().expect("4 bytes")) as usize;
        let end = off.checked_add(len).filter(|&e| e <= self.strings.len());
        let span = end.map(|e| &self.strings[off..e]);
        span.and_then(|s| std::str::from_utf8(s).ok())
            .ok_or(NttError::BadString { index: self.index })
    }

    /// Decodes into an owned [`NameRecord`].
    pub fn to_name(&self) -> Result<NameRecord, NttError> {
        Ok(NameRecord {
            file_object: self.file_object(),
            volume: self.volume(),
            process: self.process(),
            path: self.path()?.to_string(),
            at_ticks: self.at_ticks(),
        })
    }
}

/// An opened warehouse directory: every `*.ntt` segment, parsed and
/// validated, in machine-id order.
pub struct Warehouse {
    dir: PathBuf,
    segments: Vec<Segment>,
}

impl Warehouse {
    /// Opens `dir`, reading and validating every `.ntt` segment in it.
    pub fn open(dir: &Path) -> Result<Warehouse, NttError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "ntt"))
            .collect();
        paths.sort();
        let mut segments = Vec::with_capacity(paths.len());
        for path in paths {
            segments.push(Segment::open(&path)?);
        }
        segments.sort_by_key(Segment::machine);
        Ok(Warehouse {
            dir: dir.to_path_buf(),
            segments,
        })
    }

    /// The directory this warehouse was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The validated segments, in machine-id order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Machine ids present, in order.
    pub fn machines(&self) -> Vec<u32> {
        self.segments.iter().map(Segment::machine).collect()
    }

    /// Total records across segments.
    pub fn total_records(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.reader().record_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::SegmentWriter;
    use nt_io::NtStatus;

    fn rec(code: u8, fo: u64, start: u64) -> TraceRecord {
        TraceRecord {
            code,
            flags: 0,
            status: NtStatus::Success,
            set_info: None,
            access: None,
            disposition: None,
            options: None,
            file_object: fo,
            fcb: u64::MAX,
            process: 7,
            volume: 0,
            offset: 0,
            length: 4096,
            transferred: 4096,
            file_size: 1 << 16,
            byte_offset: 0,
            start_ticks: start,
            end_ticks: start + 250,
        }
    }

    #[test]
    fn write_read_roundtrip_preserves_everything() {
        let mut w = SegmentWriter::new(3);
        let batches = vec![
            vec![rec(0, 1, 100), rec(3, 1, 200)],
            vec![],
            vec![rec(18, 1, 300), rec(2, 1, 400), rec(31, 2, 500)],
        ];
        for b in &batches {
            w.push_batch(b).unwrap();
        }
        w.push_name(&NameRecord {
            file_object: 1,
            volume: 0,
            process: 7,
            path: r"\winnt\notepad.exe".into(),
            at_ticks: 100,
        })
        .unwrap();
        w.push_name(&NameRecord {
            file_object: 2,
            volume: 0,
            process: 7,
            path: r"\winnt\notepad.exe".into(),
            at_ticks: 500,
        })
        .unwrap();
        let seg = Segment::parse(w.finish()).expect("valid segment");
        assert_eq!(seg.machine(), 3);
        let r = seg.reader();
        assert_eq!(r.record_count(), 5);
        assert_eq!(r.footer().batch_count, 3);
        assert_eq!(r.footer().min_ticks, 100);
        assert_eq!(r.footer().max_ticks, 750);
        assert_eq!(r.footer().kind_counts[0], 1);
        assert_eq!(r.footer().kind_counts[31], 1);
        let flat: Vec<TraceRecord> = batches.iter().flatten().copied().collect();
        let back: Vec<TraceRecord> = r.records().map(|v| v.to_record().unwrap()).collect();
        assert_eq!(back, flat);
        assert_eq!(
            r.batch_lens().collect::<Vec<_>>(),
            vec![2, 0, 3],
            "batch boundaries survive"
        );
        // The two names share one interned path.
        let names: Vec<NameRecord> = r.names().map(|n| n.to_name().unwrap()).collect();
        assert_eq!(names.len(), 2);
        assert_eq!(names[0].path, names[1].path);
        assert_eq!(r.footer().strings_len, r"\winnt\notepad.exe".len() as u64);
    }

    #[test]
    fn empty_segment_is_valid() {
        let seg = Segment::parse(SegmentWriter::new(9).finish()).expect("empty is fine");
        let r = seg.reader();
        assert_eq!(r.record_count(), 0);
        assert_eq!(r.footer().min_ticks, 0);
        assert_eq!(r.names().count(), 0);
    }

    #[test]
    fn any_single_byte_corruption_is_rejected() {
        let mut w = SegmentWriter::new(1);
        w.push_batch(&[rec(0, 1, 10), rec(3, 1, 20)]).unwrap();
        w.push_name(&NameRecord {
            file_object: 1,
            volume: 0,
            process: 1,
            path: r"\x.dat".into(),
            at_ticks: 10,
        })
        .unwrap();
        let good = w.finish();
        assert!(Segment::parse(good.clone()).is_ok());
        for at in 0..good.len() {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            assert!(
                Segment::parse(bad).is_err(),
                "corruption at byte {at} went undetected"
            );
        }
        // Truncation at every length is an error, never a panic.
        for len in 0..good.len() {
            assert!(Segment::parse(good[..len].to_vec()).is_err());
        }
    }
}
