//! The NTT binary trace warehouse.
//!
//! The study post-processed its traces into a 19 GB warehouse of roughly
//! 190 million records; everything this repository analyzed before this
//! crate existed was self-generated and lived only for the length of one
//! process. NTT (*NT Trace*) is the interchange layer: a versioned,
//! little-endian, mmap-friendly binary segment format that captures one
//! machine's full shipment stream — fixed-width trace records, the batch
//! boundaries the agent shipped them in, and the name dimension with its
//! paths interned into a string table — so a study can be exported while
//! it runs, re-ingested later through the exact same streaming
//! accumulators, or replaced wholesale by traces captured somewhere else.
//!
//! The design constraints, in order:
//!
//! 1. **Zero-copy reads.** A segment is parsed by validating a fixed-size
//!    footer; after that every record access is a borrowed 88-byte slice
//!    ([`RecordView`]) and every path a borrowed `&str` into the string
//!    table. Nothing is allocated per record, so a reader can scan a
//!    paper-scale warehouse at memory-bandwidth speed (and the layout
//!    works equally well over `mmap`, which is just another `&[u8]`).
//! 2. **Self-verifying.** The footer carries record/name counts, the
//!    sim-time span, per-kind counts for all 54 event kinds, and an
//!    XXH64 checksum over the entire body. Truncation, bit rot and
//!    version skew surface as typed [`NttError`]s, never panics.
//! 3. **Replay fidelity.** Batch boundaries are preserved (a section of
//!    batch lengths), so re-ingesting a segment drives the streaming
//!    sinks through the same per-batch state transitions as the live
//!    run — bit-identical fact tables *and* watermarks like
//!    `peak_open_sessions`.
//!
//! Modules:
//!
//! * [`mod@format`] — the byte-level layout: header, sections, footer,
//!   checksum. The normative spec lives in `DESIGN.md` §10.
//! * [`writer`] — [`SegmentWriter`] (one machine → one segment) and
//!   [`WarehouseSink`], a [`nt_trace::ShipmentConsumer`] that exports a
//!   whole fleet during a live study.
//! * [`reader`] — [`SegmentReader`] and the [`Warehouse`] directory
//!   wrapper.
//! * [`import`] — foreign-format importers; today an strace-style text
//!   importer with a loss ledger for malformed input.
//! * [`source`] — the [`TraceSource`] abstraction: per-machine batch and
//!   name visitation shared by analysis re-ingest and what-if replay,
//!   implemented here for [`Warehouse`] and in `nt-study` for live
//!   fact tables.

pub mod format;
pub mod import;
pub mod reader;
pub mod source;
pub mod writer;

pub use format::{Footer, FOOTER_SIZE, HEADER_SIZE, NTT_VERSION};
pub use import::{import_strace, ImportLedger, StraceImport};
pub use reader::{NameView, RecordView, Segment, SegmentReader, Warehouse};
pub use source::TraceSource;
pub use writer::{SegmentStats, SegmentWriter, WarehouseSink};

use std::fmt;

/// Why a segment (or warehouse) could not be read or written. Malformed
/// input is a value, not a panic: every constructor in this crate
/// returns one of these instead of trusting its bytes.
#[derive(Debug)]
pub enum NttError {
    /// An underlying file operation failed.
    Io(std::io::Error),
    /// The buffer is too short to even hold a header and footer, or a
    /// section runs past the end of the file.
    Truncated {
        /// Bytes the structure needed.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The leading magic is not `NTTW`.
    BadMagic,
    /// The trailing footer magic is not `NTTWEND1`.
    BadFooterMagic,
    /// The segment was written by a format version this reader does not
    /// speak.
    UnsupportedVersion(u16),
    /// The stored XXH64 checksum does not match the body.
    ChecksumMismatch {
        /// Checksum recorded in the footer.
        stored: u64,
        /// Checksum recomputed over the body.
        computed: u64,
    },
    /// The footer's section table is internally inconsistent (overlap,
    /// bad ordering, count/size mismatch). The message names the rule.
    BadLayout(&'static str),
    /// A record slot failed field validation when decoded.
    BadRecord {
        /// Zero-based record index within the segment.
        index: u64,
    },
    /// A name entry pointed outside the string table or at non-UTF-8
    /// bytes.
    BadString {
        /// Zero-based name index within the segment.
        index: u64,
    },
    /// A value exceeds the format's fixed-width field for it — a batch
    /// of more than `u32::MAX` records, or a string table past 4 GiB.
    /// Writing it with a narrowing `as` cast would silently corrupt the
    /// segment; the writer refuses instead.
    TooLarge {
        /// The field that overflowed.
        what: &'static str,
        /// The field's maximum encodable value.
        max: u64,
        /// The value that did not fit.
        got: u64,
    },
}

impl fmt::Display for NttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NttError::Io(e) => write!(f, "warehouse I/O error: {e}"),
            NttError::Truncated { need, have } => {
                write!(f, "truncated segment: need {need} bytes, have {have}")
            }
            NttError::BadMagic => write!(f, "not an NTT segment (bad magic)"),
            NttError::BadFooterMagic => write!(f, "corrupt NTT segment (bad footer magic)"),
            NttError::UnsupportedVersion(v) => write!(f, "unsupported NTT version {v}"),
            NttError::ChecksumMismatch { stored, computed } => write!(
                f,
                "NTT checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            NttError::BadLayout(rule) => write!(f, "inconsistent NTT section table: {rule}"),
            NttError::BadRecord { index } => write!(f, "malformed record at index {index}"),
            NttError::BadString { index } => write!(f, "malformed name string at index {index}"),
            NttError::TooLarge { what, max, got } => {
                write!(f, "{what} {got} exceeds the format limit of {max}")
            }
        }
    }
}

impl std::error::Error for NttError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NttError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NttError {
    fn from(e: std::io::Error) -> Self {
        NttError::Io(e)
    }
}
