//! [`TraceSource`]: the one abstraction every trace consumer shares.
//!
//! PR 7 gave the repository two ways to hold a trace — live in memory as
//! the shipment stream a study just produced, or at rest in an NTT
//! warehouse directory — and two consumers that each hard-coded one of
//! them (analysis re-ingest read segments, replay read `TraceSet`s).
//! `TraceSource` is the seam between them: a consumer asks for machines
//! in ascending order and visits each machine's record batches and name
//! records in their canonical stored order, without knowing whether the
//! bytes come from a zero-copy segment scan or a vector that never left
//! the process. Both the warehouse re-ingest driver and the what-if
//! replay engine in `nt-study` consume traces exclusively through this
//! trait.

use crate::reader::{SegmentReader, Warehouse};
use crate::NttError;
use nt_trace::{NameRecord, TraceRecord};

/// A trace, wherever it lives: per-machine record batches plus the name
/// dimension, visited in canonical order.
///
/// The determinism contract every implementation must honour (and the
/// reason visitors, not iterators, are the interface — a segment reader
/// borrows from the mapped file and cannot escape the visit):
///
/// * [`machines`](TraceSource::machines) is ascending and duplicate-free.
/// * For one machine, batches arrive in the exact order the collection
///   tier delivered them (the `MachineSink` stamp order the warehouse
///   preserves), with batch boundaries intact.
/// * Name records arrive in a stable per-machine order.
///
/// Two sources describing the same trace therefore drive any consumer
/// through identical state transitions — the property
/// `tests/whatif.rs` pins by replaying live-vs-warehouse bit-identically.
pub trait TraceSource {
    /// Machines present in the trace, ascending.
    fn machines(&self) -> Vec<u32>;

    /// Visits every record batch of `machine` in stored order, calling
    /// `visit(batch_seq, records)` with consecutive sequence stamps
    /// starting at 0. A machine absent from the source is a no-op.
    fn visit_batches(
        &self,
        machine: u32,
        visit: &mut dyn FnMut(u64, Vec<TraceRecord>),
    ) -> Result<(), NttError>;

    /// Visits every name record of `machine` in stored order, calling
    /// `visit(name_seq, name)` with consecutive stamps starting at 0.
    fn visit_names(
        &self,
        machine: u32,
        visit: &mut dyn FnMut(u64, NameRecord),
    ) -> Result<(), NttError>;
}

/// A warehouse directory is a trace source: each machine's segment is
/// scanned zero-copy, batches decoded at their stored boundaries.
impl TraceSource for Warehouse {
    fn machines(&self) -> Vec<u32> {
        Warehouse::machines(self)
    }

    fn visit_batches(
        &self,
        machine: u32,
        visit: &mut dyn FnMut(u64, Vec<TraceRecord>),
    ) -> Result<(), NttError> {
        for segment in self.segments().iter().filter(|s| s.machine() == machine) {
            let reader = segment.reader();
            let mut first = 0u64;
            for (seq, batch) in reader.batches().enumerate() {
                let decoded = SegmentReader::decode_batch(batch, first)?;
                first += decoded.len() as u64;
                visit(seq as u64, decoded);
            }
        }
        Ok(())
    }

    fn visit_names(
        &self,
        machine: u32,
        visit: &mut dyn FnMut(u64, NameRecord),
    ) -> Result<(), NttError> {
        for segment in self.segments().iter().filter(|s| s.machine() == machine) {
            let reader = segment.reader();
            for (seq, name) in reader.names().enumerate() {
                visit(seq as u64, name.to_name()?);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::SegmentWriter;
    use nt_io::NtStatus;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ntt-source-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(file_object: u64, start: u64) -> TraceRecord {
        TraceRecord {
            code: 0,
            flags: 0,
            status: NtStatus::Success,
            set_info: None,
            access: None,
            disposition: None,
            options: None,
            file_object,
            fcb: file_object,
            process: 7,
            volume: 0,
            offset: 0,
            length: 0,
            transferred: 0,
            file_size: 0,
            byte_offset: 0,
            start_ticks: start,
            end_ticks: start + 5,
        }
    }

    #[test]
    fn warehouse_source_preserves_batch_boundaries_and_order() {
        let dir = temp_dir("batches");
        let mut w = SegmentWriter::new(9);
        w.push_batch(&[record(1, 10), record(2, 20)]).unwrap();
        w.push_batch(&[record(3, 30)]).unwrap();
        w.push_name(&NameRecord {
            file_object: 1,
            volume: 0,
            process: 7,
            path: r"\a\b.txt".to_string(),
            at_ticks: 1,
        })
        .unwrap();
        std::fs::write(dir.join("m00009.ntt"), w.finish()).unwrap();

        let warehouse = Warehouse::open(&dir).unwrap();
        assert_eq!(TraceSource::machines(&warehouse), vec![9]);

        let mut batches = Vec::new();
        warehouse
            .visit_batches(9, &mut |seq, recs| {
                batches.push((seq, recs.iter().map(|r| r.file_object).collect::<Vec<_>>()));
            })
            .unwrap();
        assert_eq!(batches, vec![(0, vec![1, 2]), (1, vec![3])]);

        let mut names = Vec::new();
        warehouse
            .visit_names(9, &mut |seq, n| names.push((seq, n.path)))
            .unwrap();
        assert_eq!(names, vec![(0, r"\a\b.txt".to_string())]);

        // A machine the warehouse has never seen visits nothing.
        warehouse
            .visit_batches(10, &mut |_, _| panic!("machine 10 has no segment"))
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
