//! Virtual time with the 100 ns granularity of the original trace records.
//!
//! The paper (§3.2) records two timestamps per trace record "with a 100
//! nanosecond granularity" — the native Windows NT `FILETIME` unit. All
//! simulated clocks use the same tick so recorded latencies and
//! inter-arrival periods can be analysed exactly as the paper does.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of 100 ns ticks in one microsecond.
pub const TICKS_PER_MICRO: u64 = 10;
/// Number of 100 ns ticks in one millisecond.
pub const TICKS_PER_MILLI: u64 = 10_000;
/// Number of 100 ns ticks in one second.
pub const TICKS_PER_SEC: u64 = 10_000_000;

/// An instant on the virtual clock, counted in 100 ns ticks since boot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, counted in 100 ns ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant of simulated boot.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw 100 ns ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Creates an instant `secs` seconds after boot.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SEC)
    }

    /// Creates an instant `ms` milliseconds after boot.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * TICKS_PER_MILLI)
    }

    /// Creates an instant `us` microseconds after boot.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * TICKS_PER_MICRO)
    }

    /// Raw tick count since boot.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since boot (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / TICKS_PER_MILLI
    }

    /// Whole seconds since boot (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / TICKS_PER_SEC
    }

    /// Seconds since boot as a float, for statistics.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference, `None` when `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw 100 ns ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SEC)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * TICKS_PER_MILLI)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * TICKS_PER_MICRO)
    }

    /// Creates a span from fractional seconds, saturating at the range ends.
    ///
    /// Negative and NaN inputs clamp to zero; this is the natural behaviour
    /// for sampled inter-arrival gaps where a distribution can produce
    /// slightly negative values.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let ticks = secs * TICKS_PER_SEC as f64;
        if ticks >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ticks as u64)
        }
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / TICKS_PER_MICRO
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / TICKS_PER_MILLI
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / TICKS_PER_SEC
    }

    /// Seconds as a float, for statistics.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Milliseconds as a float, for statistics.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_MILLI as f64
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// Panics in debug builds when `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] for possibly-unordered pairs.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", SimDuration(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    /// Renders with the most natural unit, e.g. `1.5ms` or `2.3s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.0;
        if t < TICKS_PER_MICRO {
            write!(f, "{}00ns", t)
        } else if t < TICKS_PER_MILLI {
            write!(f, "{:.1}us", t as f64 / TICKS_PER_MICRO as f64)
        } else if t < TICKS_PER_SEC {
            write!(f, "{:.1}ms", t as f64 / TICKS_PER_MILLI as f64)
        } else {
            write!(f, "{:.1}s", t as f64 / TICKS_PER_SEC as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).ticks(), 3 * TICKS_PER_SEC);
        assert_eq!(SimTime::from_millis(3).as_millis(), 3);
        assert_eq!(SimTime::from_micros(7).ticks(), 70);
        assert_eq!(SimDuration::from_secs(2).as_secs(), 2);
        assert_eq!(SimDuration::from_millis(1500).as_secs(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
        assert_eq!(
            SimDuration::from_millis(4) * 3,
            SimDuration::from_millis(12)
        );
        assert_eq!(SimDuration::from_millis(9) / 3, SimDuration::from_millis(3));
    }

    #[test]
    fn saturating_since_is_zero_for_reversed_pair() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_ticks(5).to_string(), "500ns");
        assert_eq!(SimDuration::from_micros(15).to_string(), "15.0us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.0ms");
        assert_eq!(SimDuration::from_secs(90).to_string(), "90.0s");
    }

    #[test]
    fn float_seconds_are_consistent() {
        let d = SimDuration::from_millis(2500);
        assert!((d.as_secs_f64() - 2.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 2500.0).abs() < 1e-9);
    }
}
