//! Deterministic random-number plumbing.
//!
//! Every simulated machine, user and application model draws from its own
//! [`SimRng`] stream derived from the study seed via [`derive_seed`], so
//! adding a machine to a deployment never perturbs the event streams of the
//! existing machines — the property that makes calibration experiments
//! comparable across runs.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG used throughout the simulator.
///
/// `SmallRng` (xoshiro256++ on 64-bit targets) is deterministic for a given
/// seed, fast, and statistically sound for workload synthesis; nothing in
/// the study needs cryptographic strength.
pub type SimRng = SmallRng;

/// Derives an independent child seed from a parent seed and a label path.
///
/// Uses the SplitMix64 finalizer over the parent seed and each label, which
/// is the standard seed-derivation construction for xoshiro-family
/// generators.
///
/// # Examples
///
/// ```
/// use nt_sim::derive_seed;
///
/// let a = derive_seed(42, &[1, 0]);
/// let b = derive_seed(42, &[1, 1]);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, &[1, 0]));
/// ```
pub fn derive_seed(parent: u64, labels: &[u64]) -> u64 {
    let mut state = splitmix64(parent ^ 0x9e37_79b9_7f4a_7c15);
    for &label in labels {
        state = splitmix64(state ^ splitmix64(label.wrapping_add(0xbf58_476d_1ce4_e5b9)));
    }
    state
}

/// Builds a [`SimRng`] from a parent seed and label path.
pub fn rng_for(parent: u64, labels: &[u64]) -> SimRng {
    SimRng::seed_from_u64(derive_seed(parent, labels))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(7, &[1, 2, 3]), derive_seed(7, &[1, 2, 3]));
    }

    #[test]
    fn derivation_separates_paths() {
        let seeds = [
            derive_seed(7, &[]),
            derive_seed(7, &[0]),
            derive_seed(7, &[1]),
            derive_seed(7, &[0, 0]),
            derive_seed(7, &[0, 1]),
            derive_seed(8, &[0]),
        ];
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "seed collision at ({i},{j})");
            }
        }
    }

    #[test]
    fn rng_streams_reproduce() {
        let mut a = rng_for(99, &[4]);
        let mut b = rng_for(99, &[4]);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn rng_streams_differ_between_machines() {
        let mut a = rng_for(99, &[4]);
        let mut b = rng_for(99, &[5]);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2, "independent streams should not track each other");
    }
}
