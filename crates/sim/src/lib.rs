//! Discrete-event simulation kernel for the NT file-system usage study.
//!
//! The original study traced real Windows NT 4.0 machines with a kernel
//! filter driver and 100 ns timestamps. This crate provides the substrate
//! that replaces real time and real machines: a virtual clock with the same
//! 100 ns granularity ([`SimTime`]), an event heap ([`Engine`]), and
//! deterministic random-number plumbing ([`rng`]).
//!
//! # Examples
//!
//! ```
//! use nt_sim::{Engine, SimDuration};
//!
//! let mut engine: Engine<u32> = Engine::new();
//! engine.schedule_in(SimDuration::from_millis(5), |world, _eng| *world += 1);
//! let mut world = 0;
//! engine.run(&mut world);
//! assert_eq!(world, 1);
//! assert_eq!(engine.now().as_millis(), 5);
//! ```

pub mod engine;
pub mod rng;
pub mod time;

pub use engine::{Engine, EventId};
pub use rng::{derive_seed, rng_for, SimRng};
pub use time::{SimDuration, SimTime, TICKS_PER_MICRO, TICKS_PER_MILLI, TICKS_PER_SEC};
