//! The event heap that drives all simulated machines.
//!
//! An [`Engine`] owns a priority queue of timed events. Each event is a
//! boxed closure that receives mutable access to both the world state `W`
//! and the engine itself, so firing an event may schedule further events —
//! the pattern used by the cache manager's lazy-writer scans, read-ahead
//! completions, and the workload generator's application scripts.
//!
//! Events at equal timestamps fire in scheduling order (a strict FIFO tie
//! break), which keeps runs bit-for-bit reproducible for a given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

type BoxedEvent<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    cancelled_slot: usize,
    action: BoxedEvent<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<W> Eq for Entry<W> {}

impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with the lowest sequence number breaking ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event engine over world state `W`.
///
/// The engine is deliberately single-threaded: the study's scale (tens of
/// machines, millions of events) is easily within one core, and a serial
/// heap keeps the trace record ordering deterministic. Multi-machine
/// parallelism is achieved by running independent engines on worker threads
/// (see `nt-study`), never by sharing one engine.
pub struct Engine<W> {
    now: SimTime,
    heap: BinaryHeap<Entry<W>>,
    next_seq: u64,
    // Cancellation is lazy: a cancelled event stays in the heap and is
    // dropped when popped. `cancelled` is a bitmap indexed by seq-relative
    // slot (fired events mark their slot too, so a stale cancel is a
    // no-op); compacted whenever the heap drains.
    cancelled: Vec<bool>,
    // Cancelled entries still sitting in the heap, so `queue_depth` can
    // report the live count without walking the heap.
    cancelled_pending: usize,
    fired: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: Vec::new(),
            cancelled_pending: 0,
            fired: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently pending (including lazily-cancelled ones).
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Number of *live* pending events — lazily-cancelled entries still
    /// in the heap are excluded. This is the telemetry sampler's
    /// queue-depth gauge; it is O(1), not a heap walk.
    pub fn queue_depth(&self) -> usize {
        self.heap.len() - self.cancelled_pending
    }

    /// Schedules `action` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to
    /// `now` so the clock never runs backwards, and debug builds assert.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        debug_assert!(at >= self.now, "scheduling into the past");
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.cancelled.len();
        self.cancelled.push(false);
        self.heap.push(Entry {
            at,
            seq,
            cancelled_slot: slot,
            action: Box::new(action),
        });
        EventId(seq)
    }

    /// Schedules `action` to fire `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Cancels a pending event. Returns `true` when the event had not yet
    /// fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let base = self.next_seq - self.cancelled.len() as u64;
        match id.0.checked_sub(base) {
            Some(off) if (off as usize) < self.cancelled.len() => {
                let slot = off as usize;
                let was = self.cancelled[slot];
                self.cancelled[slot] = true;
                if !was {
                    self.cancelled_pending += 1;
                }
                !was
            }
            // Already fired (slot compacted away) or never existed.
            _ => false,
        }
    }

    /// Marks a seq's slot dead once its entry leaves the heap, so a later
    /// `cancel` of the same id correctly reports `false` instead of
    /// ghost-cancelling a fired event.
    fn mark_dead(&mut self, seq: u64) {
        let base = self.next_seq - self.cancelled.len() as u64;
        if let Some(off) = seq.checked_sub(base) {
            if (off as usize) < self.cancelled.len() {
                self.cancelled[off as usize] = true;
            }
        }
    }

    fn slot_cancelled(&self, entry_seq: u64, slot_hint: usize) -> bool {
        let base = self.next_seq - self.cancelled.len() as u64;
        match entry_seq.checked_sub(base) {
            Some(off) if (off as usize) < self.cancelled.len() => self.cancelled[off as usize],
            _ => {
                // The slot table was compacted; fall back to the hint, which
                // is only valid before any compaction. Compaction happens
                // only when the heap is empty, so a live entry always
                // resolves through the base offset above.
                let _ = slot_hint;
                false
            }
        }
    }

    /// Fires the single earliest pending event, advancing the clock.
    ///
    /// Returns `false` when no events remain.
    pub fn step(&mut self, world: &mut W) -> bool {
        loop {
            let Some(entry) = self.heap.pop() else {
                self.compact();
                return false;
            };
            debug_assert!(entry.at >= self.now);
            if self.slot_cancelled(entry.seq, entry.cancelled_slot) {
                self.cancelled_pending -= 1;
                continue;
            }
            self.mark_dead(entry.seq);
            self.now = entry.at;
            self.fired += 1;
            (entry.action)(world, self);
            if self.heap.is_empty() {
                self.compact();
            }
            return true;
        }
    }

    /// Runs until the queue drains.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon`. Events at exactly `horizon` do fire — including whole
    /// cascades: an event at the horizon may schedule another at the same
    /// instant and that one fires too. On return the clock rests at the
    /// last fired event (or `horizon` if nothing fired later).
    pub fn run_until(&mut self, world: &mut W, horizon: SimTime) {
        loop {
            // Skip over cancelled heads without firing them.
            while let Some(head) = self.heap.peek() {
                if self.slot_cancelled(head.seq, head.cancelled_slot) {
                    self.heap.pop();
                    self.cancelled_pending -= 1;
                } else {
                    break;
                }
            }
            match self.heap.peek() {
                Some(head) if head.at <= horizon => {
                    self.step(world);
                }
                _ => {
                    self.now = self.now.max(horizon);
                    if self.heap.is_empty() {
                        self.compact();
                    }
                    return;
                }
            }
        }
    }

    fn compact(&mut self) {
        // With the heap empty every outstanding slot is dead; reset the
        // table so `cancelled` cannot grow without bound over a long run.
        debug_assert_eq!(self.cancelled_pending, 0);
        self.cancelled.clear();
        self.cancelled_pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.schedule_at(SimTime::from_millis(30), |w, _| w.push(3));
        eng.schedule_at(SimTime::from_millis(10), |w, _| w.push(1));
        eng.schedule_at(SimTime::from_millis(20), |w, _| w.push(2));
        let mut seen = Vec::new();
        eng.run(&mut seen);
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(eng.now(), SimTime::from_millis(30));
        assert_eq!(eng.events_fired(), 3);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        for i in 0..10 {
            eng.schedule_at(SimTime::from_millis(5), move |w, _| w.push(i));
        }
        let mut seen = Vec::new();
        eng.run(&mut seen);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.schedule_in(SimDuration::from_millis(1), |w, eng| {
            w.push(eng.now().as_millis());
            eng.schedule_in(SimDuration::from_millis(2), |w, eng| {
                w.push(eng.now().as_millis());
            });
        });
        let mut seen = Vec::new();
        eng.run(&mut seen);
        assert_eq!(seen, vec![1, 3]);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        for ms in [5u64, 10, 15, 20] {
            eng.schedule_at(SimTime::from_millis(ms), move |w, _| w.push(ms));
        }
        let mut seen = Vec::new();
        eng.run_until(&mut seen, SimTime::from_millis(15));
        assert_eq!(seen, vec![5, 10, 15]);
        assert_eq!(eng.now(), SimTime::from_millis(15));
        assert_eq!(eng.pending(), 1);
        eng.run(&mut seen);
        assert_eq!(seen, vec![5, 10, 15, 20]);
    }

    #[test]
    fn event_at_horizon_cascades_at_the_horizon() {
        // Regression: an event firing exactly at the horizon that
        // schedules a zero-delay follow-up must see that follow-up fire
        // in the same run_until call, not hang over to the next window.
        // The study's snapshot scheduler relies on this when a snapshot
        // lands on a window boundary.
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.schedule_at(SimTime::from_millis(10), |w, eng| {
            w.push(eng.now().as_millis());
            eng.schedule_in(SimDuration::from_millis(0), |w, eng| {
                w.push(100 + eng.now().as_millis());
            });
            eng.schedule_in(SimDuration::from_millis(1), |w, _| {
                w.push(999);
            });
        });
        let mut seen = Vec::new();
        eng.run_until(&mut seen, SimTime::from_millis(10));
        assert_eq!(
            seen,
            vec![10, 110],
            "the cascade fired, the later event didn't"
        );
        assert_eq!(eng.now(), SimTime::from_millis(10));
        assert_eq!(eng.pending(), 1);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut eng: Engine<()> = Engine::new();
        eng.run_until(&mut (), SimTime::from_secs(9));
        assert_eq!(eng.now(), SimTime::from_secs(9));
    }

    #[test]
    fn cancellation() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let _a = eng.schedule_at(SimTime::from_millis(1), |w, _| w.push(1));
        let b = eng.schedule_at(SimTime::from_millis(2), |w, _| w.push(2));
        let c = eng.schedule_at(SimTime::from_millis(3), |w, _| w.push(3));
        assert!(eng.cancel(b));
        assert!(!eng.cancel(b), "double cancel reports false");
        let mut seen = Vec::new();
        eng.run(&mut seen);
        assert_eq!(seen, vec![1, 3]);
        assert!(!eng.cancel(c), "cancel after firing reports false");
    }

    #[test]
    fn cancelled_head_does_not_block_run_until() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let a = eng.schedule_at(SimTime::from_millis(1), |w, _| w.push(1));
        eng.schedule_at(SimTime::from_millis(2), |w, _| w.push(2));
        eng.cancel(a);
        let mut seen = Vec::new();
        eng.run_until(&mut seen, SimTime::from_millis(5));
        assert_eq!(seen, vec![2]);
    }

    #[test]
    fn queue_depth_excludes_cancelled_entries() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let a = eng.schedule_at(SimTime::from_millis(1), |w, _| w.push(1));
        let b = eng.schedule_at(SimTime::from_millis(2), |w, _| w.push(2));
        eng.schedule_at(SimTime::from_millis(3), |w, _| w.push(3));
        assert_eq!(eng.queue_depth(), 3);
        eng.cancel(b);
        assert_eq!(eng.pending(), 3, "lazy cancel leaves the entry in place");
        assert_eq!(eng.queue_depth(), 2);
        let mut seen = Vec::new();
        assert!(eng.step(&mut seen));
        assert_eq!(eng.queue_depth(), 1);
        // Cancelling an already-fired event must not corrupt the count.
        assert!(!eng.cancel(a), "cancel after firing reports false");
        assert_eq!(eng.queue_depth(), 1);
        eng.run(&mut seen);
        assert_eq!(seen, vec![1, 3]);
        assert_eq!(eng.queue_depth(), 0);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn compaction_keeps_ids_working() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.schedule_at(SimTime::from_millis(1), |w, _| w.push(1));
        let mut seen = Vec::new();
        eng.run(&mut seen);
        // Heap drained, slots compacted; new events must still be
        // schedulable and cancellable.
        let id = eng.schedule_in(SimDuration::from_millis(1), |w, _| w.push(2));
        assert!(eng.cancel(id));
        eng.run(&mut seen);
        assert_eq!(seen, vec![1]);
    }
}
