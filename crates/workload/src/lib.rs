//! Synthetic workload generation for the NT 4.0 usage study.
//!
//! The original study traced real users on 45 production machines; this
//! crate is the substitution: statistical models of the applications and
//! user behaviours the paper names, calibrated against the numbers it
//! reports, so that the simulated trace streams exhibit the same shapes —
//! heavy-tailed session lengths, inter-arrivals, sizes and lifetimes;
//! control-operation dominance; the §6.3 die-young new files; the WWW
//! cache churn of §5.
//!
//! Layers:
//!
//! * [`dist`] — the heavy-tailed sampling toolkit (Pareto, bounded
//!   Pareto, log-normal bodies with Pareto tails, the empirical
//!   read/write-size mixture of §8.2).
//! * [`filetypes`] — extension catalog with per-category size models, and
//!   the initial-content builder that populates volumes like §5 found
//!   them (24k–45k files, exe/dll/font-dominated sizes, profile tree,
//!   WWW cache).
//! * [`plan`] — the operation-plan vocabulary and its executor against an
//!   `nt_io::Machine`.
//! * [`apps`] — per-application session planners: notepad's 26-call save,
//!   explorer's control storms, the development environment, the mailer
//!   with its single 4 MB buffer, the Java tools' 2–4-byte reads, the
//!   web browser's cache churn, winlogon's profile sync, background
//!   services, and the memory-mapped scientific codes.
//! * [`users`] — the five §2 usage categories as ON/OFF user models with
//!   application mixes.

pub mod apps;
pub mod dist;
pub mod filetypes;
pub mod plan;
pub mod users;

pub use dist::{BodyTail, BoundedPareto, Pareto, SizeMixture};
pub use filetypes::{ContentBuilder, ContentPlan, FileCategory};
pub use plan::{run_plan, FileOp, OffsetSpec, PlannedOp, SessionStats};
pub use users::{UsageCategory, UserModel};
