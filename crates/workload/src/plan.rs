//! Operation plans and their executor.
//!
//! An application *session* is a short script of file operations with
//! think-time gaps — the unit the paper's burst analysis sees (§8.2: 70 %
//! of opens batch their reads/writes and close again; reads follow each
//! other within 90 µs, writes within 30 µs). Planners in [`crate::apps`]
//! produce [`PlannedOp`] vectors; [`run_plan`] executes them against a
//! machine, threading each operation's completion time into the next
//! operation's start.

use nt_fs::{FileTimes, NtPath, VolumeId};
use nt_io::{
    AccessMode, CreateOptions, Disposition, HandleId, IoObserver, Machine, NtStatus, ProcessId,
};
use nt_sim::{SimDuration, SimTime};

/// Where a read/write points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OffsetSpec {
    /// Continue from the file object's current byte offset (sequential).
    Current,
    /// An absolute offset (random access).
    At(u64),
}

impl OffsetSpec {
    fn as_option(self) -> Option<u64> {
        match self {
            OffsetSpec::Current => None,
            OffsetSpec::At(x) => Some(x),
        }
    }
}

/// One step of a session plan. Handle-addressed operations target the
/// handle opened by the most recent successful `Open` that has not been
/// closed (a small handle stack supports nested opens).
#[derive(Clone, Debug)]
pub enum FileOp {
    /// Open/create a file.
    Open {
        /// Volume to open on.
        volume: VolumeId,
        /// Path within the volume.
        path: NtPath,
        /// Requested access.
        access: AccessMode,
        /// Create disposition.
        disposition: Disposition,
        /// Open options.
        options: CreateOptions,
    },
    /// Read on the current handle.
    Read {
        /// Request offset.
        offset: OffsetSpec,
        /// Request length.
        len: u64,
    },
    /// Write on the current handle.
    Write {
        /// Request offset.
        offset: OffsetSpec,
        /// Request length.
        len: u64,
    },
    /// Close the current handle (pops the stack).
    Close,
    /// Mark the current handle's file delete-on-close.
    Delete,
    /// Truncate/extend via SetEndOfFile.
    SetEof(u64),
    /// Flush dirty data.
    Flush,
    /// One QueryDirectory batch on the current handle.
    QueryDir {
        /// Entries per batch.
        batch: usize,
    },
    /// Enumerate the whole directory (repeated QueryDirectory batches).
    EnumerateDir {
        /// Entries per batch.
        batch: usize,
    },
    /// IRP_MJ_QUERY_INFORMATION on the current handle.
    QueryInfo,
    /// FastIO QueryBasicInfo on the current handle.
    FastQueryInfo,
    /// The Win32 runtime's "is volume mounted" FSCTL.
    IsVolumeMounted {
        /// Volume probed.
        volume: VolumeId,
    },
    /// IRP_MJ_QUERY_VOLUME_INFORMATION (free-space check).
    QueryVolumeInfo {
        /// Volume queried.
        volume: VolumeId,
    },
    /// A control operation that fails (feeds §8.4's 8 %).
    InvalidControl,
    /// Rename the current handle's file.
    Rename {
        /// New path (same volume).
        to: NtPath,
    },
    /// Set timestamps (installer behaviour, §5).
    SetTimes {
        /// The times to apply.
        times: FileTimes,
    },
    /// Load an executable image (memory-mapped, §3.3).
    LoadImage {
        /// Volume of the image.
        volume: VolumeId,
        /// Image path.
        path: NtPath,
    },
    /// Release the image section reference.
    UnloadImage {
        /// Volume of the image.
        volume: VolumeId,
        /// Image path.
        path: NtPath,
    },
    /// Create a data section for the current handle.
    MapFile,
    /// Touch a mapped range (page-faults in, §3.3).
    MappedRead {
        /// Byte offset.
        offset: u64,
        /// Length.
        len: u64,
    },
    /// Take a byte-range lock on the current handle.
    Lock {
        /// Lock offset.
        offset: u64,
        /// Lock length.
        len: u64,
        /// Exclusive vs shared.
        exclusive: bool,
    },
    /// Release a byte-range lock.
    Unlock {
        /// Lock offset.
        offset: u64,
        /// Lock length.
        len: u64,
    },
    /// Arm a change-notification on the current (directory) handle.
    WatchDirectory,
    /// Zero-copy MDL read (kernel services only, §10).
    MdlRead {
        /// Byte offset.
        offset: u64,
        /// Length.
        len: u64,
    },
    /// Zero-copy MDL write.
    MdlWrite {
        /// Byte offset.
        offset: u64,
        /// Length.
        len: u64,
    },
}

/// One step with its preceding think-time gap.
#[derive(Clone, Debug)]
pub struct PlannedOp {
    /// Delay between the previous operation's completion and this issue.
    pub gap: SimDuration,
    /// The operation.
    pub op: FileOp,
}

impl PlannedOp {
    /// A step issued `gap` after the previous completion.
    pub fn after(gap: SimDuration, op: FileOp) -> Self {
        PlannedOp { gap, op }
    }

    /// A step issued immediately at the previous completion.
    pub fn then(op: FileOp) -> Self {
        PlannedOp {
            gap: SimDuration::ZERO,
            op,
        }
    }
}

/// What a session did, for calibration assertions.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// Operations attempted.
    pub ops: u64,
    /// Failed operations (any error status).
    pub failures: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// When the last operation completed.
    pub end: SimTime,
}

/// Executes a plan against a machine on behalf of `process`, starting at
/// `start`. Operations issue at the previous completion plus the step's
/// gap. Handles left open at plan end are closed (applications that hold
/// files open across sessions simply omit `Close` from the plan and keep
/// the handle via [`run_plan_keep_open`]).
pub fn run_plan<O: IoObserver>(
    machine: &mut Machine<O>,
    process: ProcessId,
    plan: &[PlannedOp],
    start: SimTime,
) -> SessionStats {
    let (stats, leftovers) = run_plan_keep_open(machine, process, plan, start);
    let mut t = stats.end;
    for h in leftovers {
        let reply = machine.close(h, t);
        t = reply.end;
    }
    SessionStats { end: t, ..stats }
}

/// Like [`run_plan`] but returns the handles still open at the end.
pub fn run_plan_keep_open<O: IoObserver>(
    machine: &mut Machine<O>,
    process: ProcessId,
    plan: &[PlannedOp],
    start: SimTime,
) -> (SessionStats, Vec<HandleId>) {
    let mut stats = SessionStats {
        end: start,
        ..SessionStats::default()
    };
    let mut stack: Vec<HandleId> = Vec::new();
    let mut t = start;
    for step in plan {
        t += step.gap;
        stats.ops += 1;
        let reply = match &step.op {
            FileOp::Open {
                volume,
                path,
                access,
                disposition,
                options,
            } => {
                let (reply, handle) =
                    machine.create(process, *volume, path, *access, *disposition, *options, t);
                if let Some(h) = handle {
                    stack.push(h);
                }
                reply
            }
            FileOp::Read { offset, len } => match stack.last() {
                Some(&h) => {
                    let r = machine.read(h, offset.as_option(), *len, t);
                    stats.bytes_read += r.transferred;
                    r
                }
                None => continue,
            },
            FileOp::Write { offset, len } => match stack.last() {
                Some(&h) => {
                    let r = machine.write(h, offset.as_option(), *len, t);
                    stats.bytes_written += r.transferred;
                    r
                }
                None => continue,
            },
            FileOp::Close => match stack.pop() {
                Some(h) => machine.close(h, t),
                None => continue,
            },
            FileOp::Delete => match stack.last() {
                Some(&h) => machine.set_delete_disposition(h, t),
                None => continue,
            },
            FileOp::SetEof(size) => match stack.last() {
                Some(&h) => machine.set_end_of_file(h, *size, t),
                None => continue,
            },
            FileOp::Flush => match stack.last() {
                Some(&h) => machine.flush(h, t),
                None => continue,
            },
            FileOp::QueryDir { batch } => match stack.last() {
                Some(&h) => machine.query_directory(h, *batch, t),
                None => continue,
            },
            FileOp::EnumerateDir { batch } => match stack.last() {
                Some(&h) => {
                    let mut r = machine.query_directory(h, *batch, t);
                    let mut guard = 0;
                    while r.status == NtStatus::Success && guard < 10_000 {
                        stats.ops += 1;
                        r = machine.query_directory(h, *batch, r.end);
                        guard += 1;
                    }
                    r
                }
                None => continue,
            },
            FileOp::QueryInfo => match stack.last() {
                Some(&h) => machine.query_information(h, t),
                None => continue,
            },
            FileOp::FastQueryInfo => match stack.last() {
                Some(&h) => machine.fast_query_basic(h, t),
                None => continue,
            },
            FileOp::IsVolumeMounted { volume } => machine.is_volume_mounted(process, *volume, t),
            FileOp::QueryVolumeInfo { volume } => {
                machine.query_volume_information(process, *volume, t)
            }
            FileOp::InvalidControl => match stack.last() {
                Some(&h) => machine.invalid_control(h, t),
                None => continue,
            },
            FileOp::Rename { to } => match stack.last() {
                Some(&h) => machine.rename(h, to, t),
                None => continue,
            },
            FileOp::SetTimes { times } => match stack.last() {
                Some(&h) => machine.set_basic_information(h, *times, t),
                None => continue,
            },
            FileOp::LoadImage { volume, path } => machine.load_image(process, *volume, path, t),
            FileOp::UnloadImage { volume, path } => {
                machine.unload_image(*volume, path);
                continue;
            }
            FileOp::MapFile => match stack.last() {
                Some(&h) => machine.map_file(h, t),
                None => continue,
            },
            FileOp::MappedRead { offset, len } => match stack.last() {
                Some(&h) => {
                    let r = machine.mapped_read(h, *offset, *len, t);
                    stats.bytes_read += r.transferred;
                    r
                }
                None => continue,
            },
            FileOp::Lock {
                offset,
                len,
                exclusive,
            } => match stack.last() {
                Some(&h) => machine.lock(h, *offset, *len, *exclusive, t),
                None => continue,
            },
            FileOp::Unlock { offset, len } => match stack.last() {
                Some(&h) => machine.unlock(h, *offset, *len, t),
                None => continue,
            },
            FileOp::WatchDirectory => match stack.last() {
                Some(&h) => machine.watch_directory(h, t),
                None => continue,
            },
            FileOp::MdlRead { offset, len } => match stack.last() {
                Some(&h) => {
                    let r = machine.mdl_read(h, *offset, *len, t);
                    stats.bytes_read += r.transferred;
                    r
                }
                None => continue,
            },
            FileOp::MdlWrite { offset, len } => match stack.last() {
                Some(&h) => {
                    let r = machine.mdl_write(h, *offset, *len, t);
                    stats.bytes_written += r.transferred;
                    r
                }
                None => continue,
            },
        };
        if reply.status.is_error() {
            stats.failures += 1;
        }
        t = reply.end.max(t);
        stats.end = t;
    }
    (stats, stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_fs::VolumeConfig;
    use nt_io::{DiskParams, MachineConfig, NullObserver};

    fn machine() -> (Machine<NullObserver>, VolumeId) {
        let mut m = Machine::new(MachineConfig::default(), NullObserver);
        let v = m.add_local_volume(
            'C',
            VolumeConfig::local_ntfs(1 << 30),
            DiskParams::local_ide(),
        );
        (m, v)
    }

    const P: ProcessId = ProcessId(3);

    #[test]
    fn simple_write_then_read_plan() {
        let (mut m, vol) = machine();
        let plan = vec![
            PlannedOp::then(FileOp::Open {
                volume: vol,
                path: NtPath::parse(r"\out.txt"),
                access: AccessMode::ReadWrite,
                disposition: Disposition::OpenIf,
                options: CreateOptions::default(),
            }),
            PlannedOp::after(
                SimDuration::from_micros(30),
                FileOp::Write {
                    offset: OffsetSpec::At(0),
                    len: 1_000,
                },
            ),
            PlannedOp::after(
                SimDuration::from_micros(90),
                FileOp::Read {
                    offset: OffsetSpec::At(0),
                    len: 1_000,
                },
            ),
            PlannedOp::then(FileOp::Close),
        ];
        let stats = run_plan(&mut m, P, &plan, SimTime::from_secs(1));
        assert_eq!(stats.ops, 4);
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.bytes_written, 1_000);
        assert_eq!(stats.bytes_read, 1_000);
        assert!(stats.end > SimTime::from_secs(1));
        assert_eq!(m.open_handles(), 0);
    }

    #[test]
    fn leftover_handles_are_closed_by_run_plan() {
        let (mut m, vol) = machine();
        let plan = vec![PlannedOp::then(FileOp::Open {
            volume: vol,
            path: NtPath::parse(r"\f"),
            access: AccessMode::Write,
            disposition: Disposition::OpenIf,
            options: CreateOptions::default(),
        })];
        run_plan(&mut m, P, &plan, SimTime::from_secs(1));
        assert_eq!(m.open_handles(), 0);
        let (_, open) = run_plan_keep_open(&mut m, P, &plan, SimTime::from_secs(2));
        assert_eq!(open.len(), 1);
        assert_eq!(m.open_handles(), 1);
    }

    #[test]
    fn failed_open_counts_and_skips_dependents() {
        let (mut m, vol) = machine();
        let plan = vec![
            PlannedOp::then(FileOp::Open {
                volume: vol,
                path: NtPath::parse(r"\missing"),
                access: AccessMode::Read,
                disposition: Disposition::Open,
                options: CreateOptions::default(),
            }),
            PlannedOp::then(FileOp::Read {
                offset: OffsetSpec::Current,
                len: 100,
            }),
            PlannedOp::then(FileOp::Close),
        ];
        let stats = run_plan(&mut m, P, &plan, SimTime::from_secs(1));
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.bytes_read, 0, "read skipped without a handle");
    }

    #[test]
    fn enumerate_dir_runs_to_completion() {
        let (mut m, vol) = machine();
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            for i in 0..37 {
                v.create_file(root, &format!("e{i}"), SimTime::ZERO)
                    .unwrap();
            }
        }
        let plan = vec![
            PlannedOp::then(FileOp::Open {
                volume: vol,
                path: NtPath::root(),
                access: AccessMode::Control,
                disposition: Disposition::Open,
                options: CreateOptions {
                    directory: true,
                    ..CreateOptions::default()
                },
            }),
            PlannedOp::then(FileOp::EnumerateDir { batch: 10 }),
            PlannedOp::then(FileOp::Close),
        ];
        let stats = run_plan(&mut m, P, &plan, SimTime::from_secs(1));
        // Open + 5 query batches (4 with data + terminator) + close, with
        // the extra queries counted by the executor.
        assert!(stats.ops >= 6, "ops {}", stats.ops);
        assert_eq!(stats.failures, 0, "NoMoreFiles is not a failure");
    }

    #[test]
    fn gaps_accumulate_into_the_timeline() {
        let (mut m, vol) = machine();
        let plan = vec![
            PlannedOp::after(
                SimDuration::from_millis(100),
                FileOp::IsVolumeMounted { volume: vol },
            ),
            PlannedOp::after(
                SimDuration::from_millis(200),
                FileOp::IsVolumeMounted { volume: vol },
            ),
        ];
        let stats = run_plan(&mut m, P, &plan, SimTime::from_secs(1));
        assert!(stats.end >= SimTime::from_millis(1_300));
    }
}
