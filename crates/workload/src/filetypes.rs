//! File-type catalog and the initial-content builder (§5 of the paper).
//!
//! §5's snapshot findings drive the initial state of every simulated
//! volume: local file systems hold 24,000–45,000 files and are 54–87 %
//! full; "the size distribution is dominated by executables, dynamic
//! loadable libraries and fonts"; 87–99 % of local user files live under
//! `\winnt\profiles\<user>`; the "Temporary Internet Files" WWW cache
//! holds 2,000–9,500 files totalling 5–45 MB.

use nt_fs::{FsError, NodeId, NtPath, Volume};
use nt_sim::SimTime;
use rand::Rng;

use crate::dist::{BodyTail, Pareto};

/// Categories the study's dimension tables group extensions into.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FileCategory {
    /// Executable images.
    Executable,
    /// Dynamic loadable libraries.
    Library,
    /// Font files.
    Font,
    /// Office documents, mail files, text.
    Document,
    /// Source code and headers.
    Source,
    /// Compiler outputs: objects, pch, libs, incremental-link state.
    Development,
    /// WWW cache content.
    WebCache,
    /// System configuration / registry / logs.
    System,
    /// Scientific data sets.
    Data,
    /// Anything else.
    Other,
}

impl FileCategory {
    /// Classifies an extension the way the study's dimension table does.
    pub fn of_extension(ext: Option<&str>) -> FileCategory {
        match ext {
            Some("exe" | "com" | "scr") => FileCategory::Executable,
            Some("dll" | "ocx" | "drv" | "cpl" | "sys") => FileCategory::Library,
            Some("ttf" | "fon" | "ttc") => FileCategory::Font,
            Some("doc" | "xls" | "ppt" | "txt" | "rtf" | "mbx" | "pst" | "eml") => {
                FileCategory::Document
            }
            Some("c" | "cpp" | "h" | "hpp" | "java" | "cs" | "bas" | "rc") => FileCategory::Source,
            Some("obj" | "pch" | "lib" | "pdb" | "ilk" | "exp" | "res" | "class") => {
                FileCategory::Development
            }
            Some("htm" | "html" | "gif" | "jpg" | "css" | "js" | "cookie") => {
                FileCategory::WebCache
            }
            Some("ini" | "log" | "dat" | "pol" | "inf") => FileCategory::System,
            Some("mat" | "hdf" | "bin" | "raw" | "sim") => FileCategory::Data,
            _ => FileCategory::Other,
        }
    }

    /// A representative size model for files of this category; the
    /// executables/libraries/fonts carry the heavy tail that dominates
    /// the §5 size distribution.
    pub fn size_model(self) -> BodyTail {
        match self {
            FileCategory::Executable => BodyTail::new(11.5, 1.3, Pareto::new(1.0e6, 1.2), 0.20),
            FileCategory::Library => BodyTail::new(11.0, 1.2, Pareto::new(8.0e5, 1.2), 0.18),
            FileCategory::Font => BodyTail::new(10.8, 0.8, Pareto::new(3.0e5, 1.4), 0.12),
            FileCategory::Document => BodyTail::new(9.5, 1.5, Pareto::new(2.0e5, 1.4), 0.05),
            FileCategory::Source => BodyTail::new(8.5, 1.2, Pareto::new(1.0e5, 1.6), 0.02),
            FileCategory::Development => BodyTail::new(9.8, 1.6, Pareto::new(5.0e6, 1.3), 0.06),
            FileCategory::WebCache => BodyTail::new(8.0, 1.4, Pareto::new(6.0e4, 1.5), 0.04),
            FileCategory::System => BodyTail::new(7.5, 1.6, Pareto::new(1.0e5, 1.5), 0.03),
            FileCategory::Data => BodyTail::new(13.0, 1.5, Pareto::new(1.0e7, 1.2), 0.25),
            FileCategory::Other => BodyTail::new(8.0, 1.5, Pareto::new(1.0e5, 1.5), 0.03),
        }
    }

    /// Typical extensions used when materialising files of the category.
    pub fn extensions(self) -> &'static [&'static str] {
        match self {
            FileCategory::Executable => &["exe", "com"],
            FileCategory::Library => &["dll", "ocx", "drv", "sys"],
            FileCategory::Font => &["ttf", "fon"],
            FileCategory::Document => &["doc", "xls", "txt", "mbx"],
            FileCategory::Source => &["c", "h", "cpp", "java"],
            FileCategory::Development => &["obj", "pch", "pdb", "ilk", "lib"],
            FileCategory::WebCache => &["htm", "gif", "jpg", "css"],
            FileCategory::System => &["ini", "log", "dat", "inf"],
            FileCategory::Data => &["mat", "bin", "raw"],
            FileCategory::Other => &["bak", "old", "x"],
        }
    }
}

/// What to build into a fresh volume.
#[derive(Clone, Debug)]
pub struct ContentPlan {
    /// Target number of files (the study saw 24k–45k locally).
    pub target_files: usize,
    /// User names whose profiles exist locally.
    pub users: Vec<String>,
    /// Approximate number of WWW-cache files per profile (2,000–9,500).
    pub web_cache_files: usize,
    /// Whether a developer SDK-style package is installed (14,000 files in
    /// 1,300 directories shifts the per-directory statistics, §5).
    pub developer_package: bool,
    /// Fraction of files whose creation time is back-dated by an
    /// installer, producing §5's unreliable timestamps.
    pub backdated_fraction: f64,
}

impl ContentPlan {
    /// A typical desktop of the study.
    pub fn desktop(user: &str) -> Self {
        ContentPlan {
            target_files: 28_000,
            users: vec![user.to_string()],
            web_cache_files: 4_000,
            developer_package: false,
            backdated_fraction: 0.3,
        }
    }

    /// A development-pool machine with the SDK installed.
    pub fn developer(user: &str) -> Self {
        ContentPlan {
            target_files: 38_000,
            users: vec![user.to_string()],
            web_cache_files: 3_000,
            developer_package: true,
            backdated_fraction: 0.3,
        }
    }

    /// A small user share on the network file server (§5: 150–27,000
    /// files per share).
    pub fn user_share(files: usize) -> Self {
        ContentPlan {
            target_files: files,
            users: Vec::new(),
            web_cache_files: 0,
            developer_package: false,
            backdated_fraction: 0.1,
        }
    }
}

/// Builds the initial §5-like content of a volume.
pub struct ContentBuilder;

/// Well-known paths the analysis keys on.
pub mod paths {
    /// The profile tree prefix (§5: 87–99 % of local user files).
    pub const PROFILES: &str = r"\winnt\profiles";

    /// WWW cache directory name inside a profile.
    pub const WEB_CACHE: &str = "temporary internet files";

    /// Profile tree of one user.
    pub fn profile_of(user: &str) -> String {
        format!(r"{PROFILES}\{user}")
    }

    /// WWW cache of one user.
    pub fn web_cache_of(user: &str) -> String {
        format!(r"{PROFILES}\{user}\{WEB_CACHE}")
    }
}

impl ContentBuilder {
    /// Populates `volume` according to `plan`. Returns the number of files
    /// created. Creation times are spread over the two years before
    /// `now`, with the configured fraction back-dated far earlier.
    pub fn build(
        volume: &mut Volume,
        plan: &ContentPlan,
        now: SimTime,
        rng: &mut impl Rng,
    ) -> Result<usize, FsError> {
        let mut made = 0;

        // System tree: \winnt, \winnt\system32, \winnt\fonts.
        let winnt = volume.mkdir_all(&NtPath::parse(r"\winnt"), now)?;
        let system32 = volume.mkdir_all(&NtPath::parse(r"\winnt\system32"), now)?;
        // Well-known files the background services touch constantly.
        for (dir, name, size) in [
            (winnt, "win.ini", 4_000u64),
            (winnt, "system.ini", 1_200),
            (system32, "ntdll.dll", 420_000),
        ] {
            let f = volume.create_file(dir, name, now)?;
            volume.set_file_size(f, size, now)?;
            made += 1;
        }
        let cfg = volume.mkdir_all(&NtPath::parse(r"\winnt\system32\config"), now)?;
        let f = volume.create_file(cfg, "sys.log", now)?;
        volume.set_file_size(f, 20_000, now)?;
        made += 1;
        let fonts = volume.mkdir_all(&NtPath::parse(r"\winnt\fonts"), now)?;
        let sys_files = (plan.target_files / 4).max(50);
        made += Self::fill_dir(
            volume,
            system32,
            sys_files * 7 / 10,
            &[
                (FileCategory::Library, 0.55),
                (FileCategory::Executable, 0.25),
                (FileCategory::System, 0.20),
            ],
            plan,
            now,
            rng,
        )?;
        made += Self::fill_dir(
            volume,
            winnt,
            sys_files / 5,
            &[(FileCategory::System, 0.8), (FileCategory::Executable, 0.2)],
            plan,
            now,
            rng,
        )?;
        made += Self::fill_dir(
            volume,
            fonts,
            sys_files / 10,
            &[(FileCategory::Font, 1.0)],
            plan,
            now,
            rng,
        )?;

        // Application packages under \program files, in per-app subtrees.
        let n_apps = 6 + (plan.target_files / 8_000);
        for a in 0..n_apps {
            let app =
                volume.mkdir_all(&NtPath::parse(&format!(r"\program files\app{a:02}")), now)?;
            let per_app = plan.target_files / 4 / n_apps;
            made += Self::fill_tree(
                volume,
                app,
                per_app,
                3,
                &[
                    (FileCategory::Library, 0.3),
                    (FileCategory::Executable, 0.1),
                    (FileCategory::Document, 0.2),
                    (FileCategory::System, 0.2),
                    (FileCategory::Other, 0.2),
                ],
                plan,
                now,
                rng,
            )?;
        }

        // The developer package: many files, deep tree (§5: 14,000 files
        // in 1,300 directories).
        if plan.developer_package {
            let sdk = volume.mkdir_all(&NtPath::parse(r"\program files\platform sdk"), now)?;
            made += Self::fill_tree(
                volume,
                sdk,
                plan.target_files / 4,
                4,
                &[
                    (FileCategory::Source, 0.55),
                    (FileCategory::Library, 0.15),
                    (FileCategory::Development, 0.2),
                    (FileCategory::Document, 0.1),
                ],
                plan,
                now,
                rng,
            )?;
        }

        // Profiles: desktop files, application data, and the WWW cache.
        for user in &plan.users {
            let prof = volume.mkdir_all(&NtPath::parse(&paths::profile_of(user)), now)?;
            made += Self::fill_tree(
                volume,
                prof,
                600,
                2,
                &[
                    (FileCategory::Document, 0.5),
                    (FileCategory::System, 0.3),
                    (FileCategory::Other, 0.2),
                ],
                plan,
                now,
                rng,
            )?;
            let cache = volume.mkdir_all(&NtPath::parse(&paths::web_cache_of(user)), now)?;
            made += Self::fill_dir(
                volume,
                cache,
                plan.web_cache_files,
                &[(FileCategory::WebCache, 1.0)],
                plan,
                now,
                rng,
            )?;
        }

        // Scratch space.
        volume.mkdir_all(&NtPath::parse(r"\temp"), now)?;

        // Top up with miscellaneous files until the target is reached.
        if made < plan.target_files {
            let misc = volume.mkdir_all(&NtPath::parse(r"\misc"), now)?;
            made += Self::fill_tree(
                volume,
                misc,
                plan.target_files - made,
                2,
                &[
                    (FileCategory::Document, 0.3),
                    (FileCategory::Other, 0.4),
                    (FileCategory::System, 0.3),
                ],
                plan,
                now,
                rng,
            )?;
        }
        Ok(made)
    }

    #[allow(clippy::too_many_arguments)]
    fn fill_tree(
        volume: &mut Volume,
        root: NodeId,
        files: usize,
        depth: usize,
        mix: &[(FileCategory, f64)],
        plan: &ContentPlan,
        now: SimTime,
        rng: &mut impl Rng,
    ) -> Result<usize, FsError> {
        if depth == 0 || files < 12 {
            return Self::fill_dir(volume, root, files, mix, plan, now, rng);
        }
        let n_sub = rng.gen_range(2..=5usize);
        let here = files / 3;
        let mut made = Self::fill_dir(volume, root, here, mix, plan, now, rng)?;
        let rest = files - here;
        for s in 0..n_sub {
            let sub = volume.mkdir(root, &format!("d{s}"), now)?;
            made += Self::fill_tree(volume, sub, rest / n_sub, depth - 1, mix, plan, now, rng)?;
        }
        Ok(made)
    }

    #[allow(clippy::too_many_arguments)]
    fn fill_dir(
        volume: &mut Volume,
        dir: NodeId,
        files: usize,
        mix: &[(FileCategory, f64)],
        plan: &ContentPlan,
        now: SimTime,
        rng: &mut impl Rng,
    ) -> Result<usize, FsError> {
        let mut made = 0;
        for i in 0..files {
            let cat = *crate::dist::weighted_choice(rng, mix);
            let exts = cat.extensions();
            let ext = exts[rng.gen_range(0..exts.len())];
            let name = format!("f{i:05}.{ext}");
            let node = match volume.create_file(dir, &name, now) {
                Ok(n) => n,
                Err(FsError::AlreadyExists) => continue,
                Err(e) => return Err(e),
            };
            let size = cat.size_model().sample(rng).max(1.0) as u64;
            match volume.set_file_size(node, size, now) {
                Ok(()) => {}
                Err(FsError::VolumeFull) => {
                    // Leave the file empty; the disk is simply full —
                    // §5 saw volumes up to 87 % full.
                    let _ = volume.remove(node, now);
                    continue;
                }
                Err(e) => return Err(e),
            }
            // Spread historical timestamps and back-date some creations.
            let age_secs = rng.gen_range(0..(2 * 365 * 86_400u64));
            let base = SimTime::ZERO;
            let created = base + nt_sim::SimDuration::from_secs(age_secs / 4);
            let accessed = created + nt_sim::SimDuration::from_secs(age_secs / 3);
            let written = if rng.gen_bool(0.03) {
                // §5: 2–4 % have last-change newer than last-access.
                accessed + nt_sim::SimDuration::from_secs(1_000)
            } else {
                created + nt_sim::SimDuration::from_secs(age_secs / 5)
            };
            let creation = if rng.gen_bool(plan.backdated_fraction) {
                SimTime::ZERO
            } else {
                created
            };
            let _ = volume.set_times(
                node,
                nt_fs::FileTimes {
                    creation: Some(creation),
                    last_access: Some(accessed),
                    last_write: written,
                },
            );
            if volume.config().kind == nt_fs::FsKind::Ntfs && size > 200_000 && rng.gen_bool(0.25) {
                // NTFS compression on a slice of the bigger files (the
                // paper's follow-up traces examined such reads).
                let _ = volume.set_attributes(node, nt_fs::FileAttributes::COMPRESSED);
            }
            made += 1;
        }
        Ok(made)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_fs::VolumeConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn classification_matches_study_categories() {
        assert_eq!(
            FileCategory::of_extension(Some("exe")),
            FileCategory::Executable
        );
        assert_eq!(
            FileCategory::of_extension(Some("dll")),
            FileCategory::Library
        );
        assert_eq!(FileCategory::of_extension(Some("ttf")), FileCategory::Font);
        assert_eq!(
            FileCategory::of_extension(Some("gif")),
            FileCategory::WebCache
        );
        assert_eq!(FileCategory::of_extension(None), FileCategory::Other);
    }

    #[test]
    fn build_reaches_target_scale() {
        let mut vol = Volume::new(VolumeConfig::local_ntfs(4 << 30));
        let mut rng = SmallRng::seed_from_u64(1);
        let plan = ContentPlan {
            target_files: 3_000,
            users: vec!["alice".into()],
            web_cache_files: 500,
            developer_package: false,
            backdated_fraction: 0.3,
        };
        let made = ContentBuilder::build(&mut vol, &plan, SimTime::from_secs(10), &mut rng)
            .expect("build succeeds");
        assert!(made >= 2_800, "made {made}");
        let stats = vol.stats();
        assert!(stats.files as usize >= 2_800);
        assert!(stats.fullness() > 0.0);
    }

    #[test]
    fn profile_tree_and_web_cache_exist() {
        let mut vol = Volume::new(VolumeConfig::local_ntfs(4 << 30));
        let mut rng = SmallRng::seed_from_u64(2);
        let plan = ContentPlan {
            target_files: 1_500,
            users: vec!["bob".into()],
            web_cache_files: 300,
            developer_package: false,
            backdated_fraction: 0.2,
        };
        ContentBuilder::build(&mut vol, &plan, SimTime::from_secs(10), &mut rng).unwrap();
        let cache_dir = vol
            .lookup(&NtPath::parse(&paths::web_cache_of("bob")))
            .expect("web cache exists");
        let n = vol.node(cache_dir).unwrap().dir().unwrap().len();
        assert!(n >= 250, "web cache has {n} files");
    }

    #[test]
    fn sizes_are_heavy_tailed_with_exe_dll_dominance() {
        let mut vol = Volume::new(VolumeConfig::local_ntfs(8 << 30));
        let mut rng = SmallRng::seed_from_u64(3);
        let plan = ContentPlan {
            target_files: 4_000,
            users: vec!["u".into()],
            web_cache_files: 400,
            developer_package: false,
            backdated_fraction: 0.3,
        };
        ContentBuilder::build(&mut vol, &plan, SimTime::from_secs(10), &mut rng).unwrap();
        // Collect (category, size) of every file.
        let mut by_cat: std::collections::HashMap<FileCategory, u64> = Default::default();
        let mut total = 0u64;
        vol.walk(vol.root(), &mut |_, _, node| {
            if let Some(f) = node.file() {
                let cat = FileCategory::of_extension(node.extension());
                *by_cat.entry(cat).or_default() += f.size;
                total += f.size;
            }
        })
        .unwrap();
        let exe_dll_font = by_cat.get(&FileCategory::Executable).copied().unwrap_or(0)
            + by_cat.get(&FileCategory::Library).copied().unwrap_or(0)
            + by_cat.get(&FileCategory::Font).copied().unwrap_or(0);
        assert!(
            exe_dll_font as f64 / total as f64 > 0.4,
            "§5: executables+libraries+fonts dominate: {:.2}",
            exe_dll_font as f64 / total as f64
        );
    }

    #[test]
    fn some_timestamps_are_inconsistent() {
        let mut vol = Volume::new(VolumeConfig::local_ntfs(4 << 30));
        let mut rng = SmallRng::seed_from_u64(4);
        let plan = ContentPlan::desktop("alice");
        let plan = ContentPlan {
            target_files: 2_000,
            web_cache_files: 200,
            ..plan
        };
        ContentBuilder::build(&mut vol, &plan, SimTime::from_secs(10), &mut rng).unwrap();
        let mut bad = 0;
        let mut all = 0;
        vol.walk(vol.root(), &mut |_, _, node| {
            if node.kind.is_file() {
                all += 1;
                if node.times.change_newer_than_access() {
                    bad += 1;
                }
            }
        })
        .unwrap();
        let frac = bad as f64 / all as f64;
        assert!(
            (0.01..0.08).contains(&frac),
            "§5: 2–4 % inconsistent, got {frac:.3}"
        );
    }
}
