//! Application session planners.
//!
//! Each function builds the operation script of one application "session"
//! — the behavioural atoms the paper attributes its traffic to: notepad's
//! 26-system-call save (§1), explorer's structure-driven control storms
//! (§7), the development environment's precompiled-header bursts (§6.1's
//! peak load), the non-Microsoft mailer's single 4 MB buffer and the Java
//! tools' 2–4-byte reads (§10), the WWW-cache churn that dominates §5's
//! daily changes, winlogon's profile sync, and the background services
//! responsible for the §8.3 "volume mounted" storm.

use nt_fs::{NtPath, VolumeId};
use nt_io::{AccessMode, CreateOptions, Disposition};
use nt_sim::SimDuration;
use rand::Rng;

use crate::dist::{heavy_gap, SizeMixture};
use crate::plan::{FileOp, OffsetSpec, PlannedOp};

/// A file an application may target, with the size known to the planner.
#[derive(Clone, Debug)]
pub struct TargetFile {
    /// Volume holding the file.
    pub volume: VolumeId,
    /// Path within the volume.
    pub path: NtPath,
    /// Size when the working set was sampled.
    pub size: u64,
}

fn open(volume: VolumeId, path: &NtPath, access: AccessMode, disposition: Disposition) -> FileOp {
    FileOp::Open {
        volume,
        path: path.clone(),
        access,
        disposition,
        options: CreateOptions::default(),
    }
}

fn open_with(
    volume: VolumeId,
    path: &NtPath,
    access: AccessMode,
    disposition: Disposition,
    options: CreateOptions,
) -> FileOp {
    FileOp::Open {
        volume,
        path: path.clone(),
        access,
        disposition,
        options,
    }
}

fn read_gap(rng: &mut impl Rng) -> SimDuration {
    // §8.2: 80 % of follow-up reads arrive within 90 µs.
    heavy_gap(rng, SimDuration::from_micros(35), 1.5)
}

fn write_gap(rng: &mut impl Rng) -> SimDuration {
    // §8.2: 80 % of writes arrive within 30 µs.
    heavy_gap(rng, SimDuration::from_micros(12), 1.5)
}

/// Notepad's file save (§1): 26 file-system calls, including 3 failed
/// open attempts, 1 file overwrite and 4 additional open/close sequences.
pub fn notepad_save(volume: VolumeId, target: &NtPath, bytes: u64) -> Vec<PlannedOp> {
    let mut plan = Vec::new();
    let g = SimDuration::from_micros(150);
    // 3 probes for files that do not exist (runtime library behaviour):
    // target.tmp variants — 3 ops, all failing.
    for suffix in ["~tmp", "~a", "~b"] {
        let probe = target
            .parent()
            .join(&format!("{}{suffix}", target.file_name().unwrap_or("note")));
        plan.push(PlannedOp::after(
            g,
            open(volume, &probe, AccessMode::Read, Disposition::Open),
        ));
    }
    // 4 auxiliary open/close sequences with an attribute query between
    // (12 ops): runtime name validation and MRU bookkeeping.
    for _ in 0..4 {
        plan.push(PlannedOp::after(
            g,
            open(volume, target, AccessMode::Control, Disposition::OpenIf),
        ));
        plan.push(PlannedOp::then(FileOp::FastQueryInfo));
        plan.push(PlannedOp::then(FileOp::Close));
    }
    // 2 volume-mounted FSCTLs from the common dialog path.
    plan.push(PlannedOp::after(g, FileOp::IsVolumeMounted { volume }));
    plan.push(PlannedOp::then(FileOp::IsVolumeMounted { volume }));
    // The save proper: overwrite-open, 3 buffered writes, SetEof, close
    // (6 ops). 3 + 12 + 2 + 6 = 23; plus the directory probe trio below
    // would overshoot, so the final tally is kept at 26 with one extra
    // query pair on the saved file.
    plan.push(PlannedOp::after(
        g,
        open(volume, target, AccessMode::Write, Disposition::OverwriteIf),
    ));
    let chunk = (bytes / 3).max(1);
    for i in 0..3 {
        plan.push(PlannedOp::after(
            SimDuration::from_micros(20),
            FileOp::Write {
                offset: if i == 0 {
                    OffsetSpec::At(0)
                } else {
                    OffsetSpec::Current
                },
                len: chunk,
            },
        ));
    }
    plan.push(PlannedOp::then(FileOp::SetEof(bytes)));
    plan.push(PlannedOp::then(FileOp::Close));
    // Final attribute check (2 ops at the end brings the total to 26:
    // 3 + 12 + 2 + 6 + 2 = 25 ... plus the QueryInfo below = 26).
    plan.push(PlannedOp::after(
        g,
        open(volume, target, AccessMode::Control, Disposition::Open),
    ));
    plan.push(PlannedOp::then(FileOp::QueryInfo));
    plan.push(PlannedOp::then(FileOp::Close));
    plan
}

/// A control-only stat session: the §8.3-dominant open that performs no
/// data transfer. With `probe_missing` the open fails with not-found —
/// the "open as existence test" §8.4 describes.
pub fn stat_session(
    volume: VolumeId,
    path: &NtPath,
    probe_missing: bool,
    rng: &mut impl Rng,
) -> Vec<PlannedOp> {
    let mut plan = vec![PlannedOp::then(open(
        volume,
        path,
        AccessMode::Control,
        Disposition::Open,
    ))];
    if !probe_missing {
        if rng.gen_bool(0.5) {
            plan.push(PlannedOp::then(FileOp::FastQueryInfo));
        } else {
            plan.push(PlannedOp::then(FileOp::QueryInfo));
        }
        if rng.gen_bool(0.08) {
            // A slice of the Win32 surface probes control codes the file
            // system rejects — §8.4's 8 % control-failure population.
            plan.push(PlannedOp::then(FileOp::InvalidControl));
        }
        plan.push(PlannedOp::then(FileOp::Close));
    }
    plan
}

/// Explorer browsing a directory: open it, enumerate, stat a few entries,
/// with the runtime's volume-mounted checks sprinkled in (§8.3).
pub fn explorer_browse(
    volume: VolumeId,
    dir: &NtPath,
    entries: &[TargetFile],
    rng: &mut impl Rng,
) -> Vec<PlannedOp> {
    let mut plan = vec![
        PlannedOp::then(FileOp::IsVolumeMounted { volume }),
        PlannedOp::then(open_with(
            volume,
            dir,
            AccessMode::Control,
            Disposition::Open,
            CreateOptions {
                directory: true,
                ..CreateOptions::default()
            },
        )),
        PlannedOp::then(FileOp::EnumerateDir { batch: 32 }),
        PlannedOp::then(FileOp::Close),
    ];

    let stats = entries.len().min(rng.gen_range(2..12));
    for target in entries.iter().take(stats) {
        plan.push(PlannedOp::after(
            heavy_gap(rng, SimDuration::from_micros(400), 1.4),
            FileOp::IsVolumeMounted { volume },
        ));
        plan.extend(stat_session(volume, &target.path, false, rng));
    }
    plan
}

/// Reads a file, mostly whole-file sequential (§6.2's dominant pattern).
/// `style` selects the access pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadStyle {
    /// From byte 0 to EOF in sequential chunks.
    WholeSequential,
    /// A sequential run that starts inside the file or stops early.
    PartialSequential,
    /// Random offsets.
    Random,
}

/// Plans a read-only data session over `target`.
pub fn read_session(target: &TargetFile, style: ReadStyle, rng: &mut impl Rng) -> Vec<PlannedOp> {
    let sizes = SizeMixture::reads();
    let mut plan = vec![PlannedOp::then(open(
        target.volume,
        &target.path,
        AccessMode::Read,
        Disposition::Open,
    ))];
    let size = target.size.max(1);
    // Applications allocate one buffer and reuse it for the whole pass
    // (§10: processes using many operations use targeted buffer sizes;
    // single-shot readers use page-sized or larger buffers). Buffers are
    // sized to finish the file in a handful of requests.
    // Buffers are the stdio-standard sizes: 512 and 4096 dominate (§8.2:
    // 59 % of read requests are exactly one of the two); bigger files get
    // proportionally bigger buffers so sessions stay short.
    let hint = sizes.sample(rng).max(target.size / 6).max(1);
    let buf = match hint {
        0..=1_024 => 512,
        1_025..=8_192 => 4_096,
        8_193..=32_768 => 16_384,
        32_769..=131_072 => 65_536,
        // Very large files are consumed through proportionally large
        // buffers (or memory maps), keeping sessions to a handful of
        // requests.
        _ => (hint.div_ceil(65_536) * 65_536).min(2 << 20),
    };
    match style {
        ReadStyle::WholeSequential => {
            // Nobody streams a whole 200 MB data set through read();
            // passes over very large files stop early (they classify as
            // "other sequential", which is where the paper's big files
            // land too).
            let pass = size.min(8 << 20);
            let mut done = 0u64;
            let mut guard = 0;
            while done < pass && guard < 512 {
                let len = buf.min(pass - done).max(1);
                plan.push(PlannedOp::after(
                    read_gap(rng),
                    FileOp::Read {
                        offset: OffsetSpec::Current,
                        len,
                    },
                ));
                done += len;
                guard += 1;
            }
        }
        ReadStyle::PartialSequential => {
            let start = rng.gen_range(0..size);
            let run = rng.gen_range(1..=size - start);
            plan.push(PlannedOp::then(FileOp::Read {
                offset: OffsetSpec::At(start),
                len: buf.min(run).max(1),
            }));
            let mut done = 0u64;
            let mut guard = 0;
            while done < run && guard < 256 {
                let len = buf.min(run - done).max(1);
                plan.push(PlannedOp::after(
                    read_gap(rng),
                    FileOp::Read {
                        offset: OffsetSpec::Current,
                        len,
                    },
                ));
                done += len;
                guard += 1;
            }
        }
        ReadStyle::Random => {
            let n = rng.gen_range(2..16);
            for _ in 0..n {
                let len = buf;
                let off = rng.gen_range(0..size);
                plan.push(PlannedOp::after(
                    read_gap(rng),
                    FileOp::Read {
                        offset: OffsetSpec::At(off),
                        len,
                    },
                ));
            }
        }
    }
    plan.push(PlannedOp::then(FileOp::Close));
    plan
}

/// A single-I/O read session (§9.1: 31 % of read sessions issue exactly
/// one read; the prefetch it triggers is never used again).
pub fn peek_session(target: &TargetFile, rng: &mut impl Rng) -> Vec<PlannedOp> {
    let len = SizeMixture::reads().sample(rng).min(target.size.max(1));
    vec![
        PlannedOp::then(open(
            target.volume,
            &target.path,
            AccessMode::Read,
            Disposition::Open,
        )),
        PlannedOp::then(FileOp::Read {
            offset: OffsetSpec::At(0),
            len: len.max(1),
        }),
        PlannedOp::then(FileOp::Close),
    ]
}

/// Creates (or overwrites) a file and writes it sequentially — the
/// whole-file write-only pattern of table 3.
///
/// §9.2's write-control split is built in: most sessions rely on the
/// lazy writer; 4 % "actively control their caching by using flush
/// requests", 87 % of whom flush after every write; and 1.4 % disable
/// write caching at open time with FILE_WRITE_THROUGH.
pub fn write_session(
    volume: VolumeId,
    path: &NtPath,
    bytes: u64,
    overwrite: bool,
    rng: &mut impl Rng,
) -> Vec<PlannedOp> {
    let sizes = SizeMixture::writes();
    let disposition = if overwrite {
        Disposition::OverwriteIf
    } else {
        Disposition::OpenIf
    };
    let u: f64 = rng.gen();
    let (options, flush_each, flush_end) = if u < 0.014 {
        (
            CreateOptions {
                write_through: true,
                ..CreateOptions::default()
            },
            false,
            false,
        )
    } else if u < 0.014 + 0.04 * 0.87 {
        // The dominant (and wasteful, per §9.2) explicit strategy.
        (CreateOptions::default(), true, false)
    } else if u < 0.014 + 0.04 {
        (CreateOptions::default(), false, true)
    } else {
        (CreateOptions::default(), false, false)
    };
    let mut plan = Vec::new();
    if rng.gen_bool(0.15) {
        // Installers and save dialogs check free space first.
        plan.push(PlannedOp::then(FileOp::QueryVolumeInfo { volume }));
    }
    plan.push(PlannedOp::then(open_with(
        volume,
        path,
        AccessMode::Write,
        disposition,
        options,
    )));
    let mut done = 0u64;
    let mut guard = 0;
    while done < bytes && guard < 512 {
        // §8.2: the write-size distribution is diverse and skews small
        // (single data structures); large buffered writers are the
        // exception (the mailer's 4 MB buffer has its own planner).
        let len = sizes.sample(rng).min(16_384).min(bytes - done).max(1);
        plan.push(PlannedOp::after(
            write_gap(rng),
            FileOp::Write {
                offset: if done == 0 {
                    OffsetSpec::At(0)
                } else {
                    OffsetSpec::Current
                },
                len,
            },
        ));
        if flush_each {
            plan.push(PlannedOp::then(FileOp::Flush));
        }
        done += len;
        guard += 1;
    }
    if flush_end {
        plan.push(PlannedOp::then(FileOp::Flush));
    }
    plan.push(PlannedOp::then(FileOp::Close));
    plan
}

/// A short-lived scratch file (§6.3): create, write, then die — by
/// explicit delete, by overwrite-at-reopen, or (rarely, 1 %) by the
/// temporary attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScratchDeath {
    /// FileDispositionInformation then close (62 % of §6.3 deletions).
    ExplicitDelete {
        /// Pause between the close of the writing open and the delete.
        after: SimDuration,
    },
    /// Recreated with a truncating disposition (37 %).
    Overwrite {
        /// Pause between close and the overwriting open.
        after: SimDuration,
    },
    /// FILE_ATTRIBUTE_TEMPORARY + delete-on-close (1 %).
    Temporary,
}

/// Plans a scratch-file lifetime.
pub fn scratch_file(
    volume: VolumeId,
    path: &NtPath,
    bytes: u64,
    death: ScratchDeath,
    rng: &mut impl Rng,
) -> Vec<PlannedOp> {
    let mut plan = Vec::new();
    match death {
        ScratchDeath::Temporary => {
            plan.push(PlannedOp::then(open_with(
                volume,
                path,
                AccessMode::Write,
                Disposition::Create,
                CreateOptions {
                    temporary: true,
                    delete_on_close: true,
                    ..CreateOptions::default()
                },
            )));
            plan.push(PlannedOp::after(
                write_gap(rng),
                FileOp::Write {
                    offset: OffsetSpec::At(0),
                    len: bytes.max(1),
                },
            ));
            plan.push(PlannedOp::then(FileOp::Close));
        }
        ScratchDeath::ExplicitDelete { after } => {
            plan.push(PlannedOp::then(open(
                volume,
                path,
                AccessMode::Write,
                Disposition::OpenIf,
            )));
            plan.push(PlannedOp::after(
                write_gap(rng),
                FileOp::Write {
                    offset: OffsetSpec::At(0),
                    len: bytes.max(1),
                },
            ));
            plan.push(PlannedOp::then(FileOp::Close));
            // Re-open to delete, the DeleteFile way.
            plan.push(PlannedOp::after(
                after,
                open(volume, path, AccessMode::Delete, Disposition::Open),
            ));
            plan.push(PlannedOp::then(FileOp::Delete));
            plan.push(PlannedOp::then(FileOp::Close));
        }
        ScratchDeath::Overwrite { after } => {
            plan.push(PlannedOp::then(open(
                volume,
                path,
                AccessMode::Write,
                Disposition::OpenIf,
            )));
            plan.push(PlannedOp::after(
                write_gap(rng),
                FileOp::Write {
                    offset: OffsetSpec::At(0),
                    len: bytes.max(1),
                },
            ));
            plan.push(PlannedOp::then(FileOp::Close));
            plan.push(PlannedOp::after(
                after,
                open(volume, path, AccessMode::Write, Disposition::OverwriteIf),
            ));
            plan.push(PlannedOp::after(
                write_gap(rng),
                FileOp::Write {
                    offset: OffsetSpec::At(0),
                    len: bytes.max(1),
                },
            ));
            plan.push(PlannedOp::then(FileOp::Close));
        }
    }
    plan
}

/// One development-environment build step (§6.1's peak-load case): read
/// sources, then read+write the 5–8 MB precompiled-header and incremental
/// -link files in large chunks.
pub fn devenv_build(
    volume: VolumeId,
    sources: &[TargetFile],
    build_dir: &NtPath,
    rng: &mut impl Rng,
) -> Vec<PlannedOp> {
    let mut plan = Vec::new();
    for src in sources.iter().take(rng.gen_range(3..12)) {
        plan.extend(read_session(src, ReadStyle::WholeSequential, rng));
        // Emit the object file.
        let obj = build_dir.join(&format!("{}.obj", src.path.file_name().unwrap_or("src")));
        plan.extend(write_session(
            volume,
            &obj,
            rng.gen_range(2_000..120_000),
            true,
            rng,
        ));
    }
    // The medium-size support files, read and rewritten in 64 KB chunks.
    let pch = build_dir.join("project.pch");
    let pch_size = rng.gen_range(5_000_000..8_000_000u64);
    let pch_target = TargetFile {
        volume,
        path: pch.clone(),
        size: pch_size,
    };
    plan.extend(write_session(volume, &pch, pch_size, true, rng));
    plan.extend(read_session(&pch_target, ReadStyle::WholeSequential, rng));
    let ilk = build_dir.join("project.ilk");
    plan.extend(write_session(
        volume,
        &ilk,
        rng.gen_range(4_000_000..6_000_000),
        true,
        rng,
    ));
    plan
}

/// The non-Microsoft mailer (§10): appends to its mailbox with a single
/// 4 MB buffer write.
pub fn mailer_save(volume: VolumeId, mailbox: &NtPath) -> Vec<PlannedOp> {
    vec![
        PlannedOp::then(open(
            volume,
            mailbox,
            AccessMode::Write,
            Disposition::OpenIf,
        )),
        PlannedOp::then(FileOp::Write {
            offset: OffsetSpec::At(0),
            len: 4 << 20,
        }),
        PlannedOp::then(FileOp::Close),
    ]
}

/// A Microsoft Java tool reading a class file in 2- and 4-byte pieces,
/// "often resulting in thousands of reads for a single class file" (§10).
pub fn java_tool_read(target: &TargetFile, rng: &mut impl Rng) -> Vec<PlannedOp> {
    let mut plan = vec![PlannedOp::then(open(
        target.volume,
        &target.path,
        AccessMode::Read,
        Disposition::Open,
    ))];
    let n = (target.size / 20).clamp(20, 120);
    for _ in 0..n {
        plan.push(PlannedOp::after(
            SimDuration::from_micros(rng.gen_range(2..12)),
            FileOp::Read {
                offset: OffsetSpec::Current,
                len: if rng.gen_bool(0.5) { 2 } else { 4 },
            },
        ));
    }
    plan.push(PlannedOp::then(FileOp::Close));
    plan
}

/// One web-browsing step against the WWW cache (§5: up to 90 % of profile
/// churn): cache probes that miss create new entries; hits re-read them;
/// the cache index is updated with small random-offset writes.
pub fn browser_step(
    volume: VolumeId,
    cache_dir: &NtPath,
    cached: &[TargetFile],
    seq: u64,
    rng: &mut impl Rng,
) -> Vec<PlannedOp> {
    let mut plan = Vec::new();
    let fetches = rng.gen_range(1..6);
    for f in 0..fetches {
        if !cached.is_empty() && rng.gen_bool(0.6) {
            // Cache hit: re-read an entry.
            let t = &cached[rng.gen_range(0..cached.len())];
            plan.extend(read_session(t, ReadStyle::WholeSequential, rng));
        } else {
            // Miss: sometimes probe the file system first (fails), then
            // create and fill the entry.
            let name = format!("cache{seq:08}_{f}.htm");
            let path = cache_dir.join(&name);
            if rng.gen_bool(0.4) {
                plan.push(PlannedOp::then(open(
                    volume,
                    &path,
                    AccessMode::Read,
                    Disposition::Open,
                )));
            }
            plan.extend(write_session(
                volume,
                &path,
                rng.gen_range(300..40_000),
                false,
                rng,
            ));
        }
    }
    // Cache eviction: old entries are explicitly deleted to make room
    // (these are the §6.3 DeleteFile deaths the WWW cache mass-produces).
    if !cached.is_empty() && rng.gen_bool(0.5) {
        let victim = &cached[rng.gen_range(0..cached.len())];
        plan.push(PlannedOp::after(
            heavy_gap(rng, SimDuration::from_millis(2), 1.3),
            open(volume, &victim.path, AccessMode::Delete, Disposition::Open),
        ));
        plan.push(PlannedOp::then(FileOp::Delete));
        plan.push(PlannedOp::then(FileOp::Close));
    }
    // Update the cache index with small in-place writes.
    let index = cache_dir.join("index.dat");
    plan.push(PlannedOp::then(open(
        volume,
        &index,
        AccessMode::ReadWrite,
        Disposition::OpenIf,
    )));
    // The index is consulted before being updated: a read-write session
    // with random access — table 3's R/W row.
    plan.push(PlannedOp::then(FileOp::Read {
        offset: OffsetSpec::At((rng.gen_range(0..100_000u64)) & !0x1ff),
        len: 512,
    }));
    for _ in 0..rng.gen_range(2..6) {
        plan.push(PlannedOp::after(
            write_gap(rng),
            FileOp::Write {
                offset: OffsetSpec::At(rng.gen_range(0..120_000) & !0x1ff),
                len: rng.gen_range(16..512),
            },
        ));
    }
    plan.push(PlannedOp::then(FileOp::Close));
    plan
}

/// winlogon's profile download at logon (§5): every changed profile file
/// is rewritten locally from the profile server.
pub fn winlogon_profile_sync(
    volume: VolumeId,
    profile_dir: &NtPath,
    n_files: usize,
    rng: &mut impl Rng,
) -> Vec<PlannedOp> {
    let mut plan = vec![PlannedOp::then(FileOp::IsVolumeMounted { volume })];
    for i in 0..n_files {
        let path = profile_dir.join(&format!("sync{i:04}.dat"));
        plan.extend(write_session(
            volume,
            &path,
            rng.gen_range(200..60_000),
            true,
            rng,
        ));
    }
    plan
}

/// A background service heartbeat: the §8.3 control-operation stream that
/// exists even on an "idle" machine.
pub fn background_service(
    volume: VolumeId,
    log: &NtPath,
    config: &NtPath,
    rng: &mut impl Rng,
) -> Vec<PlannedOp> {
    let mut plan = vec![PlannedOp::then(FileOp::IsVolumeMounted { volume })];
    plan.extend(stat_session(volume, config, false, rng));
    if rng.gen_bool(0.9) {
        // Services poke unsupported FSCTLs on a regular basis — the
        // §8.4 control-failure population.
        plan.insert(plan.len() - 1, PlannedOp::then(FileOp::InvalidControl));
    }
    // Most heartbeats only poll; some append a log line.
    if rng.gen_bool(0.3) {
        plan.push(PlannedOp::then(open(
            volume,
            log,
            AccessMode::Write,
            Disposition::OpenIf,
        )));
        plan.push(PlannedOp::then(FileOp::Write {
            offset: OffsetSpec::Current,
            len: rng.gen_range(40..200),
        }));
        plan.push(PlannedOp::then(FileOp::Close));
    }
    plan
}

/// A scientific application mapping a 100–300 MB data file and touching
/// small portions at a time (§6.1: they "read small portions of the files
/// at a time, and in many cases do so through memory-mapped files").
pub fn scientific_session(target: &TargetFile, rng: &mut impl Rng) -> Vec<PlannedOp> {
    let mut plan = vec![
        PlannedOp::then(open(
            target.volume,
            &target.path,
            AccessMode::Read,
            Disposition::Open,
        )),
        PlannedOp::then(FileOp::MapFile),
    ];
    let touches = rng.gen_range(5..60);
    for _ in 0..touches {
        let off = rng.gen_range(0..target.size.max(1));
        plan.push(PlannedOp::after(
            heavy_gap(rng, SimDuration::from_millis(3), 1.4),
            FileOp::MappedRead {
                offset: off & !0xfff,
                len: rng.gen_range(1..6) * 4_096,
            },
        ));
    }
    plan.push(PlannedOp::then(FileOp::Close));
    plan
}

/// loadwc-style service startup (§8.1): "Programs such as loadwc, which
/// manages a user's web subscription content, keep a large number of
/// files open for the duration of the complete user session, which may
/// be days or weeks." The returned plan only opens; the caller keeps the
/// handles via `run_plan_keep_open` and closes them at logoff.
pub fn persistent_service_open(
    volume: VolumeId,
    targets: &[TargetFile],
    rng: &mut impl Rng,
) -> Vec<PlannedOp> {
    let mut plan = Vec::new();
    let n = rng.gen_range(3..=8).min(targets.len().max(1));
    for t in targets.iter().take(n) {
        plan.push(PlannedOp::after(
            heavy_gap(rng, SimDuration::from_millis(2), 1.4),
            open(volume, &t.path, AccessMode::ReadWrite, Disposition::OpenIf),
        ));
        // The service touches each file once at startup.
        plan.push(PlannedOp::then(FileOp::Read {
            offset: OffsetSpec::At(0),
            len: 4_096,
        }));
    }
    plan
}

/// The CIFS server serving a remote client from a local file (§3.4's
/// trace noise: "the local file systems can be accessed over the network
/// by other systems … in general it was used to copy a few files or to
/// share a test executable"). The server is a kernel service and uses
/// the zero-copy MDL interface (§10).
pub fn cifs_server_session(target: &TargetFile, rng: &mut impl Rng) -> Vec<PlannedOp> {
    let mut plan = vec![PlannedOp::then(open(
        target.volume,
        &target.path,
        AccessMode::Read,
        Disposition::Open,
    ))];
    // The remote client copies the file in SMB-sized chunks.
    let chunk = 32_768u64;
    let mut off = 0;
    let size = target.size.max(1);
    let mut guard = 0;
    while off < size && guard < 256 {
        plan.push(PlannedOp::after(
            // Network round-trips pace the server's reads.
            heavy_gap(rng, SimDuration::from_micros(900), 1.6),
            FileOp::MdlRead {
                offset: off,
                len: chunk.min(size - off),
            },
        ));
        off += chunk;
        guard += 1;
    }
    plan.push(PlannedOp::then(FileOp::Close));
    plan
}

/// A database-engine session (the administrative category's tooling):
/// the file is opened read-write and accessed at random offsets — the
/// table-3 read/write class, 74 % random in the study. Long-running
/// engines keep the file open; this models one batch of page accesses.
pub fn db_session(target: &TargetFile, rng: &mut impl Rng) -> Vec<PlannedOp> {
    // §9: read caching is disabled for only 0.2 % of data files — mostly
    // system-service databases opened read-write with write-through; all
    // of their requests take the IRP path.
    let options = if rng.gen_bool(0.02) {
        CreateOptions {
            no_intermediate_buffering: true,
            write_through: true,
            ..CreateOptions::default()
        }
    } else {
        CreateOptions::default()
    };
    let mut plan = vec![PlannedOp::then(open_with(
        target.volume,
        &target.path,
        AccessMode::ReadWrite,
        Disposition::OpenIf,
        options,
    ))];
    let accesses = rng.gen_range(4..30);
    let size = target.size.max(8_192);
    // Engines serialise page access with byte-range locks.
    let lock_page = (rng.gen_range(0..size) / 4_096) * 4_096;
    plan.push(PlannedOp::then(FileOp::Lock {
        offset: lock_page,
        len: 4_096,
        exclusive: rng.gen_bool(0.4),
    }));
    for _ in 0..accesses {
        let off = (rng.gen_range(0..size) / 4_096) * 4_096;
        if rng.gen_bool(0.55) {
            plan.push(PlannedOp::after(
                read_gap(rng),
                FileOp::Read {
                    offset: OffsetSpec::At(off),
                    len: 4_096,
                },
            ));
        } else {
            plan.push(PlannedOp::after(
                write_gap(rng),
                FileOp::Write {
                    offset: OffsetSpec::At(off),
                    len: 4_096,
                },
            ));
        }
    }
    plan.push(PlannedOp::then(FileOp::Unlock {
        offset: lock_page,
        len: 4_096,
    }));
    if rng.gen_bool(0.3) {
        plan.push(PlannedOp::then(FileOp::Flush));
    }
    plan.push(PlannedOp::then(FileOp::Close));
    plan
}

/// Launching an application: load the exe image plus a heavy-tailed
/// number of DLLs (§7: "the number of dynamic loadable libraries accessed
/// … obey the characteristics of heavy-tail distributions").
pub fn app_launch(
    exe: &TargetFile,
    dlls: &[TargetFile],
    configs: &[TargetFile],
    rng: &mut impl Rng,
) -> Vec<PlannedOp> {
    let mut plan = vec![PlannedOp::then(FileOp::LoadImage {
        volume: exe.volume,
        path: exe.path.clone(),
    })];
    if !dlls.is_empty() {
        let n = (crate::dist::Pareto::new(3.0, 1.4).sample(rng) as usize).clamp(2, dlls.len());
        for dll in dlls.iter().take(n) {
            plan.push(PlannedOp::after(
                SimDuration::from_micros(rng.gen_range(50..400)),
                FileOp::LoadImage {
                    volume: dll.volume,
                    path: dll.path.clone(),
                },
            ));
        }
    }
    // Startup also reads regular data files: configuration, resources,
    // MRU lists — classic whole-file read-only sessions.
    if !configs.is_empty() {
        for _ in 0..rng.gen_range(1..4usize) {
            let t = &configs[rng.gen_range(0..configs.len())];
            plan.extend(read_session(t, ReadStyle::WholeSequential, rng));
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(5)
    }

    const VOL: VolumeId = VolumeId(0);

    fn target(path: &str, size: u64) -> TargetFile {
        TargetFile {
            volume: VOL,
            path: NtPath::parse(path),
            size,
        }
    }

    #[test]
    fn notepad_save_is_26_calls() {
        let plan = notepad_save(VOL, &NtPath::parse(r"\docs\letter.txt"), 900);
        assert_eq!(plan.len(), 26, "§1: saving in notepad is 26 calls");
        // 3 probes that will fail.
        let probes = plan
            .iter()
            .filter(|p| {
                matches!(&p.op, FileOp::Open { disposition, .. } if *disposition == Disposition::Open)
            })
            .count();
        assert!(probes >= 3);
        // Exactly one truncating open.
        let overwrites = plan
            .iter()
            .filter(
                |p| matches!(&p.op, FileOp::Open { disposition, .. } if disposition.truncates()),
            )
            .count();
        assert_eq!(overwrites, 1);
        // Opens and closes balance.
        let opens = plan
            .iter()
            .filter(|p| matches!(&p.op, FileOp::Open { .. }))
            .count();
        let closes = plan
            .iter()
            .filter(|p| matches!(&p.op, FileOp::Close))
            .count();
        // The 3 failed probes never get a close.
        assert_eq!(opens - 3, closes);
    }

    #[test]
    fn read_session_whole_covers_file() {
        let mut r = rng();
        let t = target(r"\data\f.txt", 20_000);
        let plan = read_session(&t, ReadStyle::WholeSequential, &mut r);
        let total: u64 = plan
            .iter()
            .filter_map(|p| match &p.op {
                FileOp::Read { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        assert!(total >= 20_000, "covers the file, got {total}");
        assert!(matches!(plan.last().unwrap().op, FileOp::Close));
    }

    #[test]
    fn random_style_uses_absolute_offsets() {
        let mut r = rng();
        let t = target(r"\data\f.bin", 1 << 20);
        let plan = read_session(&t, ReadStyle::Random, &mut r);
        assert!(plan.iter().any(|p| matches!(
            &p.op,
            FileOp::Read {
                offset: OffsetSpec::At(_),
                ..
            }
        )));
    }

    #[test]
    fn scratch_file_death_styles() {
        let mut r = rng();
        let p = NtPath::parse(r"\temp\s.tmp");
        let explicit = scratch_file(
            VOL,
            &p,
            100,
            ScratchDeath::ExplicitDelete {
                after: SimDuration::from_millis(1_500),
            },
            &mut r,
        );
        assert!(explicit.iter().any(|s| matches!(s.op, FileOp::Delete)));
        let tmp = scratch_file(VOL, &p, 100, ScratchDeath::Temporary, &mut r);
        assert!(tmp.iter().any(|s| matches!(
            &s.op,
            FileOp::Open { options, .. } if options.temporary && options.delete_on_close
        )));
        let over = scratch_file(
            VOL,
            &p,
            100,
            ScratchDeath::Overwrite {
                after: SimDuration::from_millis(2),
            },
            &mut r,
        );
        let truncating = over
            .iter()
            .filter(
                |s| matches!(&s.op, FileOp::Open { disposition, .. } if disposition.truncates()),
            )
            .count();
        assert_eq!(truncating, 1);
    }

    #[test]
    fn write_sessions_reproduce_the_write_control_split() {
        // §9.2: ~1.4 % write-through opens, ~4 % explicit flushers (87 %
        // of whom flush after every write).
        let mut r = rng();
        let p = NtPath::parse(r"\out.dat");
        let mut write_through = 0;
        let mut flush_each = 0;
        let mut flush_some = 0;
        let n = 4_000;
        for _ in 0..n {
            let plan = write_session(VOL, &p, 30_000, false, &mut r);
            let opens_wt = plan
                .iter()
                .any(|s| matches!(&s.op, FileOp::Open { options, .. } if options.write_through));
            let writes = plan
                .iter()
                .filter(|s| matches!(&s.op, FileOp::Write { .. }))
                .count();
            let flushes = plan
                .iter()
                .filter(|s| matches!(&s.op, FileOp::Flush))
                .count();
            if opens_wt {
                write_through += 1;
            } else if flushes >= writes && writes > 0 {
                flush_each += 1;
            } else if flushes > 0 {
                flush_some += 1;
            }
        }
        let wt = write_through as f64 / n as f64;
        let fe = flush_each as f64 / n as f64;
        let fs = flush_some as f64 / n as f64;
        assert!((0.005..0.03).contains(&wt), "write-through {wt}");
        assert!((0.02..0.06).contains(&fe), "flush-each {fe}");
        assert!(fs < fe, "flush-at-end is the minority of flushers");
    }

    #[test]
    fn mailer_uses_one_4mb_buffer() {
        let plan = mailer_save(VOL, &NtPath::parse(r"\mail\inbox.mbx"));
        let writes: Vec<u64> = plan
            .iter()
            .filter_map(|p| match &p.op {
                FileOp::Write { len, .. } => Some(*len),
                _ => None,
            })
            .collect();
        assert_eq!(writes, vec![4 << 20]);
    }

    #[test]
    fn java_tool_reads_in_2_and_4_byte_pieces() {
        let mut r = rng();
        let t = target(r"\classes\main.class", 3_000);
        let plan = java_tool_read(&t, &mut r);
        let lens: Vec<u64> = plan
            .iter()
            .filter_map(|p| match &p.op {
                FileOp::Read { len, .. } => Some(*len),
                _ => None,
            })
            .collect();
        assert!(lens.len() >= 50);
        assert!(lens.iter().all(|&l| l == 2 || l == 4));
    }

    #[test]
    fn browser_step_probes_and_creates() {
        let mut r = rng();
        let plan = browser_step(VOL, &NtPath::parse(r"\cache"), &[], 7, &mut r);
        // With an empty cache every fetch is a miss: probe + create.
        let failing_probes = plan
            .iter()
            .filter(|p| {
                matches!(&p.op, FileOp::Open { access, disposition, .. }
                    if *access == AccessMode::Read && *disposition == Disposition::Open)
            })
            .count();
        assert!(failing_probes >= 1);
        assert!(plan.iter().any(|p| matches!(&p.op, FileOp::Write { .. })));
    }

    #[test]
    fn explorer_is_control_dominated() {
        let mut r = rng();
        let entries: Vec<TargetFile> = (0..10)
            .map(|i| target(&format!(r"\docs\e{i}.txt"), 1_000))
            .collect();
        let plan = explorer_browse(VOL, &NtPath::parse(r"\docs"), &entries, &mut r);
        let data_ops = plan
            .iter()
            .filter(|p| matches!(&p.op, FileOp::Read { .. } | FileOp::Write { .. }))
            .count();
        assert_eq!(data_ops, 0, "explorer never touches data");
    }

    #[test]
    fn app_launch_loads_exe_and_dlls() {
        let mut r = rng();
        let exe = target(r"\winnt\app.exe", 200_000);
        let dlls: Vec<TargetFile> = (0..20)
            .map(|i| target(&format!(r"\winnt\system32\l{i}.dll"), 80_000))
            .collect();
        let plan = app_launch(&exe, &dlls, &[], &mut r);
        let loads = plan
            .iter()
            .filter(|p| matches!(&p.op, FileOp::LoadImage { .. }))
            .count();
        assert!(loads >= 3, "exe plus at least two dlls, got {loads}");
    }

    #[test]
    fn scientific_session_maps_and_touches() {
        let mut r = rng();
        let t = target(r"\data\run.mat", 200 << 20);
        let plan = scientific_session(&t, &mut r);
        assert!(plan.iter().any(|p| matches!(p.op, FileOp::MapFile)));
        let touches = plan
            .iter()
            .filter(|p| matches!(&p.op, FileOp::MappedRead { .. }))
            .count();
        assert!(touches >= 5);
    }
}
