//! User models for the five §2 usage categories.
//!
//! "More than 92 % of the file accesses in our traces were from processes
//! that take no direct user input" (§7) — so a user model here is mostly
//! a mixture of *process* behaviours whose parameters are file-system
//! state and application structure, plus an ON/OFF arrival process with
//! the heavy-tailed gaps that make figure 8's burstiness survive
//! aggregation.

use nt_fs::{Node, NtPath, Volume, VolumeId};
use nt_sim::SimDuration;
use rand::Rng;

use crate::apps::{self, ReadStyle, ScratchDeath, TargetFile};
use crate::dist::{heavy_gap, weighted_choice, Pareto};
use crate::filetypes::{paths, FileCategory};
use crate::plan::PlannedOp;

/// The five §2 usage categories.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UsageCategory {
    /// Central-facility pool: analysis, development, documents.
    WalkUp,
    /// Dedicated group machines: program development, multimedia,
    /// simulation.
    Pool,
    /// Office machines: collaborative applications, email, documents.
    Personal,
    /// Support machines: database interaction, admin tools.
    Administrative,
    /// Compute servers: simulation, graphics, statistics.
    Scientific,
}

impl UsageCategory {
    /// All categories, for sweeps.
    pub const ALL: [UsageCategory; 5] = [
        UsageCategory::WalkUp,
        UsageCategory::Pool,
        UsageCategory::Personal,
        UsageCategory::Administrative,
        UsageCategory::Scientific,
    ];

    /// The deployed 45-machine split across [`UsageCategory::ALL`] —
    /// walk-up pool, group, personal, administrative, scientific.
    pub const PAPER_SPLIT: [usize; 5] = [10, 12, 14, 5, 4];

    /// Apportions `machines` across the categories in the paper's
    /// 10/12/14/5/4 proportions (largest-remainder method, ties broken
    /// in `ALL` order), returning the per-category counts. The counts
    /// always sum to `machines`, and `paper_mix(45)` reproduces
    /// [`UsageCategory::PAPER_SPLIT`] exactly — the org-scale roster is
    /// the paper's deployment, scaled, not a new population model.
    pub fn paper_mix(machines: usize) -> [usize; 5] {
        const TOTAL: usize = 45;
        let mut counts = [0usize; 5];
        let mut assigned = 0;
        // Integer part of each category's exact share …
        for (i, &share) in Self::PAPER_SPLIT.iter().enumerate() {
            counts[i] = machines * share / TOTAL;
            assigned += counts[i];
        }
        // … then the leftover seats go to the largest remainders.
        let mut order: Vec<usize> = (0..5).collect();
        order.sort_by_key(|&i| {
            let rem = (machines * Self::PAPER_SPLIT[i]) % TOTAL;
            (std::cmp::Reverse(rem), i)
        });
        for &i in order.iter().cycle().take(machines - assigned) {
            counts[i] += 1;
        }
        counts
    }
}

/// Files the user's applications can target, sampled from the machine's
/// real content at setup.
#[derive(Clone, Debug, Default)]
pub struct WorkingSet {
    /// Documents and small data files.
    pub docs: Vec<TargetFile>,
    /// Source files.
    pub sources: Vec<TargetFile>,
    /// Executables.
    pub exes: Vec<TargetFile>,
    /// Libraries.
    pub dlls: Vec<TargetFile>,
    /// Large files (≥ 4 MB): scientific data, archives.
    pub bigs: Vec<TargetFile>,
    /// Java class-ish small binary files.
    pub classes: Vec<TargetFile>,
    /// Directories worth browsing.
    pub dirs: Vec<NtPath>,
    /// WWW-cache entries created so far (grows during the run).
    pub cache_entries: Vec<TargetFile>,
}

impl WorkingSet {
    /// Samples a working set from a volume's content, bucketing by the
    /// study's file categories. `cap` bounds each bucket.
    pub fn sample(volume_id: VolumeId, volume: &Volume, cap: usize) -> WorkingSet {
        let mut ws = WorkingSet::default();
        let mut path_stack: Vec<String> = Vec::new();
        volume
            .walk(volume.root(), &mut |depth, _, node: &Node| {
                path_stack.truncate(depth.saturating_sub(1));
                if depth > 0 {
                    path_stack.push(node.name.clone());
                }
                let path = || NtPath::parse(&format!("\\{}", path_stack.join("\\")));
                if let Some(meta) = node.file() {
                    let t = TargetFile {
                        volume: volume_id,
                        path: path(),
                        size: meta.size,
                    };
                    if meta.size >= (4 << 20) && ws.bigs.len() < cap {
                        ws.bigs.push(t.clone());
                    }
                    let bucket = match FileCategory::of_extension(node.extension()) {
                        FileCategory::Document | FileCategory::System | FileCategory::Other => {
                            &mut ws.docs
                        }
                        FileCategory::Source => &mut ws.sources,
                        FileCategory::Executable => &mut ws.exes,
                        FileCategory::Library => &mut ws.dlls,
                        FileCategory::Development => &mut ws.classes,
                        _ => return,
                    };
                    if bucket.len() < cap {
                        bucket.push(t);
                    }
                } else if depth > 0 && depth <= 3 && ws.dirs.len() < cap {
                    ws.dirs.push(path());
                }
            })
            .expect("sampling a live volume");
        ws
    }
}

/// One user (equivalently, one traced machine — the systems were all
/// single-user, §6.1).
pub struct UserModel {
    /// The usage category.
    pub category: UsageCategory,
    /// Profile/user name.
    pub user: String,
    /// The local system volume.
    pub local: VolumeId,
    /// The user's home share on the file server, when connected.
    pub share: Option<VolumeId>,
    /// The sampled working set.
    pub ws: WorkingSet,
    scratch_seq: u64,
    browser_seq: u64,
    doc_seq: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AppChoice {
    Explorer,
    Stat,
    FailedProbe,
    Browser,
    NotepadSave,
    DocRead,
    DocWrite,
    Scratch,
    AppLaunch,
    Background,
    Mailer,
    JavaTool,
    DevBuild,
    SourceRead,
    Database,
    Scientific,
    BigRead,
    ShareDoc,
}

impl UserModel {
    /// Creates a user over a sampled working set.
    pub fn new(
        category: UsageCategory,
        user: &str,
        local: VolumeId,
        share: Option<VolumeId>,
        ws: WorkingSet,
    ) -> Self {
        UserModel {
            category,
            user: user.to_string(),
            local,
            share,
            ws,
            scratch_seq: 0,
            browser_seq: 0,
            doc_seq: 0,
        }
    }

    /// Samples the gap before the next session: a two-phase heavy-tailed
    /// process — short intra-burst gaps most of the time, long OFF
    /// periods otherwise — which is what keeps only ≤ 24 % of 1-second
    /// intervals active (§8.1) while bursts stay dense.
    pub fn session_gap(&self, rng: &mut impl Rng) -> SimDuration {
        if rng.gen_bool(0.8) {
            heavy_gap(rng, SimDuration::from_millis(450), 1.12)
        } else {
            heavy_gap(rng, SimDuration::from_secs(18), 1.08)
        }
    }

    fn mix(&self) -> &'static [(AppChoice, f64)] {
        use AppChoice::*;
        match self.category {
            UsageCategory::WalkUp => &[
                (Explorer, 14.0),
                (Stat, 22.0),
                (FailedProbe, 3.0),
                (Browser, 14.0),
                (NotepadSave, 3.0),
                (DocRead, 32.0),
                (DocWrite, 4.0),
                (Scratch, 7.0),
                (AppLaunch, 7.0),
                (Background, 12.0),
                (JavaTool, 2.0),
                (SourceRead, 9.0),
                (ShareDoc, 4.0),
                (BigRead, 1.5),
            ],
            UsageCategory::Pool => &[
                (Explorer, 12.0),
                (Stat, 20.0),
                (FailedProbe, 3.0),
                (Browser, 6.0),
                (DevBuild, 5.0),
                (SourceRead, 30.0),
                (Scratch, 9.0),
                (AppLaunch, 7.0),
                (Background, 12.0),
                (JavaTool, 1.5),
                (DocRead, 20.0),
                (DocWrite, 2.0),
                (ShareDoc, 3.0),
                (BigRead, 1.5),
            ],
            UsageCategory::Personal => &[
                (Explorer, 14.0),
                (Stat, 22.0),
                (FailedProbe, 3.0),
                (Browser, 16.0),
                (NotepadSave, 3.0),
                (DocRead, 32.0),
                (DocWrite, 5.0),
                (Scratch, 5.0),
                (AppLaunch, 6.0),
                (Background, 12.0),
                (Mailer, 2.0),
                (ShareDoc, 4.0),
                (BigRead, 1.5),
            ],
            UsageCategory::Administrative => &[
                (Explorer, 11.0),
                (Stat, 21.0),
                (FailedProbe, 2.5),
                (Database, 16.0),
                (DocRead, 28.0),
                (DocWrite, 5.0),
                (Browser, 8.0),
                (Scratch, 5.0),
                (AppLaunch, 5.0),
                (Background, 14.0),
                (Mailer, 3.0),
                (ShareDoc, 4.0),
            ],
            UsageCategory::Scientific => &[
                (Scientific, 20.0),
                (BigRead, 10.0),
                (Stat, 18.0),
                (Explorer, 12.0),
                (FailedProbe, 2.0),
                (DocWrite, 6.0),
                (Scratch, 8.0),
                (AppLaunch, 5.0),
                (Background, 14.0),
                (SourceRead, 14.0),
                (Database, 3.0),
                (ShareDoc, 5.0),
            ],
        }
    }

    fn pick<'a>(
        rng: &mut impl Rng,
        set: &'a [TargetFile],
        fallback: &'a [TargetFile],
    ) -> Option<&'a TargetFile> {
        let pool = if set.is_empty() { fallback } else { set };
        if pool.is_empty() {
            None
        } else {
            Some(&pool[rng.gen_range(0..pool.len())])
        }
    }

    fn read_style(rng: &mut impl Rng) -> ReadStyle {
        // Table 3: ~68 % whole-file, ~20 % other sequential, ~12 % random
        // for read-only accesses.
        let u: f64 = rng.gen();
        if u < 0.68 {
            ReadStyle::WholeSequential
        } else if u < 0.88 {
            ReadStyle::PartialSequential
        } else {
            ReadStyle::Random
        }
    }

    fn scratch_death(rng: &mut impl Rng) -> ScratchDeath {
        // §6.3: 37 % truncate-overwrite, 62 % explicit delete, 1 %
        // temporary attribute. Latencies: overwrite within milliseconds,
        // explicit deletes within seconds, both with heavy tails.
        let u: f64 = rng.gen();
        if u < 0.37 {
            ScratchDeath::Overwrite {
                after: heavy_gap(rng, SimDuration::from_micros(500), 1.2),
            }
        } else if u < 0.99 {
            ScratchDeath::ExplicitDelete {
                after: heavy_gap(rng, SimDuration::from_millis(900), 1.2),
            }
        } else {
            ScratchDeath::Temporary
        }
    }

    /// Builds the next session plan.
    pub fn next_plan(&mut self, rng: &mut impl Rng) -> Vec<PlannedOp> {
        let choice = *weighted_choice(rng, self.mix());
        let local = self.local;
        match choice {
            AppChoice::Explorer => {
                let dir = if self.ws.dirs.is_empty() {
                    NtPath::root()
                } else {
                    self.ws.dirs[rng.gen_range(0..self.ws.dirs.len())].clone()
                };
                let entries: Vec<TargetFile> = self.ws.docs.iter().take(12).cloned().collect();
                apps::explorer_browse(local, &dir, &entries, rng)
            }
            AppChoice::Stat => match Self::pick(rng, &self.ws.docs, &self.ws.exes) {
                Some(t) => apps::stat_session(local, &t.path.clone(), false, rng),
                None => apps::stat_session(local, &NtPath::parse(r"\winnt\win.ini"), false, rng),
            },
            AppChoice::FailedProbe => {
                if rng.gen_bool(0.4) {
                    // §8.4's other failure class (31 %): a create is
                    // requested but the name already exists.
                    if let Some(t) = Self::pick(rng, &self.ws.docs, &self.ws.exes) {
                        return vec![crate::plan::PlannedOp::then(crate::plan::FileOp::Open {
                            volume: t.volume,
                            path: t.path.clone(),
                            access: nt_io::AccessMode::Write,
                            disposition: nt_io::Disposition::Create,
                            options: nt_io::CreateOptions::default(),
                        })];
                    }
                }
                // The open-as-existence-test pattern (§8.4, 52 %); roughly
                // half of these are followed by creating the file.
                let path =
                    NtPath::parse(&format!(r"\temp\probe{:05}.tmp", rng.gen_range(0..99_999)));
                let mut plan = apps::stat_session(local, &path, true, rng);
                if rng.gen_bool(0.5) {
                    plan.extend(apps::write_session(
                        local,
                        &path,
                        rng.gen_range(10..4_000),
                        false,
                        rng,
                    ));
                    self.scratch_seq += 1;
                }
                plan
            }
            AppChoice::Browser => {
                self.browser_seq += 1;
                let cache_dir = NtPath::parse(&paths::web_cache_of(&self.user));
                let plan = apps::browser_step(
                    local,
                    &cache_dir,
                    &self.ws.cache_entries,
                    self.browser_seq,
                    rng,
                );
                // Remember a few fresh entries for later hits.
                if self.ws.cache_entries.len() < 400 {
                    for f in 0..2 {
                        self.ws.cache_entries.push(TargetFile {
                            volume: local,
                            path: cache_dir.join(&format!("cache{:08}_{f}.htm", self.browser_seq)),
                            size: 8_000,
                        });
                    }
                }
                plan
            }
            AppChoice::NotepadSave => {
                self.doc_seq += 1;
                let path = NtPath::parse(&format!(
                    r"{}\note{:03}.txt",
                    paths::profile_of(&self.user),
                    self.doc_seq % 40
                ));
                apps::notepad_save(local, &path, rng.gen_range(200..6_000))
            }
            AppChoice::DocRead => match Self::pick(rng, &self.ws.docs, &self.ws.sources) {
                Some(t) => {
                    let t = t.clone();
                    if rng.gen_bool(0.45) {
                        // §9.1: 31 % of read sessions use a single I/O.
                        apps::peek_session(&t, rng)
                    } else {
                        apps::read_session(&t, Self::read_style(rng), rng)
                    }
                }
                None => Vec::new(),
            },
            AppChoice::DocWrite => {
                self.doc_seq += 1;
                let path = NtPath::parse(&format!(
                    r"{}\work{:03}.doc",
                    paths::profile_of(&self.user),
                    self.doc_seq % 60
                ));
                apps::write_session(
                    local,
                    &path,
                    rng.gen_range(1_000..80_000),
                    rng.gen_bool(0.5),
                    rng,
                )
            }
            AppChoice::Scratch => {
                self.scratch_seq += 1;
                let path = NtPath::parse(&format!(r"\temp\scr{:06}.tmp", self.scratch_seq));
                apps::scratch_file(
                    local,
                    &path,
                    // §6.3: 65 % of deleted files are under 100 bytes.
                    if rng.gen_bool(0.65) {
                        rng.gen_range(1..100)
                    } else {
                        (Pareto::new(150.0, 1.3).sample(rng) as u64).min(2 << 20)
                    },
                    Self::scratch_death(rng),
                    rng,
                )
            }
            AppChoice::AppLaunch => match Self::pick(rng, &self.ws.exes, &self.ws.dlls) {
                Some(exe) => {
                    let exe = exe.clone();
                    let configs: Vec<_> = self.ws.docs.iter().take(40).cloned().collect();
                    apps::app_launch(&exe, &self.ws.dlls, &configs, rng)
                }
                None => Vec::new(),
            },
            AppChoice::Background => apps::background_service(
                local,
                &NtPath::parse(r"\winnt\system32\config\sys.log"),
                &NtPath::parse(r"\winnt\win.ini"),
                rng,
            ),
            AppChoice::Mailer => apps::mailer_save(
                local,
                &NtPath::parse(&format!(r"{}\inbox.mbx", paths::profile_of(&self.user))),
            ),
            AppChoice::JavaTool => match Self::pick(rng, &self.ws.classes, &self.ws.docs) {
                Some(t) => apps::java_tool_read(&t.clone(), rng),
                None => Vec::new(),
            },
            AppChoice::DevBuild => {
                let sources: Vec<TargetFile> = self.ws.sources.iter().take(16).cloned().collect();
                if sources.is_empty() {
                    return Vec::new();
                }
                apps::devenv_build(local, &sources, &NtPath::parse(r"\temp\build"), rng)
            }
            AppChoice::SourceRead => match Self::pick(rng, &self.ws.sources, &self.ws.docs) {
                Some(t) => apps::read_session(&t.clone(), Self::read_style(rng), rng),
                None => Vec::new(),
            },
            AppChoice::Database => {
                let db = TargetFile {
                    volume: local,
                    path: NtPath::parse(r"\winnt\system32\admin.db"),
                    size: 8 << 20,
                };
                apps::db_session(&db, rng)
            }
            AppChoice::Scientific => match Self::pick(rng, &self.ws.bigs, &self.ws.docs) {
                Some(t) => apps::scientific_session(&t.clone(), rng),
                None => Vec::new(),
            },
            AppChoice::BigRead => match Self::pick(rng, &self.ws.bigs, &self.ws.docs) {
                Some(t) => apps::read_session(&t.clone(), Self::read_style(rng), rng),
                None => Vec::new(),
            },
            AppChoice::ShareDoc => {
                let Some(share) = self.share else {
                    return Vec::new();
                };
                self.doc_seq += 1;
                if rng.gen_bool(0.6) {
                    let t = TargetFile {
                        volume: share,
                        path: NtPath::parse(&format!(r"\doc{:03}.doc", self.doc_seq % 80)),
                        size: rng.gen_range(1_000..120_000),
                    };
                    let mut plan = apps::write_session(share, &t.path, t.size, true, rng);
                    plan.insert(
                        0,
                        PlannedOp::then(crate::plan::FileOp::IsVolumeMounted { volume: share }),
                    );
                    plan
                } else {
                    let t = TargetFile {
                        volume: share,
                        path: NtPath::parse(&format!(r"\doc{:03}.doc", self.doc_seq % 80)),
                        size: rng.gen_range(1_000..120_000),
                    };
                    // May fail with not-found when never written: realistic.
                    apps::read_session(&t, Self::read_style(rng), rng)
                }
            }
        }
    }

    /// The logon profile sync, run once at the start of a user session.
    pub fn logon_plan(&self, rng: &mut impl Rng) -> Vec<PlannedOp> {
        let profile = NtPath::parse(&paths::profile_of(&self.user));
        apps::winlogon_profile_sync(self.local, &profile, rng.gen_range(4..12), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_fs::VolumeConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn working_set() -> WorkingSet {
        let mut vol = Volume::new(VolumeConfig::local_ntfs(4 << 30));
        let mut rng = SmallRng::seed_from_u64(9);
        let plan = crate::filetypes::ContentPlan {
            target_files: 2_000,
            users: vec!["tess".into()],
            web_cache_files: 200,
            developer_package: true,
            backdated_fraction: 0.2,
        };
        crate::filetypes::ContentBuilder::build(
            &mut vol,
            &plan,
            nt_sim::SimTime::from_secs(5),
            &mut rng,
        )
        .unwrap();
        WorkingSet::sample(VolumeId(0), &vol, 200)
    }

    #[test]
    fn working_set_buckets_populated() {
        let ws = working_set();
        assert!(!ws.docs.is_empty());
        assert!(!ws.exes.is_empty());
        assert!(!ws.dlls.is_empty());
        assert!(!ws.sources.is_empty());
        assert!(!ws.dirs.is_empty());
        for t in ws.docs.iter().take(5) {
            assert!(t.path.depth() > 0);
        }
    }

    #[test]
    fn every_category_produces_plans() {
        let ws = working_set();
        let mut rng = SmallRng::seed_from_u64(11);
        for cat in UsageCategory::ALL {
            let mut user = UserModel::new(cat, "tess", VolumeId(0), None, ws.clone());
            let mut non_empty = 0;
            for _ in 0..50 {
                if !user.next_plan(&mut rng).is_empty() {
                    non_empty += 1;
                }
            }
            assert!(non_empty >= 45, "{cat:?} produced {non_empty}/50 plans");
        }
    }

    #[test]
    fn session_gaps_are_heavy_tailed() {
        let ws = WorkingSet::default();
        let user = UserModel::new(UsageCategory::Personal, "x", VolumeId(0), None, ws);
        let mut rng = SmallRng::seed_from_u64(3);
        let gaps: Vec<SimDuration> = (0..20_000).map(|_| user.session_gap(&mut rng)).collect();
        let mut sorted = gaps.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let p999 = sorted[sorted.len() * 999 / 1000];
        assert!(
            p999 > median * 100,
            "p99.9 {} vs median {} shows extreme variance",
            p999,
            median
        );
    }

    #[test]
    fn logon_plan_rewrites_profile_files() {
        let ws = WorkingSet::default();
        let user = UserModel::new(UsageCategory::Personal, "ann", VolumeId(0), None, ws);
        let mut rng = SmallRng::seed_from_u64(4);
        let plan = user.logon_plan(&mut rng);
        let opens = plan
            .iter()
            .filter(|p| matches!(&p.op, crate::plan::FileOp::Open { .. }))
            .count();
        assert!(opens >= 4, "profile sync opens several files: {opens}");
    }

    #[test]
    fn share_sessions_require_a_share() {
        let ws = working_set();
        let mut rng = SmallRng::seed_from_u64(12);
        let mut user = UserModel::new(
            UsageCategory::Personal,
            "tess",
            VolumeId(0),
            Some(VolumeId(1)),
            ws,
        );
        // Over many draws, some plans must target the share volume.
        let mut share_ops = 0;
        for _ in 0..300 {
            for op in user.next_plan(&mut rng) {
                if let crate::plan::FileOp::Open { volume, .. } = op.op {
                    if volume == VolumeId(1) {
                        share_ops += 1;
                    }
                }
            }
        }
        assert!(share_ops > 0, "share traffic appears");
    }
    #[test]
    fn paper_mix_apportions_exactly() {
        assert_eq!(UsageCategory::paper_mix(45), UsageCategory::PAPER_SPLIT);
        assert_eq!(UsageCategory::paper_mix(0), [0; 5]);
        for n in [1usize, 5, 44, 46, 450, 1_000, 9_973, 10_000] {
            let counts = UsageCategory::paper_mix(n);
            assert_eq!(counts.iter().sum::<usize>(), n, "n={n}");
            // Each category stays within one machine of its exact share.
            for (i, &c) in counts.iter().enumerate() {
                let exact = n as f64 * UsageCategory::PAPER_SPLIT[i] as f64 / 45.0;
                assert!(
                    (c as f64 - exact).abs() < 1.0,
                    "n={n} cat={i}: {c} vs {exact}"
                );
            }
        }
        // Scaling by a whole multiple scales every category exactly.
        assert_eq!(UsageCategory::paper_mix(450), [100, 120, 140, 50, 40]);
    }
}
