//! Heavy-tailed sampling toolkit (§7 of the paper).
//!
//! The study found "strong evidence of extreme variance in all of the
//! traced usage characteristics", with Hill-estimator α between 1.2 and
//! 1.7 — infinite variance. The generators here produce exactly that
//! family: Pareto tails with configurable α, usually attached to a
//! log-normal body for realistic small values, plus the empirical
//! request-size mixtures §8.2 reports.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};

use nt_sim::SimDuration;

/// A Pareto distribution `P[X > x] = (xm / x)^alpha` for `x >= xm`.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    /// Scale (minimum value).
    pub xm: f64,
    /// Tail index; α < 2 gives infinite variance, α ≤ 1 infinite mean.
    pub alpha: f64,
}

impl Pareto {
    /// Creates a Pareto with the given scale and tail index.
    ///
    /// # Panics
    ///
    /// Panics when `xm` or `alpha` are not strictly positive.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(xm > 0.0 && alpha > 0.0, "Pareto parameters must be > 0");
        Pareto { xm, alpha }
    }

    /// Draws one sample by inversion.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.xm / u.powf(1.0 / self.alpha)
    }
}

/// A Pareto truncated at `cap` (re-draw by inversion on the truncated
/// CDF, not rejection, so sampling cost is constant).
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    /// Scale (minimum value).
    pub xm: f64,
    /// Tail index.
    pub alpha: f64,
    /// Upper bound.
    pub cap: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto on `[xm, cap]`.
    ///
    /// # Panics
    ///
    /// Panics when the parameters do not satisfy `0 < xm < cap`,
    /// `alpha > 0`.
    pub fn new(xm: f64, alpha: f64, cap: f64) -> Self {
        assert!(xm > 0.0 && alpha > 0.0 && cap > xm);
        BoundedPareto { xm, alpha, cap }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        // Inverse CDF of the truncated Pareto.
        let u: f64 = rng.gen_range(0.0..1.0);
        let l = self.xm.powf(-self.alpha);
        let h = self.cap.powf(-self.alpha);
        (l - u * (l - h)).powf(-1.0 / self.alpha)
    }
}

/// A log-normal body with a Pareto tail: the workhorse for file sizes and
/// holding times. With probability `tail_prob` the sample comes from the
/// Pareto tail, otherwise from the log-normal body.
#[derive(Clone, Copy, Debug)]
pub struct BodyTail {
    body: LogNormal<f64>,
    tail: Pareto,
    /// Probability of drawing from the tail.
    pub tail_prob: f64,
}

impl BodyTail {
    /// Creates a body-tail mixture. `mu`/`sigma` parameterise the
    /// log-normal in log-space.
    pub fn new(mu: f64, sigma: f64, tail: Pareto, tail_prob: f64) -> Self {
        BodyTail {
            body: LogNormal::new(mu, sigma).expect("valid log-normal"),
            tail,
            tail_prob,
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        if rng.gen_bool(self.tail_prob.clamp(0.0, 1.0)) {
            self.tail.sample(rng)
        } else {
            self.body.sample(rng)
        }
    }
}

/// The empirical request-size mixture of §8.2: "in 59 % of the read cases
/// the request size is either 512 or 4096 bytes … of the remaining sizes,
/// there is a strong preference for very small (2–8 bytes) and very large
/// (48 Kbytes and higher) reads."
#[derive(Clone, Copy, Debug)]
pub struct SizeMixture {
    kind: SizeMixtureKind,
}

#[derive(Clone, Copy, Debug)]
enum SizeMixtureKind {
    Read,
    Write,
}

impl SizeMixture {
    /// The read-request mixture.
    pub fn reads() -> Self {
        SizeMixture {
            kind: SizeMixtureKind::Read,
        }
    }

    /// The write-request mixture — "more diverse, especially in the lower
    /// bytes range (less than 1024 bytes), probably reflecting the
    /// writing of single data-structures".
    pub fn writes() -> Self {
        SizeMixture {
            kind: SizeMixtureKind::Write,
        }
    }

    /// Draws one request size in bytes.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        match self.kind {
            SizeMixtureKind::Read => {
                let u: f64 = rng.gen();
                if u < 0.33 {
                    512
                } else if u < 0.59 {
                    4_096
                } else if u < 0.72 {
                    // Very small structure reads (2–8 bytes).
                    rng.gen_range(2..=8)
                } else if u < 0.90 {
                    // Stdio-ish intermediate sizes.
                    *[1_024u64, 2_048, 8_192, 16_384, 1_200, 100]
                        .get(rng.gen_range(0..6))
                        .expect("in range")
                } else {
                    // Large transfers, 48 KB and up, heavy tail.
                    BoundedPareto::new(49_152.0, 1.3, 4.0e6).sample(rng) as u64
                }
            }
            SizeMixtureKind::Write => {
                let u: f64 = rng.gen();
                if u < 0.58 {
                    // Diverse small writes under 1 KB: single data
                    // structures (these keep the §8.2 write spacing under
                    // 30 µs for most writes).
                    rng.gen_range(1..=1_024)
                } else if u < 0.70 {
                    512
                } else if u < 0.82 {
                    4_096
                } else if u < 0.95 {
                    *[2_048u64, 8_192, 16_384]
                        .get(rng.gen_range(0..3))
                        .expect("in range")
                } else {
                    BoundedPareto::new(49_152.0, 1.3, 4.0e6).sample(rng) as u64
                }
            }
        }
    }
}

/// Samples a heavy-tailed inter-arrival gap with median `median` and
/// Pareto tail index `alpha` — the §7 arrival process whose burstiness
/// survives aggregation.
pub fn heavy_gap(rng: &mut impl Rng, median: SimDuration, alpha: f64) -> SimDuration {
    // The Pareto median is xm * 2^(1/alpha); solve xm for the requested
    // median.
    let xm = median.as_secs_f64() / 2f64.powf(1.0 / alpha);
    let p = Pareto::new(xm.max(1e-7), alpha);
    SimDuration::from_secs_f64(p.sample(rng))
}

/// Weighted choice over a small static table.
pub fn weighted_choice<'a, T>(rng: &mut impl Rng, table: &'a [(T, f64)]) -> &'a T {
    let total: f64 = table.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (item, w) in table {
        if x < *w {
            return item;
        }
        x -= w;
    }
    &table.last().expect("non-empty table").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn pareto_respects_scale() {
        let p = Pareto::new(10.0, 1.5);
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(p.sample(&mut r) >= 10.0);
        }
    }

    #[test]
    fn pareto_tail_heavier_for_smaller_alpha() {
        let mut r = rng();
        let heavy = Pareto::new(1.0, 1.1);
        let light = Pareto::new(1.0, 3.0);
        let big = |p: &Pareto, r: &mut SmallRng| {
            (0..20_000).filter(|_| p.sample(r) > 100.0).count() as f64 / 20_000.0
        };
        assert!(big(&heavy, &mut r) > big(&light, &mut r) * 5.0);
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let p = BoundedPareto::new(100.0, 1.2, 10_000.0);
        let mut r = rng();
        for _ in 0..5_000 {
            let x = p.sample(&mut r);
            assert!((100.0..=10_000.0).contains(&x), "got {x}");
        }
    }

    #[test]
    fn body_tail_mixes() {
        let bt = BodyTail::new(7.0, 1.0, Pareto::new(1.0e6, 1.3), 0.05);
        let mut r = rng();
        let samples: Vec<f64> = (0..10_000).map(|_| bt.sample(&mut r)).collect();
        let body_like = samples.iter().filter(|&&x| x < 100_000.0).count();
        let tail_like = samples.iter().filter(|&&x| x >= 1.0e6).count();
        assert!(body_like > 8_000, "body dominates: {body_like}");
        assert!(tail_like > 100, "tail present: {tail_like}");
    }

    #[test]
    fn read_sizes_match_the_paper_modes() {
        let mut r = rng();
        let m = SizeMixture::reads();
        let n = 50_000;
        let samples: Vec<u64> = (0..n).map(|_| m.sample(&mut r)).collect();
        let common = samples.iter().filter(|&&s| s == 512 || s == 4_096).count();
        let frac = common as f64 / n as f64;
        assert!(
            (0.50..0.68).contains(&frac),
            "512/4096 fraction {frac} should be ≈ 0.59"
        );
        assert!(samples.iter().any(|&s| (2..=8).contains(&s)));
        assert!(samples.iter().any(|&s| s >= 49_152));
    }

    #[test]
    fn write_sizes_are_diverse_below_1k() {
        let mut r = rng();
        let m = SizeMixture::writes();
        let small: std::collections::HashSet<u64> = (0..20_000)
            .map(|_| m.sample(&mut r))
            .filter(|&s| s < 1_024)
            .collect();
        assert!(small.len() > 200, "diverse small writes: {}", small.len());
    }

    #[test]
    fn heavy_gap_is_positive_and_spread() {
        let mut r = rng();
        let gaps: Vec<SimDuration> = (0..5_000)
            .map(|_| heavy_gap(&mut r, SimDuration::from_millis(10), 1.3))
            .collect();
        assert!(gaps.iter().all(|g| !g.is_zero()));
        let max = gaps.iter().max().unwrap();
        let median = {
            let mut v = gaps.clone();
            v.sort();
            v[v.len() / 2]
        };
        assert!(*max > median * 50, "heavy tail spreads far beyond median");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = rng();
        let table = [("a", 9.0), ("b", 1.0)];
        let a = (0..10_000)
            .filter(|_| *weighted_choice(&mut r, &table) == "a")
            .count();
        assert!((8_500..9_500).contains(&a), "got {a}");
    }
}
