//! The collection servers (§3).
//!
//! "The collection servers are three dedicated file servers that take the
//! incoming event streams and store them in compressed formats for later
//! retrieval." The model keeps each shipped buffer as a compressed batch —
//! a column-delta encoding that exploits the near-sorted timestamps — and
//! can reproduce the full record stream per machine for the analysis
//! stage.

use bytes::{Buf, BufMut, BytesMut};

use crate::record::{NameRecord, TraceRecord, RECORD_SIZE};

/// Identifies a traced machine at the collection server.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MachineId(pub u32);

/// One shipped buffer, stored compressed.
#[derive(Clone, Debug)]
pub struct RecordBatch {
    count: usize,
    compressed: Vec<u8>,
}

impl RecordBatch {
    /// Compresses a batch of records.
    ///
    /// Encoding: the fixed 88-byte records are encoded, then the start
    /// timestamps are replaced with deltas from the previous record and
    /// varint-packed; end timestamps become varint deltas from their own
    /// start. Everything else stays fixed-width. On bursty traces this
    /// roughly halves the footprint, which is enough realism for a model
    /// whose point is the retrieval interface.
    pub fn compress(records: &[TraceRecord]) -> Self {
        let mut out = Vec::with_capacity(records.len() * RECORD_SIZE / 2);
        let mut prev_start = 0u64;
        for rec in records {
            let mut fixed = BytesMut::with_capacity(RECORD_SIZE);
            rec.encode(&mut fixed);
            // Strip the trailing two u64 timestamps; re-encode as varints.
            out.extend_from_slice(&fixed[..RECORD_SIZE - 16]);
            put_varint(&mut out, rec.start_ticks.wrapping_sub(prev_start));
            put_varint(&mut out, rec.end_ticks.saturating_sub(rec.start_ticks));
            prev_start = rec.start_ticks;
        }
        RecordBatch {
            count: records.len(),
            compressed: out,
        }
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.compressed.len()
    }

    /// Decompresses the batch back into records.
    pub fn decompress(&self) -> Vec<TraceRecord> {
        let mut records = Vec::with_capacity(self.count);
        let mut buf = &self.compressed[..];
        let mut prev_start = 0u64;
        for _ in 0..self.count {
            // Reassemble a fixed-width record: body + two u64 slots.
            let mut fixed = BytesMut::with_capacity(RECORD_SIZE);
            fixed.extend_from_slice(&buf[..RECORD_SIZE - 16]);
            buf.advance(RECORD_SIZE - 16);
            let dstart = get_varint(&mut buf);
            let dend = get_varint(&mut buf);
            let start = prev_start.wrapping_add(dstart);
            prev_start = start;
            fixed.put_u64_le(start);
            fixed.put_u64_le(start + dend);
            let rec = TraceRecord::decode(&mut fixed.freeze())
                .expect("batch body was produced by encode");
            records.push(rec);
        }
        records
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = buf[0];
        buf.advance(1);
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// A collection server holding the batches of every traced machine.
///
/// Each batch carries a per-machine sequence number. Agents that fail over
/// between servers (the fault-injection layer) stamp their own sequence so
/// the merged pool can reassemble one machine's stream in agent order even
/// when consecutive batches landed on different servers; batches ingested
/// through the plain API get an arrival-order stamp, which reproduces the
/// historical shipping order exactly.
#[derive(Default)]
pub struct CollectionServer {
    batches: Vec<(MachineId, u64, RecordBatch)>,
    names: Vec<(MachineId, u64, NameRecord)>,
    next_arrival: u64,
}

impl CollectionServer {
    /// An empty server.
    pub fn new() -> Self {
        CollectionServer::default()
    }

    /// Stores one shipped buffer in arrival order.
    pub fn ingest(&mut self, machine: MachineId, records: &[TraceRecord]) {
        let seq = self.next_arrival;
        self.next_arrival += 1;
        self.ingest_seq(machine, seq, records);
    }

    /// Stores one shipped buffer with the agent's own sequence number.
    pub fn ingest_seq(&mut self, machine: MachineId, seq: u64, records: &[TraceRecord]) {
        if !records.is_empty() {
            self.batches
                .push((machine, seq, RecordBatch::compress(records)));
        }
    }

    /// Stores a file-object name record in arrival order.
    pub fn ingest_name(&mut self, machine: MachineId, name: NameRecord) {
        let seq = self.next_arrival;
        self.next_arrival += 1;
        self.ingest_name_seq(machine, seq, name);
    }

    /// Stores a file-object name record with the agent's sequence number.
    pub fn ingest_name_seq(&mut self, machine: MachineId, seq: u64, name: NameRecord) {
        self.names.push((machine, seq, name));
    }

    /// Total records stored across machines.
    pub fn total_records(&self) -> usize {
        self.batches.iter().map(|(_, _, b)| b.len()).sum()
    }

    /// Total compressed footprint in bytes.
    pub fn stored_bytes(&self) -> usize {
        self.batches
            .iter()
            .map(|(_, _, b)| b.compressed_bytes())
            .sum()
    }

    /// Reconstructs one machine's full record stream, in agent order
    /// (sequence-number order; arrival order for plain ingests).
    pub fn records_for(&self, machine: MachineId) -> Vec<TraceRecord> {
        let mut picked: Vec<(u64, &RecordBatch)> = self
            .batches
            .iter()
            .filter(|(m, _, _)| *m == machine)
            .map(|(_, seq, b)| (*seq, b))
            .collect();
        picked.sort_by_key(|(seq, _)| *seq);
        let mut out = Vec::new();
        for (_, batch) in picked {
            out.extend(batch.decompress());
        }
        out
    }

    /// Reconstructs every machine's records, in store order.
    pub fn all_records(&self) -> Vec<(MachineId, TraceRecord)> {
        let mut out = Vec::new();
        for (m, _, batch) in &self.batches {
            for rec in batch.decompress() {
                out.push((*m, rec));
            }
        }
        out
    }

    /// Name records for one machine, in agent order.
    pub fn names_for(&self, machine: MachineId) -> Vec<&NameRecord> {
        let mut picked: Vec<(u64, &NameRecord)> = self
            .names
            .iter()
            .filter(|(m, _, _)| *m == machine)
            .map(|(_, seq, n)| (*seq, n))
            .collect();
        picked.sort_by_key(|(seq, _)| *seq);
        picked.into_iter().map(|(_, n)| n).collect()
    }

    /// Absorbs another server's batches (pool shutdown merge).
    pub fn merge(&mut self, other: CollectionServer) {
        self.batches.extend(other.batches);
        self.names.extend(other.names);
        self.next_arrival = self.next_arrival.max(other.next_arrival);
    }

    /// Machines that have shipped at least one batch.
    pub fn machines(&self) -> Vec<MachineId> {
        let mut ms: Vec<MachineId> = self.batches.iter().map(|(m, _, _)| *m).collect();
        ms.sort();
        ms.dedup();
        ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_io::{EventKind, MajorFunction, NtStatus};

    fn rec(i: u64, start: u64) -> TraceRecord {
        TraceRecord {
            code: EventKind::Irp(MajorFunction::Read).code(),
            flags: 0,
            status: NtStatus::Success,
            set_info: None,
            access: None,
            disposition: None,
            options: None,
            file_object: i,
            fcb: i / 2,
            process: 4,
            volume: 0,
            offset: i * 512,
            length: 512,
            transferred: 512,
            file_size: 1 << 20,
            byte_offset: 0,
            start_ticks: start,
            end_ticks: start + 300 + i,
        }
    }

    #[test]
    fn batch_roundtrip() {
        let records: Vec<TraceRecord> = (0..500).map(|i| rec(i, 1_000 + i * 97)).collect();
        let batch = RecordBatch::compress(&records);
        assert_eq!(batch.len(), 500);
        assert_eq!(batch.decompress(), records);
    }

    #[test]
    fn compression_shrinks_bursty_traces() {
        let records: Vec<TraceRecord> = (0..1_000).map(|i| rec(i, 5_000_000 + i * 13)).collect();
        let batch = RecordBatch::compress(&records);
        assert!(
            batch.compressed_bytes() < records.len() * RECORD_SIZE,
            "compressed {} raw {}",
            batch.compressed_bytes(),
            records.len() * RECORD_SIZE
        );
    }

    #[test]
    fn non_monotonic_timestamps_survive() {
        // Shipping order is not strictly time order (overlapping IRPs).
        let records = vec![rec(0, 1_000), rec(1, 500), rec(2, 2_000)];
        let batch = RecordBatch::compress(&records);
        assert_eq!(batch.decompress(), records);
    }

    #[test]
    fn server_separates_machines() {
        let mut srv = CollectionServer::new();
        srv.ingest(MachineId(1), &[rec(1, 10), rec(2, 20)]);
        srv.ingest(MachineId(2), &[rec(3, 30)]);
        srv.ingest(MachineId(1), &[rec(4, 40)]);
        assert_eq!(srv.total_records(), 4);
        assert_eq!(srv.records_for(MachineId(1)).len(), 3);
        assert_eq!(srv.records_for(MachineId(2)).len(), 1);
        assert_eq!(srv.machines(), vec![MachineId(1), MachineId(2)]);
        assert_eq!(srv.all_records().len(), 4);
    }

    #[test]
    fn name_records_stored_per_machine() {
        let mut srv = CollectionServer::new();
        srv.ingest_name(
            MachineId(1),
            NameRecord {
                file_object: 9,
                volume: 0,
                process: 1,
                path: r"\x.txt".into(),
                at_ticks: 0,
            },
        );
        assert_eq!(srv.names_for(MachineId(1)).len(), 1);
        assert!(srv.names_for(MachineId(2)).is_empty());
    }
}
