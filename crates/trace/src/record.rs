//! Fixed-size trace records (§3.2).
//!
//! Each record carries "at least a reference to the file object, IRP, File
//! and Header Flags, the requesting process, the current byte offset and
//! file size, and the result status", two 100 ns timestamps, and the
//! per-operation extras. The encoding is a fixed 88-byte layout so that a
//! buffer of 3,000 records has a known footprint and the collection-server
//! compression can work on stable columns.

use bytes::{Buf, BufMut};
use nt_io::{AccessMode, CreateOptions, Disposition};
use nt_io::{EventKind, IoEvent, NtStatus, SetInfoKind};
use nt_sim::SimTime;

/// Size of one encoded record in bytes.
pub const RECORD_SIZE: usize = 88;

const FLAG_PAGING: u8 = TraceRecord::FLAG_PAGING;
const FLAG_READAHEAD: u8 = TraceRecord::FLAG_READAHEAD;
const FLAG_LOCAL: u8 = TraceRecord::FLAG_LOCAL;
const FLAG_CREATED: u8 = TraceRecord::FLAG_CREATED;

/// A fixed-size trace record; the in-memory twin of the wire format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Event-kind code 0–53 (see [`EventKind::code`]).
    pub code: u8,
    /// Header flags (paging, read-ahead, local volume).
    pub flags: u8,
    /// Completion status.
    pub status: NtStatus,
    /// SetInformation class, when applicable.
    pub set_info: Option<SetInfoKind>,
    /// Create access class, when applicable.
    pub access: Option<AccessMode>,
    /// Create disposition, when applicable.
    pub disposition: Option<Disposition>,
    /// Create options bitfield, when applicable.
    pub options: Option<CreateOptions>,
    /// File object id.
    pub file_object: u64,
    /// FCB id (`u64::MAX` when none).
    pub fcb: u64,
    /// Requesting process.
    pub process: u32,
    /// Volume index.
    pub volume: u32,
    /// Request offset.
    pub offset: u64,
    /// Requested length.
    pub length: u64,
    /// Bytes transferred.
    pub transferred: u64,
    /// File size at request time.
    pub file_size: u64,
    /// File object's byte offset at request time.
    pub byte_offset: u64,
    /// Arrival timestamp in 100 ns ticks.
    pub start_ticks: u64,
    /// Completion timestamp in 100 ns ticks.
    pub end_ticks: u64,
}

impl TraceRecord {
    /// The PagingIO header bit in [`TraceRecord::flags`]. Public so
    /// columnar scans over a flags column can test bits without
    /// reconstructing whole records.
    pub const FLAG_PAGING: u8 = 1 << 0;
    /// The read-ahead header bit.
    pub const FLAG_READAHEAD: u8 = 1 << 1;
    /// The local-volume header bit.
    pub const FLAG_LOCAL: u8 = 1 << 2;
    /// The file-was-created header bit.
    pub const FLAG_CREATED: u8 = 1 << 3;

    /// Builds a record from a live I/O event.
    pub fn from_event(ev: &IoEvent) -> Self {
        let mut flags = 0;
        if ev.paging_io {
            flags |= FLAG_PAGING;
        }
        if ev.readahead {
            flags |= FLAG_READAHEAD;
        }
        if ev.local {
            flags |= FLAG_LOCAL;
        }
        if ev.created {
            flags |= FLAG_CREATED;
        }
        TraceRecord {
            code: ev.kind.code(),
            flags,
            status: ev.status,
            set_info: ev.set_info,
            access: ev.access,
            disposition: ev.disposition,
            options: ev.options,
            file_object: ev.file_object.0,
            fcb: ev.fcb.0,
            process: ev.process.0,
            volume: ev.volume,
            offset: ev.offset,
            length: ev.length,
            transferred: ev.transferred,
            file_size: ev.file_size,
            byte_offset: ev.byte_offset,
            start_ticks: ev.start.ticks(),
            end_ticks: ev.end.ticks(),
        }
    }

    /// The event kind (inverse of the code).
    pub fn kind(&self) -> EventKind {
        EventKind::from_code(self.code).expect("record carries a valid code")
    }

    /// The PagingIO header bit.
    pub fn is_paging(&self) -> bool {
        self.flags & FLAG_PAGING != 0
    }

    /// True for speculative read-ahead paging reads.
    pub fn is_readahead(&self) -> bool {
        self.flags & FLAG_READAHEAD != 0
    }

    /// True when the request targeted a local volume.
    pub fn is_local(&self) -> bool {
        self.flags & FLAG_LOCAL != 0
    }

    /// True when this create brought a new file into existence.
    pub fn is_created(&self) -> bool {
        self.flags & FLAG_CREATED != 0
    }

    /// Arrival time.
    pub fn start(&self) -> SimTime {
        SimTime::from_ticks(self.start_ticks)
    }

    /// Completion time.
    pub fn end(&self) -> SimTime {
        SimTime::from_ticks(self.end_ticks)
    }

    /// Service duration in 100 ns ticks.
    pub fn latency_ticks(&self) -> u64 {
        self.end_ticks.saturating_sub(self.start_ticks)
    }

    /// Encodes into exactly [`RECORD_SIZE`] bytes.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.code);
        buf.put_u8(self.flags);
        buf.put_u8(encode_status(self.status));
        buf.put_u8(self.set_info.map(encode_set_info).unwrap_or(0xff));
        buf.put_u8(self.access.map(encode_access).unwrap_or(0xff));
        buf.put_u8(self.disposition.map(encode_disposition).unwrap_or(0xff));
        buf.put_u8(self.options.map(encode_options).unwrap_or(0xff));
        buf.put_u8(self.options.map(encode_share).unwrap_or(0xff));
        buf.put_u64_le(self.file_object);
        buf.put_u64_le(self.fcb);
        buf.put_u32_le(self.process);
        buf.put_u32_le(self.volume);
        buf.put_u64_le(self.offset);
        buf.put_u64_le(self.length);
        buf.put_u64_le(self.transferred);
        buf.put_u64_le(self.file_size);
        buf.put_u64_le(self.byte_offset);
        buf.put_u64_le(self.start_ticks);
        buf.put_u64_le(self.end_ticks);
    }

    /// Decodes from [`RECORD_SIZE`] bytes; `None` on any malformed field.
    pub fn decode(buf: &mut impl Buf) -> Option<Self> {
        if buf.remaining() < RECORD_SIZE {
            return None;
        }
        let code = buf.get_u8();
        let flags = buf.get_u8();
        let status = decode_status(buf.get_u8())?;
        let set_info = decode_opt(buf.get_u8(), decode_set_info)?;
        let access = decode_opt(buf.get_u8(), decode_access)?;
        let disposition = decode_opt(buf.get_u8(), decode_disposition)?;
        let mut options = decode_opt(buf.get_u8(), |b| Some(decode_options(b)))?;
        let share_bits = buf.get_u8();
        if let Some(o) = options.as_mut() {
            o.share = decode_share(share_bits);
        }
        EventKind::from_code(code)?;
        Some(TraceRecord {
            code,
            flags,
            status,
            set_info,
            access,
            disposition,
            options,
            file_object: buf.get_u64_le(),
            fcb: buf.get_u64_le(),
            process: buf.get_u32_le(),
            volume: buf.get_u32_le(),
            offset: buf.get_u64_le(),
            length: buf.get_u64_le(),
            transferred: buf.get_u64_le(),
            file_size: buf.get_u64_le(),
            byte_offset: buf.get_u64_le(),
            start_ticks: buf.get_u64_le(),
            end_ticks: buf.get_u64_le(),
        })
    }
}

fn decode_opt<T>(b: u8, f: impl Fn(u8) -> Option<T>) -> Option<Option<T>> {
    if b == 0xff {
        Some(None)
    } else {
        f(b).map(Some)
    }
}

fn encode_status(s: NtStatus) -> u8 {
    match s {
        NtStatus::Success => 0,
        NtStatus::ObjectNameNotFound => 1,
        NtStatus::ObjectPathNotFound => 2,
        NtStatus::ObjectNameCollision => 3,
        NtStatus::EndOfFile => 4,
        NtStatus::DiskFull => 5,
        NtStatus::AccessDenied => 6,
        NtStatus::SharingViolation => 7,
        NtStatus::DeletePending => 8,
        NtStatus::DirectoryNotEmpty => 9,
        NtStatus::NotADirectory => 10,
        NtStatus::FileIsADirectory => 11,
        NtStatus::InvalidParameter => 12,
        NtStatus::InvalidHandle => 13,
        NtStatus::NoMoreFiles => 14,
        NtStatus::InvalidDeviceRequest => 15,
        NtStatus::FileLockConflict => 16,
        NtStatus::NetworkUnreachable => 17,
    }
}

fn decode_status(b: u8) -> Option<NtStatus> {
    Some(match b {
        0 => NtStatus::Success,
        1 => NtStatus::ObjectNameNotFound,
        2 => NtStatus::ObjectPathNotFound,
        3 => NtStatus::ObjectNameCollision,
        4 => NtStatus::EndOfFile,
        5 => NtStatus::DiskFull,
        6 => NtStatus::AccessDenied,
        7 => NtStatus::SharingViolation,
        8 => NtStatus::DeletePending,
        9 => NtStatus::DirectoryNotEmpty,
        10 => NtStatus::NotADirectory,
        11 => NtStatus::FileIsADirectory,
        12 => NtStatus::InvalidParameter,
        13 => NtStatus::InvalidHandle,
        14 => NtStatus::NoMoreFiles,
        15 => NtStatus::InvalidDeviceRequest,
        16 => NtStatus::FileLockConflict,
        17 => NtStatus::NetworkUnreachable,
        _ => return None,
    })
}

fn encode_set_info(s: SetInfoKind) -> u8 {
    match s {
        SetInfoKind::EndOfFile => 0,
        SetInfoKind::Disposition => 1,
        SetInfoKind::Rename => 2,
        SetInfoKind::Basic => 3,
        SetInfoKind::Allocation => 4,
    }
}

fn decode_set_info(b: u8) -> Option<SetInfoKind> {
    Some(match b {
        0 => SetInfoKind::EndOfFile,
        1 => SetInfoKind::Disposition,
        2 => SetInfoKind::Rename,
        3 => SetInfoKind::Basic,
        4 => SetInfoKind::Allocation,
        _ => return None,
    })
}

fn encode_access(a: AccessMode) -> u8 {
    match a {
        AccessMode::Read => 0,
        AccessMode::Write => 1,
        AccessMode::ReadWrite => 2,
        AccessMode::Control => 3,
        AccessMode::Delete => 4,
    }
}

fn decode_access(b: u8) -> Option<AccessMode> {
    Some(match b {
        0 => AccessMode::Read,
        1 => AccessMode::Write,
        2 => AccessMode::ReadWrite,
        3 => AccessMode::Control,
        4 => AccessMode::Delete,
        _ => return None,
    })
}

fn encode_disposition(d: Disposition) -> u8 {
    match d {
        Disposition::Open => 0,
        Disposition::Create => 1,
        Disposition::OpenIf => 2,
        Disposition::Overwrite => 3,
        Disposition::OverwriteIf => 4,
        Disposition::Supersede => 5,
    }
}

fn decode_disposition(b: u8) -> Option<Disposition> {
    Some(match b {
        0 => Disposition::Open,
        1 => Disposition::Create,
        2 => Disposition::OpenIf,
        3 => Disposition::Overwrite,
        4 => Disposition::OverwriteIf,
        5 => Disposition::Supersede,
        _ => return None,
    })
}

fn encode_options(o: CreateOptions) -> u8 {
    let mut b = 0;
    if o.sequential_only {
        b |= 1 << 0;
    }
    if o.write_through {
        b |= 1 << 1;
    }
    if o.no_intermediate_buffering {
        b |= 1 << 2;
    }
    if o.delete_on_close {
        b |= 1 << 3;
    }
    if o.temporary {
        b |= 1 << 4;
    }
    if o.directory {
        b |= 1 << 5;
    }
    b
}

fn decode_options(b: u8) -> CreateOptions {
    CreateOptions {
        sequential_only: b & (1 << 0) != 0,
        write_through: b & (1 << 1) != 0,
        no_intermediate_buffering: b & (1 << 2) != 0,
        delete_on_close: b & (1 << 3) != 0,
        temporary: b & (1 << 4) != 0,
        directory: b & (1 << 5) != 0,
        ..CreateOptions::default()
    }
}

fn encode_share(o: CreateOptions) -> u8 {
    (o.share.read as u8) | ((o.share.write as u8) << 1) | ((o.share.delete as u8) << 2)
}

fn decode_share(b: u8) -> nt_io::ShareMode {
    if b == 0xff {
        return nt_io::ShareMode::all();
    }
    nt_io::ShareMode {
        read: b & 1 != 0,
        write: b & 2 != 0,
        delete: b & 4 != 0,
    }
}

/// The auxiliary record mapping a new file object to a name (§3.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NameRecord {
    /// The file object.
    pub file_object: u64,
    /// Volume index.
    pub volume: u32,
    /// Opening process.
    pub process: u32,
    /// The path (lower-cased, backslash separated).
    pub path: String,
    /// When the object was created.
    pub at_ticks: u64,
}

impl NameRecord {
    /// The lower-cased extension of the path, if any — the study stores
    /// names "in a short form as we are mainly interested in the file
    /// type".
    pub fn extension(&self) -> Option<&str> {
        let name = self.path.rsplit('\\').next()?;
        let dot = name.rfind('.')?;
        if dot == 0 || dot + 1 == name.len() {
            None
        } else {
            Some(&name[dot + 1..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use nt_io::{FastIoKind, MajorFunction};

    fn sample() -> TraceRecord {
        TraceRecord {
            code: EventKind::Irp(MajorFunction::Create).code(),
            flags: FLAG_LOCAL,
            status: NtStatus::ObjectNameCollision,
            set_info: None,
            access: Some(AccessMode::ReadWrite),
            disposition: Some(Disposition::Create),
            options: Some(CreateOptions {
                temporary: true,
                delete_on_close: true,
                ..CreateOptions::default()
            }),
            file_object: 42,
            fcb: u64::MAX,
            process: 7,
            volume: 0,
            offset: 0,
            length: 0,
            transferred: 0,
            file_size: 123,
            byte_offset: 0,
            start_ticks: 1_000_000,
            end_ticks: 1_000_300,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let rec = sample();
        let mut buf = BytesMut::new();
        rec.encode(&mut buf);
        assert_eq!(buf.len(), RECORD_SIZE);
        let back = TraceRecord::decode(&mut buf.freeze()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn roundtrip_all_event_codes() {
        for kind in EventKind::all() {
            let mut rec = sample();
            rec.code = kind.code();
            rec.access = None;
            rec.disposition = None;
            rec.options = None;
            let mut buf = BytesMut::new();
            rec.encode(&mut buf);
            let back = TraceRecord::decode(&mut buf.freeze()).unwrap();
            assert_eq!(back.kind(), kind);
        }
    }

    #[test]
    fn short_buffer_decodes_none() {
        let mut buf = BytesMut::new();
        sample().encode(&mut buf);
        let mut short = buf.freeze().slice(0..RECORD_SIZE - 1);
        assert!(TraceRecord::decode(&mut short).is_none());
    }

    #[test]
    fn flags_accessors() {
        let mut rec = sample();
        rec.flags = FLAG_PAGING | FLAG_READAHEAD;
        assert!(rec.is_paging());
        assert!(rec.is_readahead());
        assert!(!rec.is_local());
        assert_eq!(rec.latency_ticks(), 300);
    }

    #[test]
    fn fastio_codes_roundtrip() {
        let kind = EventKind::FastIo(FastIoKind::Read);
        let mut rec = sample();
        rec.code = kind.code();
        rec.access = None;
        rec.disposition = None;
        rec.options = None;
        let mut buf = BytesMut::new();
        rec.encode(&mut buf);
        assert_eq!(TraceRecord::decode(&mut buf.freeze()).unwrap().kind(), kind);
    }

    #[test]
    fn name_record_extension() {
        let nr = NameRecord {
            file_object: 1,
            volume: 0,
            process: 0,
            path: r"\winnt\profiles\alice\index.dat".into(),
            at_ticks: 0,
        };
        assert_eq!(nr.extension(), Some("dat"));
        let none = NameRecord {
            path: r"\noext".into(),
            ..nr
        };
        assert_eq!(none.extension(), None);
    }
}
