//! A small work-stealing thread pool for fleet-scale fan-out.
//!
//! The sharded study runs thousands of machine simulations whose costs
//! vary by usage category — a fixed round-robin split (the old
//! `partition` scheme) leaves workers idle behind a shard of Scientific
//! machines. This pool seeds each worker with a contiguous slice of the
//! index space and lets idle workers steal from the back of loaded
//! siblings, so the fleet finishes at the speed of the aggregate, not of
//! the unluckiest worker.
//!
//! The pool is deliberately tiny: coarse tasks (a whole machine
//! simulation each) make a `Mutex<VecDeque>` per worker plenty — the
//! lock is touched twice per task, which is noise against milliseconds
//! of simulation. No external deque crate is needed or used.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// First panic observed by the pool: the task index and its message.
#[derive(Debug, Clone)]
pub struct TaskPanic {
    /// Index of the task that panicked.
    pub index: usize,
    /// Rendered panic payload.
    pub message: String,
}

/// Runs `tasks` indexed jobs on `workers` threads with work stealing and
/// returns the results in index order.
///
/// Each worker owns a deque seeded with a contiguous slice of the index
/// space; it pops from the front of its own deque and, when idle, steals
/// from the back of the first non-empty sibling. Tasks are only ever
/// removed, never re-queued, so every index runs exactly once and lands
/// in its own slot regardless of interleaving — result *determinism* is
/// then purely a property of `f`.
///
/// A panicking job is caught: the worker moves on, the slot stays
/// `None`, and the first panic (by observation order) is returned so the
/// caller can surface it as a fault instead of aborting the fleet.
pub fn run_indexed<T, F>(tasks: usize, workers: usize, f: F) -> (Vec<Option<T>>, Option<TaskPanic>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(tasks.max(1));
    let deques: Vec<Mutex<VecDeque<usize>>> = split_contiguous(tasks, workers)
        .into_iter()
        .map(Mutex::new)
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let first_panic: Mutex<Option<TaskPanic>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let first_panic = &first_panic;
            let f = &f;
            scope.spawn(move || {
                while let Some(i) = pop_or_steal(deques, w) {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                        Ok(v) => *lock(&slots[i]) = Some(v),
                        Err(payload) => {
                            let mut slot = lock(first_panic);
                            if slot.is_none() {
                                *slot = Some(TaskPanic {
                                    index: i,
                                    message: panic_text(payload.as_ref()),
                                });
                            }
                        }
                    }
                }
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    let panic = first_panic
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    (results, panic)
}

/// Contiguous, near-even split of `0..tasks` into `workers` deques (the
/// first `tasks % workers` get one extra).
fn split_contiguous(tasks: usize, workers: usize) -> Vec<VecDeque<usize>> {
    let base = tasks / workers;
    let extra = tasks % workers;
    let mut next = 0usize;
    (0..workers)
        .map(|w| {
            let len = base + usize::from(w < extra);
            let deque: VecDeque<usize> = (next..next + len).collect();
            next += len;
            deque
        })
        .collect()
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Own front first, then one steal pass over the siblings. Safe to give
/// up after one pass: tasks are never re-queued, so "every deque empty"
/// is a stable condition.
fn pop_or_steal(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = lock(&deques[w]).pop_front() {
        return Some(i);
    }
    for k in 1..deques.len() {
        if let Some(i) = lock(&deques[(w + k) % deques.len()]).pop_back() {
            return Some(i);
        }
    }
    None
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_index_runs_exactly_once_in_order() {
        let calls = AtomicUsize::new(0);
        let (out, panic) = run_indexed(257, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i * 3
        });
        assert!(panic.is_none());
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, Some(i * 3));
        }
    }

    #[test]
    fn skewed_costs_still_complete() {
        // Front-loaded work: worker 0's whole slice is expensive, the
        // rest are no-ops — stealing is what keeps this fast, but the
        // assertion is only about completeness.
        let (out, panic) = run_indexed(64, 4, |i| {
            if i < 16 {
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_add(k ^ i as u64);
                }
                acc as usize
            } else {
                i
            }
        });
        assert!(panic.is_none());
        assert!(out.iter().all(Option::is_some));
    }

    #[test]
    fn a_panicking_task_is_reported_not_fatal() {
        let (out, panic) = run_indexed(20, 3, |i| {
            assert!(i != 7, "machine 7 exploded");
            i
        });
        let p = panic.expect("panic surfaced");
        assert_eq!(p.index, 7);
        assert!(p.message.contains("machine 7 exploded"), "{}", p.message);
        assert_eq!(out[7], None);
        assert_eq!(out.iter().filter(|v| v.is_some()).count(), 19);
    }

    #[test]
    fn degenerate_shapes_work() {
        let (out, panic) = run_indexed(0, 4, |i| i);
        assert!(out.is_empty() && panic.is_none());
        let (out, _) = run_indexed(3, 64, |i| i + 1);
        assert_eq!(out, vec![Some(1), Some(2), Some(3)]);
        let (out, _) = run_indexed(5, 1, |i| i);
        assert_eq!(out.len(), 5);
    }
}
