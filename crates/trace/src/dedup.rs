//! Filtering cache-manager-induced paging duplicates (§3.3).
//!
//! "When tracing file systems one can ignore a large portion of the paging
//! requests, as they represent duplicate actions: a request arrives from a
//! process and triggers a page fault in the file cache, which triggers a
//! paging request from the VM manager. However, if we do ignore paging
//! requests we would miss all paging that is related to executable and
//! dynamic loadable library loading, and other use of memory mapped files.
//! We decided to record all paging requests and filter out the cache
//! manager induced duplicates during the analysis process."
//!
//! The filter keeps every non-paging record, and keeps a paging record
//! only when it is *not* explained by cached application I/O on the same
//! FCB: a paging read is a duplicate when it was issued inside the service
//! window of a non-paging read on that FCB (demand fill or read-ahead),
//! and a paging write is a duplicate when a non-paging write preceded it
//! on that FCB (lazy-writer and flush output).

use std::collections::{HashMap, HashSet};

use crate::record::TraceRecord;

/// Returns the records that survive duplicate filtering, preserving order.
pub fn filter_paging_duplicates(records: &[TraceRecord]) -> Vec<TraceRecord> {
    // Pass 1: index non-paging data activity per FCB.
    let mut read_windows: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    let mut wrote_before: HashMap<u64, u64> = HashMap::new();
    let mut fcbs_with_nonpaging: HashSet<u64> = HashSet::new();
    for rec in records {
        if rec.is_paging() {
            continue;
        }
        if rec.kind().is_read() {
            // Read-ahead fires from inside the read's window but its disk
            // completion may land later; extend the window generously.
            read_windows
                .entry(rec.fcb)
                .or_default()
                .push((rec.start_ticks, rec.end_ticks.max(rec.start_ticks) + 1));
            fcbs_with_nonpaging.insert(rec.fcb);
        } else if rec.kind().is_write() {
            let e = wrote_before.entry(rec.fcb).or_insert(u64::MAX);
            *e = (*e).min(rec.start_ticks);
            fcbs_with_nonpaging.insert(rec.fcb);
        }
    }

    records
        .iter()
        .filter(|rec| {
            if !rec.is_paging() {
                return true;
            }
            if rec.kind().is_read() {
                // Read-ahead is always cache-induced.
                if rec.is_readahead() {
                    return false;
                }
                if let Some(windows) = read_windows.get(&rec.fcb) {
                    if windows
                        .iter()
                        .any(|&(s, e)| rec.start_ticks >= s && rec.start_ticks < e)
                    {
                        return false;
                    }
                }
                true
            } else if rec.kind().is_write() {
                match wrote_before.get(&rec.fcb) {
                    Some(&first_write) => rec.start_ticks < first_write,
                    None => true,
                }
            } else {
                true
            }
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_io::{EventKind, FastIoKind, MajorFunction, NtStatus};

    fn rec(
        kind: EventKind,
        fcb: u64,
        paging: bool,
        readahead: bool,
        start: u64,
        end: u64,
    ) -> TraceRecord {
        TraceRecord {
            code: kind.code(),
            flags: (paging as u8) | ((readahead as u8) << 1),
            status: NtStatus::Success,
            set_info: None,
            access: None,
            disposition: None,
            options: None,
            file_object: 1,
            fcb,
            process: 1,
            volume: 0,
            offset: 0,
            length: 4096,
            transferred: 4096,
            file_size: 1 << 20,
            byte_offset: 0,
            start_ticks: start,
            end_ticks: end,
        }
    }

    const IRP_READ: EventKind = EventKind::Irp(MajorFunction::Read);
    const IRP_WRITE: EventKind = EventKind::Irp(MajorFunction::Write);
    const FAST_READ: EventKind = EventKind::FastIo(FastIoKind::Read);

    #[test]
    fn demand_fill_inside_read_window_is_dropped() {
        let records = vec![
            rec(IRP_READ, 7, false, false, 1_000, 90_000),
            rec(IRP_READ, 7, true, false, 1_000, 80_000), // demand fill
        ];
        let kept = filter_paging_duplicates(&records);
        assert_eq!(kept.len(), 1);
        assert!(!kept[0].is_paging());
    }

    #[test]
    fn readahead_always_dropped() {
        let records = vec![
            rec(FAST_READ, 7, false, false, 1_000, 2_000),
            rec(IRP_READ, 7, true, true, 1_500, 99_000),
        ];
        let kept = filter_paging_duplicates(&records);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn image_load_paging_reads_survive() {
        // No non-paging activity on this FCB: the exe/dll load case.
        let records = vec![
            rec(IRP_READ, 9, true, false, 5_000, 95_000),
            rec(IRP_READ, 9, true, false, 6_000, 96_000),
        ];
        let kept = filter_paging_duplicates(&records);
        assert_eq!(kept.len(), 2, "§3.3: mapped-file paging must be kept");
    }

    #[test]
    fn lazy_writes_after_cached_writes_are_dropped() {
        let records = vec![
            rec(IRP_WRITE, 4, false, false, 1_000, 1_400),
            rec(IRP_WRITE, 4, true, false, 11_000_000, 11_080_000), // lazy
        ];
        let kept = filter_paging_duplicates(&records);
        assert_eq!(kept.len(), 1);
        assert!(!kept[0].is_paging());
    }

    #[test]
    fn mapped_writes_with_no_cached_write_survive() {
        let records = vec![rec(IRP_WRITE, 5, true, false, 1_000, 2_000)];
        let kept = filter_paging_duplicates(&records);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn paging_on_other_fcbs_untouched() {
        let records = vec![
            rec(IRP_READ, 1, false, false, 1_000, 50_000),
            rec(IRP_READ, 2, true, false, 2_000, 60_000),
        ];
        let kept = filter_paging_duplicates(&records);
        assert_eq!(kept.len(), 2, "window on fcb 1 must not hide fcb 2");
    }

    #[test]
    fn order_preserved() {
        let records = vec![
            rec(IRP_READ, 1, false, false, 1_000, 2_000),
            rec(IRP_READ, 2, true, false, 3_000, 4_000),
            rec(FAST_READ, 1, false, false, 5_000, 6_000),
        ];
        let kept = filter_paging_duplicates(&records);
        let starts: Vec<u64> = kept.iter().map(|r| r.start_ticks).collect();
        assert_eq!(starts, vec![1_000, 3_000, 5_000]);
    }
}
