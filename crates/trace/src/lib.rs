//! The tracing apparatus of the study (§3 of the paper).
//!
//! Two kinds of data are collected, exactly as in the original setup:
//!
//! 1. **Real-time request traces** — a filter driver ([`TraceFilter`])
//!    attached to every local file system and to the network redirector
//!    converts each IRP/FastIO call into a fixed-size [`TraceRecord`] with
//!    two 100 ns timestamps, stores it in a triple-buffered record store
//!    ([`TripleBuffer`], 3 × 3,000 records), and ships full buffers to the
//!    collection server ([`CollectionServer`]) through the per-machine
//!    [`TraceAgent`].
//! 2. **Daily file-system snapshots** (§3.1) — a recursive walk of every
//!    traced volume producing [`WalkRecord`]s from which the tree can be
//!    recovered, taken at 4 a.m. by the agent.
//!
//! §3.3's accounting problem is handled the same way the paper did it:
//! *all* paging requests are recorded, and the cache-manager-induced
//! duplicates are filtered out during analysis ([`dedup`]).

pub mod agent;
pub mod buffer;
pub mod collector;
pub mod dedup;
pub mod fault;
pub mod pool;
pub mod record;
pub mod snapshot;
pub mod steal;

pub use agent::{AgentState, TraceAgent};
pub use buffer::{TripleBuffer, BUFFER_CAPACITY};
pub use collector::{CollectionServer, MachineId, RecordBatch};
pub use dedup::filter_paging_duplicates;
pub use fault::{any_contains, LossLedger, TickWindow};
pub use pool::{
    BatchMeta, CollectionFault, CollectorHandle, CollectorPool, RecordSink, ShipmentConsumer,
    StreamingPool, StreamingTotals,
};
pub use record::{NameRecord, TraceRecord, RECORD_SIZE};
pub use snapshot::{Snapshot, SnapshotDiff, SnapshotWalker, WalkRecord};
pub use steal::{run_indexed, TaskPanic};

/// The study's filter driver: an [`nt_io::IoObserver`] that records
/// everything into the agent's buffers.
pub use agent::TraceFilter;
