//! Daily file-system snapshots (§3.1) and the change analysis behind §5.
//!
//! "Each morning at 4 o'clock a thread is started by the trace agent
//! server to take a snapshot of the local file systems. It builds this
//! snapshot by recursively traversing the file system trees, producing a
//! sequence of records containing the attributes of each file and
//! directory in such a way that the original tree can be recovered from
//! the sequence."

use nt_fs::{Namespace, NodeKind, Volume, VolumeId};
use nt_sim::SimTime;

/// One record of the recursive walk.
#[derive(Clone, Debug, PartialEq)]
pub struct WalkRecord {
    /// Depth in the tree (root = 0); with pre-order sequencing this is
    /// enough to recover the tree.
    pub depth: usize,
    /// Full path (kept for the diff analysis; the study stored short
    /// names, which [`WalkRecord::extension`] reproduces).
    pub path: String,
    /// True for directories.
    pub is_dir: bool,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Creation time, when the file system maintains it.
    pub creation: Option<SimTime>,
    /// Last access time, when maintained.
    pub last_access: Option<SimTime>,
    /// Last write time.
    pub last_write: SimTime,
    /// Directories: number of file children.
    pub n_files: u32,
    /// Directories: number of subdirectory children.
    pub n_subdirs: u32,
}

impl WalkRecord {
    /// The lower-cased extension, the study's "short form" of the name.
    pub fn extension(&self) -> Option<&str> {
        if self.is_dir {
            return None;
        }
        let name = self.path.rsplit('\\').next()?;
        let dot = name.rfind('.')?;
        if dot == 0 || dot + 1 == name.len() {
            None
        } else {
            Some(&name[dot + 1..])
        }
    }
}

/// A snapshot of one volume at a point in time.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The volume snapshotted.
    pub volume: VolumeId,
    /// When it was taken.
    pub taken_at: SimTime,
    /// Pre-order walk records.
    pub records: Vec<WalkRecord>,
}

impl Snapshot {
    /// Number of file records.
    pub fn file_count(&self) -> usize {
        self.records.iter().filter(|r| !r.is_dir).count()
    }

    /// Number of directory records (excluding the root).
    pub fn dir_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.is_dir && r.depth > 0)
            .count()
    }

    /// Total file bytes.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.size).sum()
    }

    /// Files under a path prefix (e.g. the `\winnt\profiles` tree of §5).
    pub fn files_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a WalkRecord> {
        self.records
            .iter()
            .filter(move |r| !r.is_dir && r.path.starts_with(prefix))
    }

    /// Fraction of files whose last-change is newer than their last-access
    /// — the §5 timestamp-inconsistency measure (2–4 % in the study).
    pub fn inconsistent_time_fraction(&self) -> f64 {
        let files: Vec<_> = self
            .records
            .iter()
            .filter(|r| !r.is_dir && r.last_access.is_some())
            .collect();
        if files.is_empty() {
            return 0.0;
        }
        let bad = files
            .iter()
            .filter(|r| r.last_access.map(|a| r.last_write > a).unwrap_or(false))
            .count();
        bad as f64 / files.len() as f64
    }
}

/// The walker: produces [`Snapshot`]s from live volumes.
pub struct SnapshotWalker;

impl SnapshotWalker {
    /// Walks one volume.
    pub fn walk_volume(volume_id: VolumeId, volume: &Volume, now: SimTime) -> Snapshot {
        let mut records = Vec::new();
        let mut path_stack: Vec<String> = Vec::new();
        volume
            .walk(volume.root(), &mut |depth, _, node| {
                path_stack.truncate(depth.saturating_sub(1));
                if depth > 0 {
                    path_stack.push(node.name.clone());
                }
                let path = if path_stack.is_empty() {
                    "\\".to_string()
                } else {
                    format!("\\{}", path_stack.join("\\"))
                };
                match &node.kind {
                    NodeKind::File(meta) => records.push(WalkRecord {
                        depth,
                        path,
                        is_dir: false,
                        size: meta.size,
                        creation: node.times.creation,
                        last_access: node.times.last_access,
                        last_write: node.times.last_write,
                        n_files: 0,
                        n_subdirs: 0,
                    }),
                    NodeKind::Directory(_) => {
                        // Child counts need a second look at the node.
                        records.push(WalkRecord {
                            depth,
                            path,
                            is_dir: true,
                            size: 0,
                            creation: node.times.creation,
                            last_access: node.times.last_access,
                            last_write: node.times.last_write,
                            n_files: 0,
                            n_subdirs: 0,
                        });
                    }
                }
            })
            .expect("walking a live volume");
        // Fill directory child counts from the records themselves.
        let mut i = 0;
        while i < records.len() {
            if records[i].is_dir {
                let depth = records[i].depth;
                let mut files = 0;
                let mut dirs = 0;
                for r in records.iter().skip(i + 1) {
                    if r.depth <= depth {
                        break;
                    }
                    if r.depth == depth + 1 {
                        if r.is_dir {
                            dirs += 1;
                        } else {
                            files += 1;
                        }
                    }
                }
                records[i].n_files = files;
                records[i].n_subdirs = dirs;
            }
            i += 1;
        }
        Snapshot {
            volume: volume_id,
            taken_at: now,
            records,
        }
    }

    /// Walks every volume of a namespace.
    pub fn walk_namespace(ns: &Namespace, now: SimTime) -> Vec<Snapshot> {
        ns.volume_ids()
            .map(|id| Self::walk_volume(id, ns.volume(id).expect("listed volume"), now))
            .collect()
    }
}

/// The difference between two snapshots of the same volume — §5's daily
/// change analysis.
#[derive(Clone, Debug, Default)]
pub struct SnapshotDiff {
    /// Paths present only in the newer snapshot.
    pub added: Vec<String>,
    /// Paths present only in the older snapshot.
    pub removed: Vec<String>,
    /// Paths whose size or last-write changed.
    pub changed: Vec<String>,
}

impl SnapshotDiff {
    /// Computes the file-level diff (directories excluded).
    pub fn between(older: &Snapshot, newer: &Snapshot) -> SnapshotDiff {
        use std::collections::HashMap;
        let old: HashMap<&str, &WalkRecord> = older
            .records
            .iter()
            .filter(|r| !r.is_dir)
            .map(|r| (r.path.as_str(), r))
            .collect();
        let new: HashMap<&str, &WalkRecord> = newer
            .records
            .iter()
            .filter(|r| !r.is_dir)
            .map(|r| (r.path.as_str(), r))
            .collect();
        let mut diff = SnapshotDiff::default();
        for (path, rec) in &new {
            match old.get(path) {
                None => diff.added.push((*path).to_string()),
                Some(o) => {
                    if o.size != rec.size || o.last_write != rec.last_write {
                        diff.changed.push((*path).to_string());
                    }
                }
            }
        }
        for path in old.keys() {
            if !new.contains_key(path) {
                diff.removed.push((*path).to_string());
            }
        }
        diff.added.sort();
        diff.removed.sort();
        diff.changed.sort();
        diff
    }

    /// Total files touched (added + changed).
    pub fn churn(&self) -> usize {
        self.added.len() + self.changed.len()
    }

    /// Fraction of the churn under a path prefix (§5: up to 93 % of daily
    /// changes sit in the WWW cache inside the profile).
    pub fn churn_fraction_under(&self, prefix: &str) -> f64 {
        let total = self.churn();
        if total == 0 {
            return 0.0;
        }
        let under = self
            .added
            .iter()
            .chain(self.changed.iter())
            .filter(|p| p.starts_with(prefix))
            .count();
        under as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_fs::{Volume, VolumeConfig};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn build_volume() -> Volume {
        let mut v = Volume::new(VolumeConfig::local_ntfs(1 << 30));
        let root = v.root();
        let winnt = v.mkdir(root, "winnt", t(1)).unwrap();
        let profiles = v.mkdir(winnt, "profiles", t(1)).unwrap();
        let alice = v.mkdir(profiles, "alice", t(1)).unwrap();
        let f1 = v.create_file(alice, "ntuser.dat", t(1)).unwrap();
        v.set_file_size(f1, 24_576, t(1)).unwrap();
        let f2 = v.create_file(root, "boot.ini", t(1)).unwrap();
        v.set_file_size(f2, 512, t(1)).unwrap();
        v
    }

    #[test]
    fn walk_is_preorder_and_recoverable() {
        let v = build_volume();
        let snap = SnapshotWalker::walk_volume(VolumeId(0), &v, t(2));
        let paths: Vec<&str> = snap.records.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "\\",
                r"\boot.ini",
                r"\winnt",
                r"\winnt\profiles",
                r"\winnt\profiles\alice",
                r"\winnt\profiles\alice\ntuser.dat",
            ]
        );
        // Depth sequence allows tree recovery: each record's depth is at
        // most one more than its predecessor's.
        for w in snap.records.windows(2) {
            assert!(w[1].depth <= w[0].depth + 1);
        }
        assert_eq!(snap.file_count(), 2);
        assert_eq!(snap.dir_count(), 3);
        assert_eq!(snap.total_bytes(), 25_088);
    }

    #[test]
    fn directory_child_counts() {
        let v = build_volume();
        let snap = SnapshotWalker::walk_volume(VolumeId(0), &v, t(2));
        let root = &snap.records[0];
        assert_eq!(root.n_files, 1, "boot.ini");
        assert_eq!(root.n_subdirs, 1, "winnt");
        let alice = snap
            .records
            .iter()
            .find(|r| r.path == r"\winnt\profiles\alice")
            .unwrap();
        assert_eq!(alice.n_files, 1);
        assert_eq!(alice.n_subdirs, 0);
    }

    #[test]
    fn files_under_prefix() {
        let v = build_volume();
        let snap = SnapshotWalker::walk_volume(VolumeId(0), &v, t(2));
        assert_eq!(snap.files_under(r"\winnt\profiles").count(), 1);
        assert_eq!(snap.files_under(r"\nothing").count(), 0);
    }

    #[test]
    fn diff_detects_adds_changes_removes() {
        let mut v = build_volume();
        let before = SnapshotWalker::walk_volume(VolumeId(0), &v, t(2));
        // Change ntuser.dat, add cookie.txt, remove boot.ini.
        let alice = v
            .lookup(&nt_fs::NtPath::parse(r"\winnt\profiles\alice"))
            .unwrap();
        let nt = v
            .lookup(&nt_fs::NtPath::parse(r"\winnt\profiles\alice\ntuser.dat"))
            .unwrap();
        v.set_file_size(nt, 30_000, t(100)).unwrap();
        v.create_file(alice, "cookie.txt", t(100)).unwrap();
        let boot = v.lookup(&nt_fs::NtPath::parse(r"\boot.ini")).unwrap();
        v.remove(boot, t(100)).unwrap();
        let after = SnapshotWalker::walk_volume(VolumeId(0), &v, t(200));
        let diff = SnapshotDiff::between(&before, &after);
        assert_eq!(diff.added, vec![r"\winnt\profiles\alice\cookie.txt"]);
        assert_eq!(diff.changed, vec![r"\winnt\profiles\alice\ntuser.dat"]);
        assert_eq!(diff.removed, vec![r"\boot.ini"]);
        assert_eq!(diff.churn(), 2);
        assert!((diff.churn_fraction_under(r"\winnt\profiles") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extension_short_form() {
        let v = build_volume();
        let snap = SnapshotWalker::walk_volume(VolumeId(0), &v, t(2));
        let exts: Vec<Option<&str>> = snap
            .records
            .iter()
            .filter(|r| !r.is_dir)
            .map(|r| r.extension())
            .collect();
        assert_eq!(exts, vec![Some("ini"), Some("dat")]);
    }

    #[test]
    fn namespace_walk_covers_all_volumes() {
        let mut ns = Namespace::new();
        ns.mount_local('C', VolumeConfig::local_ntfs(1 << 20));
        ns.mount_share("srv", "home", VolumeConfig::local_ntfs(1 << 20));
        let snaps = SnapshotWalker::walk_namespace(&ns, t(1));
        assert_eq!(snaps.len(), 2);
    }
}
