//! Fault-injection primitives shared across the collection pipeline.
//!
//! The paper's agents were not perfectly reliable: §3 notes that "if a
//! trace agent loses contact with the collection servers it will suspend
//! the local operation until the connection is re-established", and §3.2's
//! triple buffering exists precisely because buffers can fill faster than
//! they drain. This module gives the simulated pipeline the vocabulary to
//! schedule such failures deterministically: half-open time windows in
//! 100 ns ticks, and a per-machine [`LossLedger`] that accounts for every
//! record an agent saw — delivered, dropped to overflow, or lost while
//! suspended.

/// A half-open window of virtual time, `[start_ticks, end_ticks)`, in the
/// 100 ns units of the trace records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TickWindow {
    /// First tick inside the window.
    pub start_ticks: u64,
    /// First tick after the window.
    pub end_ticks: u64,
}

impl TickWindow {
    /// A window covering `[start, end)`; an inverted pair collapses to
    /// an empty window at `start`.
    pub fn new(start_ticks: u64, end_ticks: u64) -> Self {
        TickWindow {
            start_ticks,
            end_ticks: end_ticks.max(start_ticks),
        }
    }

    /// True when `t` falls inside the window.
    pub fn contains(&self, t: u64) -> bool {
        self.start_ticks <= t && t < self.end_ticks
    }

    /// True when the window intersects the span `[lo, hi]`.
    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        self.start_ticks <= hi && lo < self.end_ticks
    }

    /// Window length in ticks.
    pub fn duration_ticks(&self) -> u64 {
        self.end_ticks - self.start_ticks
    }
}

/// True when any window in the slice contains `t`.
pub fn any_contains(windows: &[TickWindow], t: u64) -> bool {
    windows.iter().any(|w| w.contains(t))
}

/// End-of-run accounting of one agent's losses. Every record the filter
/// driver saw lands in exactly one bucket, so the totals must reconcile:
/// `delivered + dropped_overflow == recorded`, and records observed while
/// the agent was suspended appear only in `dropped_suspended` (they were
/// never recorded at all, matching the paper's agents which stop rather
/// than spill to disk).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LossLedger {
    /// Records the filter tried to record while connected: those accepted
    /// into the triple buffer plus those the full buffers turned away.
    pub recorded: u64,
    /// Records that reached a collection server.
    pub delivered: u64,
    /// Records dropped because every buffer was full.
    pub dropped_overflow: u64,
    /// Requests observed while the agent was suspended (never recorded).
    pub dropped_suspended: u64,
    /// Batches delivered to a collection server.
    pub batches_shipped: u64,
    /// Delivery attempts that found no reachable server and were retried.
    pub batches_retried: u64,
    /// Total virtual time the agent spent suspended, in ticks.
    pub downtime_ticks: u64,
}

impl LossLedger {
    /// The reconciliation invariant: after the final flush nothing may be
    /// in flight, so delivered plus overflow-dropped covers every record
    /// the buffers accepted.
    pub fn reconciles(&self) -> bool {
        self.delivered + self.dropped_overflow == self.recorded
    }

    /// Records lost for any reason.
    pub fn lost(&self) -> u64 {
        self.dropped_overflow + self.dropped_suspended
    }

    /// Posts the trace agent's side of the conservation accounts.
    ///
    /// Every event the machine emitted (the I/O layer's `TRACE_EVENTS`
    /// debit) is credited here as recorded-or-dropped-while-suspended;
    /// every recorded record is then debited again and credited to its
    /// fate (delivered or overflow-dropped) — [`reconciles`] as a ledger
    /// account. Delivered records become the debit that the analysis
    /// sinks must account for.
    ///
    /// [`reconciles`]: LossLedger::reconciles
    pub fn post_conservation(&self, ledger: &mut nt_audit::Ledger) {
        use nt_audit::accounts::*;
        ledger.credit(TRACE_EVENTS, self.recorded + self.dropped_suspended);
        ledger.debit(TRACE_RECORDS, self.recorded);
        ledger.credit(TRACE_RECORDS, self.delivered + self.dropped_overflow);
        ledger.debit(ANALYSIS_RECORDS, self.delivered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_membership() {
        let w = TickWindow::new(100, 200);
        assert!(!w.contains(99));
        assert!(w.contains(100));
        assert!(w.contains(199));
        assert!(!w.contains(200));
        assert_eq!(w.duration_ticks(), 100);
    }

    #[test]
    fn window_overlap() {
        let w = TickWindow::new(100, 200);
        assert!(w.overlaps(150, 160));
        assert!(w.overlaps(50, 100));
        assert!(w.overlaps(199, 500));
        assert!(!w.overlaps(200, 500));
        assert!(!w.overlaps(0, 99));
    }

    #[test]
    fn inverted_window_is_empty() {
        let w = TickWindow::new(300, 200);
        assert_eq!(w.duration_ticks(), 0);
        assert!(!w.contains(300));
    }

    #[test]
    fn ledger_reconciliation() {
        let mut l = LossLedger {
            recorded: 100,
            delivered: 90,
            dropped_overflow: 10,
            dropped_suspended: 7,
            ..LossLedger::default()
        };
        assert!(l.reconciles());
        assert_eq!(l.lost(), 17);
        l.delivered = 89;
        assert!(!l.reconciles());
    }
}
