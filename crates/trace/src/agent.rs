//! The per-machine trace agent and its filter driver (§3).
//!
//! "On each system a trace agent is installed that provides an access
//! point for remote control of the tracing process. The trace agent is
//! responsible for taking the periodic snapshots and for directing the
//! stream of trace events towards the collection servers. … If a trace
//! agent loses contact with the collection servers it will suspend the
//! local operation until the connection is re-established."

use std::collections::VecDeque;

use nt_io::observer::FileObjectInfo;
use nt_io::{IoEvent, IoObserver};
use nt_obs::{FlightEvent, FlightRecorder, Phase, RecorderScope, ShipmentTracer, Telemetry};

use crate::buffer::TripleBuffer;
use crate::collector::MachineId;
use crate::fault::LossLedger;
use crate::pool::RecordSink;
use crate::record::{NameRecord, TraceRecord};

/// A full buffer on the delivery queue, carrying the simulated ticks the
/// shipment-trace spans are cut from: when its first record was captured
/// (the batch window opening) and when it was queued for shipment.
struct PendingBatch {
    seq: u64,
    open_ticks: u64,
    enqueue_ticks: u64,
    records: Vec<TraceRecord>,
}

/// Connection state of an agent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AgentState {
    /// Streaming to a collection server.
    Connected,
    /// Lost contact; local tracing is suspended and events are not
    /// recorded (the paper's agents stop rather than spill to disk).
    Suspended,
}

/// The filter driver: an [`IoObserver`] converting every request into a
/// [`TraceRecord`] in the triple-buffered store.
///
/// Full buffers move to a pending queue stamped with a per-machine
/// sequence number, so a delivery that fails (collection servers down)
/// simply leaves the batch queued for the next attempt, and batches that
/// fail over between servers still reassemble in agent order.
pub struct TraceFilter {
    machine: MachineId,
    buffer: TripleBuffer,
    names: Vec<NameRecord>,
    state: AgentState,
    /// Buffers filled and awaiting shipping (observable to tests).
    fills: u64,
    /// Full buffers taken out of the triple buffer, awaiting delivery.
    pending: VecDeque<PendingBatch>,
    /// Name records awaiting delivery.
    pending_names: VecDeque<(u64, NameRecord)>,
    next_batch_seq: u64,
    next_name_seq: u64,
    delivered: u64,
    dropped_suspended: u64,
    batches_shipped: u64,
    batches_retried: u64,
    downtime_ticks: u64,
    /// Tick at which the current suspension began, when suspended.
    suspended_at: Option<u64>,
    telemetry: Telemetry,
    /// Emits batch/ship hop spans on successful deliveries.
    tracer: ShipmentTracer,
    /// Receives this machine's pipeline events (suspensions, drops,
    /// refusals) for the post-mortem dump.
    recorder: FlightRecorder,
    /// Latest finite tick a batch was successfully delivered at.
    last_delivery_ticks: u64,
    /// Suspension drops already reported to the flight recorder.
    reported_suspended: u64,
    /// Overflow drops already reported to the flight recorder.
    reported_overflow: u64,
}

impl TraceFilter {
    /// A connected filter for one machine.
    pub fn new(machine: MachineId) -> Self {
        Self::with_capacity(machine, crate::buffer::BUFFER_CAPACITY)
    }

    /// A connected filter whose storage buffers hold `capacity` records
    /// (fault plans squeeze this below the paper's 3,000).
    pub fn with_capacity(machine: MachineId, capacity: usize) -> Self {
        TraceFilter {
            machine,
            buffer: TripleBuffer::with_capacity(capacity),
            names: Vec::new(),
            state: AgentState::Connected,
            fills: 0,
            pending: VecDeque::new(),
            pending_names: VecDeque::new(),
            next_batch_seq: 0,
            next_name_seq: 0,
            delivered: 0,
            dropped_suspended: 0,
            batches_shipped: 0,
            batches_retried: 0,
            downtime_ticks: 0,
            suspended_at: None,
            telemetry: Telemetry::off(),
            tracer: ShipmentTracer::off(),
            recorder: FlightRecorder::off(),
            last_delivery_ticks: 0,
            reported_suspended: 0,
            reported_overflow: 0,
        }
    }

    /// Attaches a telemetry handle; shipping spans inherit the machine's
    /// simulated clock from the enclosing dispatch span high-water mark.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Attaches the shipment tracer (batch/ship hop spans on delivery)
    /// and flight recorder (suspensions, drops, refusals into this
    /// machine's scope). Both default to off and cost nothing then.
    pub fn set_shipment_hooks(&mut self, tracer: ShipmentTracer, recorder: FlightRecorder) {
        self.tracer = tracer;
        self.recorder = recorder;
    }

    /// The machine this filter instruments.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Current connection state.
    pub fn state(&self) -> AgentState {
        self.state
    }

    /// Simulates losing / regaining the collection-server connection,
    /// without downtime accounting (tests and legacy callers).
    pub fn set_state(&mut self, state: AgentState) {
        self.state = state;
    }

    /// State change at a known virtual time; suspended spans accumulate
    /// into the ledger's `downtime_ticks`.
    pub fn transition(&mut self, state: AgentState, now_ticks: u64) {
        if state == self.state {
            return;
        }
        match state {
            AgentState::Suspended => {
                self.suspended_at = Some(now_ticks);
                self.recorder.record(
                    RecorderScope::Machine(self.machine.0),
                    FlightEvent::AgentSuspended { ticks: now_ticks },
                );
            }
            AgentState::Connected => {
                if let Some(since) = self.suspended_at.take() {
                    self.downtime_ticks += now_ticks.saturating_sub(since);
                }
                self.recorder.record(
                    RecorderScope::Machine(self.machine.0),
                    FlightEvent::AgentResumed {
                        ticks: now_ticks,
                        downtime_ticks: self.downtime_ticks,
                    },
                );
                // A reconnect is where suspension drops become visible;
                // report the delta while the window is fresh.
                self.report_drops(now_ticks);
            }
        }
        self.state = state;
    }

    /// Records accepted so far.
    pub fn recorded(&self) -> u64 {
        self.buffer.recorded()
    }

    /// True when the buffers ever overflowed (§3.2: never in the study).
    pub fn overflowed(&self) -> bool {
        self.buffer.overflowed()
    }

    /// Times a buffer filled.
    pub fn buffer_fills(&self) -> u64 {
        self.fills
    }

    /// Records sitting in taken-but-undelivered batches.
    pub fn pending_records(&self) -> usize {
        self.pending.iter().map(|b| b.records.len()).sum()
    }

    /// Taken-but-undelivered batches — the watchdogs' deterministic
    /// proxy for collector backlog (live channel depths are not a
    /// simulation quantity).
    pub fn pending_batches(&self) -> usize {
        self.pending.len()
    }

    /// Latest finite simulated tick a batch delivery succeeded at
    /// (0 when none has) — feeds the shard-stall watchdog.
    pub fn last_delivery_ticks(&self) -> u64 {
        self.last_delivery_ticks
    }

    /// Reports any record drops (overflow or suspension) that happened
    /// since the last report as one aggregated flight-recorder event
    /// carrying both deltas and cumulative totals.
    fn report_drops(&mut self, now_ticks: u64) {
        if !self.recorder.is_enabled() {
            return;
        }
        let total_overflow = self.buffer.dropped();
        let total_suspended = self.dropped_suspended;
        let overflow_delta = total_overflow - self.reported_overflow;
        let suspended_delta = total_suspended - self.reported_suspended;
        if overflow_delta == 0 && suspended_delta == 0 {
            return;
        }
        self.reported_overflow = total_overflow;
        self.reported_suspended = total_suspended;
        self.recorder.record(
            RecorderScope::Machine(self.machine.0),
            FlightEvent::RecordsDropped {
                ticks: now_ticks,
                suspended_delta,
                overflow_delta,
                total_suspended,
                total_overflow,
            },
        );
    }

    /// End-of-run loss accounting for this agent.
    pub fn ledger(&self) -> LossLedger {
        LossLedger {
            recorded: self.buffer.recorded() + self.buffer.dropped(),
            delivered: self.delivered,
            dropped_overflow: self.buffer.dropped(),
            dropped_suspended: self.dropped_suspended,
            batches_shipped: self.batches_shipped,
            batches_retried: self.batches_retried,
            downtime_ticks: self.downtime_ticks,
        }
    }

    /// Moves full buffers and queued names into the pending queue,
    /// stamping per-machine sequence numbers and the enqueue tick.
    fn enqueue_ready(&mut self, now_ticks: u64) {
        for batch in self.buffer.take_queued() {
            // The batch window opened when its first record was captured;
            // an (impossible) empty batch would open at enqueue time.
            let open_ticks = batch.first().map_or(now_ticks, |r| r.start_ticks);
            self.pending.push_back(PendingBatch {
                seq: self.next_batch_seq,
                open_ticks,
                enqueue_ticks: now_ticks,
                records: batch,
            });
            self.next_batch_seq += 1;
        }
        for name in self.names.drain(..) {
            self.pending_names.push_back((self.next_name_seq, name));
            self.next_name_seq += 1;
        }
    }

    /// Delivers pending batches front-to-back. Stops at the first refusal
    /// (no reachable server) and counts it as a retried attempt; the
    /// refused batch stays queued. Returns `true` when nothing is left.
    fn deliver_pending<S: RecordSink>(&mut self, sink: &mut S, now_ticks: u64) -> bool {
        while let Some(batch) = self.pending.front() {
            if !sink.ingest_at(self.machine, batch.seq, &batch.records, now_ticks) {
                self.batches_retried += 1;
                self.recorder.record(
                    RecorderScope::Machine(self.machine.0),
                    FlightEvent::ShipmentRefused {
                        ticks: now_ticks,
                        seq: batch.seq,
                        pending_records: self.pending_records() as u64,
                    },
                );
                return false;
            }
            self.delivered += batch.records.len() as u64;
            self.batches_shipped += 1;
            if let Some(batch) = self.pending.pop_front() {
                self.tracer.agent_delivery(
                    self.machine.0,
                    batch.seq,
                    batch.open_ticks,
                    batch.enqueue_ticks,
                    now_ticks,
                    batch.records.len() as u64,
                );
                if now_ticks != u64::MAX && !batch.records.is_empty() {
                    self.last_delivery_ticks = self.last_delivery_ticks.max(now_ticks);
                }
                // The sink copied the records; hand the storage back to
                // the triple buffer so the next fill reuses it.
                self.buffer.recycle(batch.records);
            }
        }
        while let Some((seq, name)) = self.pending_names.front() {
            if !sink.ingest_name_at(self.machine, *seq, name.clone(), now_ticks) {
                return false;
            }
            self.pending_names.pop_front();
        }
        true
    }

    /// Ships all queued full buffers and name records to the sink — a
    /// local [`crate::CollectionServer`] or a [`crate::CollectorHandle`]
    /// streaming to the pool.
    pub fn ship<S: RecordSink>(&mut self, sink: &mut S) {
        // No real outage window reaches u64::MAX, so delivery always goes
        // through — the pre-fault shipping path.
        self.ship_at(sink, u64::MAX);
    }

    /// Shipping attempt at a known virtual time. Returns `false` when a
    /// collector outage blocked delivery; the batches stay pending and the
    /// caller should retry later (with backoff).
    pub fn ship_at<S: RecordSink>(&mut self, sink: &mut S, now_ticks: u64) -> bool {
        // span_child, not span: `ship` passes u64::MAX for "no outage",
        // which must not poison the simulated high-water mark.
        let _span = self.telemetry.span_child(Phase::Trace, "trace.ship");
        self.enqueue_ready(now_ticks);
        self.report_drops(now_ticks);
        self.deliver_pending(sink, now_ticks)
    }

    /// Ships everything including the active partial buffer (period end).
    /// The final flush models the study's controlled shutdown: the
    /// collection servers are back up, so nothing is refused.
    pub fn final_flush<S: RecordSink>(&mut self, sink: &mut S) {
        let _span = self.telemetry.span_child(Phase::Trace, "trace.final_flush");
        self.deliver_pending(sink, u64::MAX);
        let rest = self.buffer.drain_all();
        let seq = self.next_batch_seq;
        self.next_batch_seq += 1;
        let open_ticks = rest.first().map_or(u64::MAX, |r| r.start_ticks);
        if sink.ingest_at(self.machine, seq, &rest, u64::MAX) {
            self.delivered += rest.len() as u64;
            self.batches_shipped += 1;
            self.tracer.agent_delivery(
                self.machine.0,
                seq,
                open_ticks,
                u64::MAX,
                u64::MAX,
                rest.len() as u64,
            );
        }
        for name in self.names.drain(..) {
            let seq = self.next_name_seq;
            self.next_name_seq += 1;
            let _ = sink.ingest_name_at(self.machine, seq, name, u64::MAX);
        }
        // The tail of the drop accounting: anything dropped since the
        // last shipment lands in the dump before the run closes.
        self.report_drops(u64::MAX);
    }
}

impl IoObserver for TraceFilter {
    fn file_object(&mut self, info: &FileObjectInfo) {
        if self.state == AgentState::Suspended {
            return;
        }
        self.names.push(NameRecord {
            file_object: info.id.0,
            volume: info.volume,
            process: info.process.0,
            path: info.path.clone(),
            at_ticks: info.at.ticks(),
        });
    }

    fn event(&mut self, event: &IoEvent) {
        if self.state == AgentState::Suspended {
            self.dropped_suspended += 1;
            return;
        }
        if self.buffer.push(TraceRecord::from_event(event)) {
            self.fills += 1;
        }
    }
}

impl TraceFilter {
    /// Records a whole batch in one call — the shipment path for callers
    /// that accumulate records outside the filter (replayers, importers)
    /// instead of one [`IoObserver::event`] per request.
    pub fn record_batch(&mut self, records: &[TraceRecord]) {
        if self.state == AgentState::Suspended {
            self.dropped_suspended += records.len() as u64;
            return;
        }
        self.fills += self.buffer.push_batch(records);
    }
}

/// The agent: filter plus shipping cadence bookkeeping. In the simulated
/// deployment the orchestrator calls [`TraceAgent::on_tick`] periodically
/// (the real agent shipped whenever a buffer filled, with the same
/// effect on the server's contents).
pub struct TraceAgent {
    /// The machine's filter driver.
    pub filter: TraceFilter,
}

impl TraceAgent {
    /// Creates an agent with a connected filter.
    pub fn new(machine: MachineId) -> Self {
        TraceAgent {
            filter: TraceFilter::new(machine),
        }
    }

    /// Periodic shipping opportunity: moves full buffers to the server.
    pub fn on_tick<S: RecordSink>(&mut self, sink: &mut S) {
        if self.filter.state() == AgentState::Connected {
            self.filter.ship(sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectionServer;
    use nt_io::FcbId;
    use nt_io::{EventKind, FileObjectId, MajorFunction, NtStatus, ProcessId};
    use nt_sim::SimTime;

    fn event(i: u64) -> IoEvent {
        IoEvent {
            kind: EventKind::Irp(MajorFunction::Read),
            file_object: FileObjectId(i),
            fcb: FcbId(0),
            process: ProcessId(1),
            volume: 0,
            local: true,
            paging_io: false,
            readahead: false,
            offset: 0,
            length: 512,
            transferred: 512,
            file_size: 4096,
            byte_offset: 0,
            status: NtStatus::Success,
            start: SimTime::from_ticks(i * 100),
            end: SimTime::from_ticks(i * 100 + 30),
            access: None,
            disposition: None,
            options: None,
            set_info: None,
            created: false,
        }
    }

    #[test]
    fn filter_records_and_ships() {
        let mut f = TraceFilter::new(MachineId(3));
        let mut srv = CollectionServer::new();
        for i in 0..5_000u64 {
            f.event(&event(i));
        }
        assert_eq!(f.recorded(), 5_000);
        assert_eq!(f.buffer_fills(), 1);
        f.ship(&mut srv);
        assert_eq!(srv.total_records(), 3_000, "one full buffer shipped");
        f.final_flush(&mut srv);
        assert_eq!(srv.total_records(), 5_000);
        let back = srv.records_for(MachineId(3));
        assert_eq!(back.len(), 5_000);
        assert_eq!(back[0].file_object, 0);
        assert_eq!(back[4_999].file_object, 4_999);
        let ledger = f.ledger();
        assert!(ledger.reconciles());
        assert_eq!(ledger.delivered, 5_000);
        assert_eq!(ledger.batches_shipped, 2);
    }

    #[test]
    fn suspended_agent_records_nothing() {
        let mut f = TraceFilter::new(MachineId(1));
        f.set_state(AgentState::Suspended);
        f.event(&event(1));
        assert_eq!(f.recorded(), 0);
        assert_eq!(f.ledger().dropped_suspended, 1);
        f.set_state(AgentState::Connected);
        f.event(&event(2));
        assert_eq!(f.recorded(), 1);
    }

    #[test]
    fn name_records_ship_with_buffers() {
        let mut f = TraceFilter::new(MachineId(1));
        let mut srv = CollectionServer::new();
        f.file_object(&FileObjectInfo {
            id: FileObjectId(77),
            volume: 0,
            path: r"\boot.ini".into(),
            process: ProcessId(4),
            at: SimTime::ZERO,
        });
        f.ship(&mut srv);
        let names = srv.names_for(MachineId(1));
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].file_object, 77);
    }

    #[test]
    fn agent_tick_ships_when_connected() {
        let mut agent = TraceAgent::new(MachineId(9));
        let mut srv = CollectionServer::new();
        for i in 0..3_100u64 {
            agent.filter.event(&event(i));
        }
        agent.on_tick(&mut srv);
        assert_eq!(srv.total_records(), 3_000);
        agent.filter.set_state(AgentState::Suspended);
        agent.on_tick(&mut srv);
        assert_eq!(srv.total_records(), 3_000, "suspended agents do not ship");
    }

    #[test]
    fn transition_accumulates_downtime() {
        let mut f = TraceFilter::new(MachineId(2));
        f.transition(AgentState::Suspended, 1_000);
        f.transition(AgentState::Suspended, 1_500); // no-op, already down
        f.transition(AgentState::Connected, 4_000);
        f.transition(AgentState::Suspended, 10_000);
        f.transition(AgentState::Connected, 11_000);
        assert_eq!(f.ledger().downtime_ticks, 3_000 + 1_000);
    }

    #[test]
    fn refused_shipment_stays_pending_until_retry() {
        /// A sink that refuses everything before `up_at`.
        struct FlakySink {
            inner: CollectionServer,
            up_at: u64,
        }
        impl RecordSink for FlakySink {
            fn ingest(&mut self, machine: MachineId, records: &[TraceRecord]) {
                self.inner.ingest(machine, records);
            }
            fn ingest_name(&mut self, machine: MachineId, name: NameRecord) {
                self.inner.ingest_name(machine, name);
            }
            fn ingest_at(
                &mut self,
                machine: MachineId,
                seq: u64,
                records: &[TraceRecord],
                now_ticks: u64,
            ) -> bool {
                if now_ticks < self.up_at {
                    return false;
                }
                self.inner.ingest_seq(machine, seq, records);
                true
            }
            fn ingest_name_at(
                &mut self,
                machine: MachineId,
                seq: u64,
                name: NameRecord,
                now_ticks: u64,
            ) -> bool {
                if now_ticks < self.up_at {
                    return false;
                }
                self.inner.ingest_name_seq(machine, seq, name);
                true
            }
        }

        let mut f = TraceFilter::new(MachineId(5));
        let mut sink = FlakySink {
            inner: CollectionServer::new(),
            up_at: 500,
        };
        for i in 0..6_100u64 {
            f.event(&event(i));
        }
        assert!(!f.ship_at(&mut sink, 100), "server down: refused");
        assert_eq!(f.pending_records(), 6_000);
        assert_eq!(sink.inner.total_records(), 0);
        assert!(!f.ship_at(&mut sink, 200), "still down: counted as retry");
        assert!(f.ship_at(&mut sink, 600), "server back: delivered");
        assert_eq!(sink.inner.total_records(), 6_000);
        assert_eq!(f.pending_records(), 0);
        f.final_flush(&mut sink);
        assert_eq!(sink.inner.total_records(), 6_100);
        let ledger = f.ledger();
        assert!(ledger.reconciles());
        assert_eq!(ledger.batches_retried, 2);
        assert_eq!(ledger.batches_shipped, 3);
        let back = sink.inner.records_for(MachineId(5));
        assert_eq!(back.len(), 6_100);
        assert!(back.windows(2).all(|w| w[0].file_object < w[1].file_object));
    }
}
