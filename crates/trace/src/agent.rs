//! The per-machine trace agent and its filter driver (§3).
//!
//! "On each system a trace agent is installed that provides an access
//! point for remote control of the tracing process. The trace agent is
//! responsible for taking the periodic snapshots and for directing the
//! stream of trace events towards the collection servers. … If a trace
//! agent loses contact with the collection servers it will suspend the
//! local operation until the connection is re-established."

use nt_io::observer::FileObjectInfo;
use nt_io::{IoEvent, IoObserver};

use crate::buffer::TripleBuffer;
use crate::collector::MachineId;
use crate::pool::RecordSink;
use crate::record::{NameRecord, TraceRecord};

/// Connection state of an agent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AgentState {
    /// Streaming to a collection server.
    Connected,
    /// Lost contact; local tracing is suspended and events are not
    /// recorded (the paper's agents stop rather than spill to disk).
    Suspended,
}

/// The filter driver: an [`IoObserver`] converting every request into a
/// [`TraceRecord`] in the triple-buffered store.
pub struct TraceFilter {
    machine: MachineId,
    buffer: TripleBuffer,
    names: Vec<NameRecord>,
    state: AgentState,
    /// Buffers filled and awaiting shipping (observable to tests).
    fills: u64,
}

impl TraceFilter {
    /// A connected filter for one machine.
    pub fn new(machine: MachineId) -> Self {
        TraceFilter {
            machine,
            buffer: TripleBuffer::new(),
            names: Vec::new(),
            state: AgentState::Connected,
            fills: 0,
        }
    }

    /// The machine this filter instruments.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Current connection state.
    pub fn state(&self) -> AgentState {
        self.state
    }

    /// Simulates losing / regaining the collection-server connection.
    pub fn set_state(&mut self, state: AgentState) {
        self.state = state;
    }

    /// Records accepted so far.
    pub fn recorded(&self) -> u64 {
        self.buffer.recorded()
    }

    /// True when the buffers ever overflowed (§3.2: never in the study).
    pub fn overflowed(&self) -> bool {
        self.buffer.overflowed()
    }

    /// Times a buffer filled.
    pub fn buffer_fills(&self) -> u64 {
        self.fills
    }

    /// Ships all queued full buffers and name records to the sink — a
    /// local [`crate::CollectionServer`] or a [`crate::CollectorHandle`]
    /// streaming to the pool.
    pub fn ship<S: RecordSink>(&mut self, sink: &mut S) {
        for batch in self.buffer.take_queued() {
            sink.ingest(self.machine, &batch);
        }
        for name in self.names.drain(..) {
            sink.ingest_name(self.machine, name);
        }
    }

    /// Ships everything including the active partial buffer (period end).
    pub fn final_flush<S: RecordSink>(&mut self, sink: &mut S) {
        let rest = self.buffer.drain_all();
        sink.ingest(self.machine, &rest);
        for name in self.names.drain(..) {
            sink.ingest_name(self.machine, name);
        }
    }
}

impl IoObserver for TraceFilter {
    fn file_object(&mut self, info: &FileObjectInfo) {
        if self.state == AgentState::Suspended {
            return;
        }
        self.names.push(NameRecord {
            file_object: info.id.0,
            volume: info.volume,
            process: info.process.0,
            path: info.path.clone(),
            at_ticks: info.at.ticks(),
        });
    }

    fn event(&mut self, event: &IoEvent) {
        if self.state == AgentState::Suspended {
            return;
        }
        if self.buffer.push(TraceRecord::from_event(event)) {
            self.fills += 1;
        }
    }
}

/// The agent: filter plus shipping cadence bookkeeping. In the simulated
/// deployment the orchestrator calls [`TraceAgent::on_tick`] periodically
/// (the real agent shipped whenever a buffer filled, with the same
/// effect on the server's contents).
pub struct TraceAgent {
    /// The machine's filter driver.
    pub filter: TraceFilter,
}

impl TraceAgent {
    /// Creates an agent with a connected filter.
    pub fn new(machine: MachineId) -> Self {
        TraceAgent {
            filter: TraceFilter::new(machine),
        }
    }

    /// Periodic shipping opportunity: moves full buffers to the server.
    pub fn on_tick<S: RecordSink>(&mut self, sink: &mut S) {
        if self.filter.state() == AgentState::Connected {
            self.filter.ship(sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectionServer;
    use nt_io::FcbId;
    use nt_io::{EventKind, FileObjectId, MajorFunction, NtStatus, ProcessId};
    use nt_sim::SimTime;

    fn event(i: u64) -> IoEvent {
        IoEvent {
            kind: EventKind::Irp(MajorFunction::Read),
            file_object: FileObjectId(i),
            fcb: FcbId(0),
            process: ProcessId(1),
            volume: 0,
            local: true,
            paging_io: false,
            readahead: false,
            offset: 0,
            length: 512,
            transferred: 512,
            file_size: 4096,
            byte_offset: 0,
            status: NtStatus::Success,
            start: SimTime::from_ticks(i * 100),
            end: SimTime::from_ticks(i * 100 + 30),
            access: None,
            disposition: None,
            options: None,
            set_info: None,
            created: false,
        }
    }

    #[test]
    fn filter_records_and_ships() {
        let mut f = TraceFilter::new(MachineId(3));
        let mut srv = CollectionServer::new();
        for i in 0..5_000u64 {
            f.event(&event(i));
        }
        assert_eq!(f.recorded(), 5_000);
        assert_eq!(f.buffer_fills(), 1);
        f.ship(&mut srv);
        assert_eq!(srv.total_records(), 3_000, "one full buffer shipped");
        f.final_flush(&mut srv);
        assert_eq!(srv.total_records(), 5_000);
        let back = srv.records_for(MachineId(3));
        assert_eq!(back.len(), 5_000);
        assert_eq!(back[0].file_object, 0);
        assert_eq!(back[4_999].file_object, 4_999);
    }

    #[test]
    fn suspended_agent_records_nothing() {
        let mut f = TraceFilter::new(MachineId(1));
        f.set_state(AgentState::Suspended);
        f.event(&event(1));
        assert_eq!(f.recorded(), 0);
        f.set_state(AgentState::Connected);
        f.event(&event(2));
        assert_eq!(f.recorded(), 1);
    }

    #[test]
    fn name_records_ship_with_buffers() {
        let mut f = TraceFilter::new(MachineId(1));
        let mut srv = CollectionServer::new();
        f.file_object(&FileObjectInfo {
            id: FileObjectId(77),
            volume: 0,
            path: r"\boot.ini".into(),
            process: ProcessId(4),
            at: SimTime::ZERO,
        });
        f.ship(&mut srv);
        let names = srv.names_for(MachineId(1));
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].file_object, 77);
    }

    #[test]
    fn agent_tick_ships_when_connected() {
        let mut agent = TraceAgent::new(MachineId(9));
        let mut srv = CollectionServer::new();
        for i in 0..3_100u64 {
            agent.filter.event(&event(i));
        }
        agent.on_tick(&mut srv);
        assert_eq!(srv.total_records(), 3_000);
        agent.filter.set_state(AgentState::Suspended);
        agent.on_tick(&mut srv);
        assert_eq!(srv.total_records(), 3_000, "suspended agents do not ship");
    }
}
