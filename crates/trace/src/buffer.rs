//! The trace driver's triple-buffered record store (§3.2).
//!
//! "The trace driver uses a triple-buffering scheme for the record
//! storage, with each storage buffer able to hold up to 3,000 records. An
//! idle system fills this size storage buffer in an hour; under heavy
//! load, buffers fill in as little as 3-5 seconds." A buffer that fills
//! while no free buffer is available is an overflow, which the agent must
//! detect (it never happened in the study's runs — the property tests
//! check the detector anyway).

use crate::record::TraceRecord;

/// Records per storage buffer (§3.2: 3,000).
pub const BUFFER_CAPACITY: usize = 3_000;

/// One storage buffer.
#[derive(Debug, Default)]
struct Storage {
    records: Vec<TraceRecord>,
}

/// The triple-buffering scheme: one buffer fills, one may be in flight to
/// the collection server, one stands by.
#[derive(Debug)]
pub struct TripleBuffer {
    buffers: [Storage; 3],
    /// Records each storage buffer holds (§3.2's 3,000 by default; fault
    /// plans squeeze it to model under-provisioned agents).
    capacity: usize,
    /// Index of the buffer currently being filled.
    filling: usize,
    /// Buffers queued for shipping (filled, awaiting flush).
    queued: Vec<usize>,
    /// Set when a record had to be dropped because every buffer was full.
    overflowed: bool,
    /// Total records accepted.
    recorded: u64,
    /// Total records dropped to overflow.
    dropped: u64,
    /// Recycled record storage: delivered batches come back here via
    /// [`TripleBuffer::recycle`], so steady-state shipping reuses the
    /// same three allocations instead of growing a fresh `Vec` per fill.
    spare: Vec<Vec<TraceRecord>>,
}

impl Default for TripleBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl TripleBuffer {
    /// An empty triple buffer at the paper's capacity.
    pub fn new() -> Self {
        Self::with_capacity(BUFFER_CAPACITY)
    }

    /// An empty triple buffer with a custom per-buffer capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TripleBuffer {
            buffers: [Storage::default(), Storage::default(), Storage::default()],
            capacity: capacity.max(1),
            filling: 0,
            queued: Vec::new(),
            overflowed: false,
            recorded: 0,
            dropped: 0,
            spare: Vec::new(),
        }
    }

    /// Records each storage buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a record. Returns `true` when the active buffer just filled
    /// (the caller should attempt a flush).
    pub fn push(&mut self, record: TraceRecord) -> bool {
        let buf = &mut self.buffers[self.filling];
        if buf.records.len() >= self.capacity {
            // The active buffer is full and could not rotate earlier:
            // overflow (§3.2's detected-error case).
            self.overflowed = true;
            self.dropped += 1;
            return true;
        }
        buf.records.push(record);
        self.recorded += 1;
        if self.buffers[self.filling].records.len() >= self.capacity {
            self.rotate();
            true
        } else {
            false
        }
    }

    fn rotate(&mut self) {
        self.queued.push(self.filling);
        // Find a free buffer to fill next.
        if let Some(free) = (0..3).find(|i| !self.queued.contains(i) && *i != self.filling) {
            self.filling = free;
        }
        // When no buffer is free, `filling` stays on the full one and the
        // next push overflows.
    }

    /// Appends a whole batch of records — the shipment path used when a
    /// machine's dispatch loop hands over accumulated events in one call
    /// rather than one push per event. Returns how many buffers filled
    /// (each fill is a flush opportunity); overflowed records are counted
    /// and dropped exactly as [`TripleBuffer::push`] would.
    pub fn push_batch(&mut self, records: &[TraceRecord]) -> u64 {
        let mut fills = 0;
        let mut rest = records;
        while !rest.is_empty() {
            let buf = &mut self.buffers[self.filling];
            let room = self.capacity.saturating_sub(buf.records.len());
            if room == 0 {
                // No rotation possible earlier: the remainder overflows.
                self.overflowed = true;
                self.dropped += rest.len() as u64;
                return fills + 1;
            }
            let take = room.min(rest.len());
            buf.records.extend_from_slice(&rest[..take]);
            self.recorded += take as u64;
            rest = &rest[take..];
            if self.buffers[self.filling].records.len() >= self.capacity {
                self.rotate();
                fills += 1;
            }
        }
        fills
    }

    /// Takes every queued (full) buffer's records, oldest first. Each
    /// taken buffer is re-armed with recycled storage when any is
    /// available, so the fill path keeps its warmed-up capacity.
    pub fn take_queued(&mut self) -> Vec<Vec<TraceRecord>> {
        let mut out = Vec::new();
        for idx in std::mem::take(&mut self.queued) {
            let replacement = self.spare.pop().unwrap_or_default();
            out.push(std::mem::replace(
                &mut self.buffers[idx].records,
                replacement,
            ));
        }
        out
    }

    /// Returns a delivered batch's storage for reuse. The pool keeps at
    /// most three spares — one per storage buffer.
    pub fn recycle(&mut self, mut batch: Vec<TraceRecord>) {
        if self.spare.len() < 3 {
            batch.clear();
            self.spare.push(batch);
        }
    }

    /// Takes everything, including the partially-filled active buffer
    /// (used at period end / shutdown).
    pub fn drain_all(&mut self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = Vec::new();
        for batch in self.take_queued() {
            out.extend(batch);
        }
        out.append(&mut self.buffers[self.filling].records);
        out
    }

    /// True when a record has ever been dropped.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Records accepted so far.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records dropped to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records currently sitting in buffers.
    pub fn pending(&self) -> usize {
        self.buffers.iter().map(|b| b.records.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_io::{EventKind, MajorFunction, NtStatus};

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            code: EventKind::Irp(MajorFunction::Read).code(),
            flags: 0,
            status: NtStatus::Success,
            set_info: None,
            access: None,
            disposition: None,
            options: None,
            file_object: i,
            fcb: 0,
            process: 0,
            volume: 0,
            offset: 0,
            length: 0,
            transferred: 0,
            file_size: 0,
            byte_offset: 0,
            start_ticks: i,
            end_ticks: i + 1,
        }
    }

    #[test]
    fn fills_and_rotates() {
        let mut tb = TripleBuffer::new();
        for i in 0..BUFFER_CAPACITY as u64 - 1 {
            assert!(!tb.push(rec(i)));
        }
        assert!(tb.push(rec(9_999)), "capacity reached signals flush");
        assert_eq!(tb.pending(), BUFFER_CAPACITY);
        let batches = tb.take_queued();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), BUFFER_CAPACITY);
        assert_eq!(tb.pending(), 0);
        assert!(!tb.overflowed());
    }

    #[test]
    fn overflow_detected_when_all_buffers_full() {
        let mut tb = TripleBuffer::new();
        // Fill all three buffers without ever flushing.
        for i in 0..(3 * BUFFER_CAPACITY) as u64 {
            tb.push(rec(i));
        }
        assert!(!tb.overflowed(), "three buffers hold three loads");
        tb.push(rec(u64::MAX - 1));
        assert!(tb.overflowed(), "fourth load has nowhere to go");
        assert_eq!(tb.dropped(), 1);
        assert_eq!(tb.recorded(), 3 * BUFFER_CAPACITY as u64);
    }

    #[test]
    fn drain_all_returns_everything_in_order() {
        let mut tb = TripleBuffer::new();
        let n = BUFFER_CAPACITY as u64 + 100;
        for i in 0..n {
            tb.push(rec(i));
        }
        let all = tb.drain_all();
        assert_eq!(all.len(), n as usize);
        assert!(all.windows(2).all(|w| w[0].file_object < w[1].file_object));
        assert_eq!(tb.pending(), 0);
    }

    #[test]
    fn squeezed_capacity_fills_sooner() {
        let mut tb = TripleBuffer::with_capacity(10);
        assert_eq!(tb.capacity(), 10);
        for i in 0..9u64 {
            assert!(!tb.push(rec(i)));
        }
        assert!(tb.push(rec(9)), "tenth record fills the squeezed buffer");
        // Three squeezed buffers hold 30 records; the 31st overflows.
        for i in 10..30u64 {
            tb.push(rec(i));
        }
        assert!(!tb.overflowed());
        tb.push(rec(30));
        assert!(tb.overflowed());
        assert_eq!(tb.dropped(), 1);
        assert_eq!(tb.recorded(), 30);
    }

    #[test]
    fn push_batch_matches_per_record_pushes() {
        let mut a = TripleBuffer::with_capacity(10);
        let mut b = TripleBuffer::with_capacity(10);
        let records: Vec<TraceRecord> = (0..27u64).map(rec).collect();
        let mut fills_a = 0u64;
        for r in &records {
            if a.push(*r) {
                fills_a += 1;
            }
        }
        let fills_b = b.push_batch(&records);
        assert_eq!(fills_b, fills_a);
        assert_eq!(b.recorded(), a.recorded());
        assert_eq!(b.pending(), a.pending());
        assert_eq!(a.drain_all(), b.drain_all());
    }

    #[test]
    fn push_batch_overflow_drops_the_remainder() {
        let mut tb = TripleBuffer::with_capacity(10);
        let records: Vec<TraceRecord> = (0..35u64).map(rec).collect();
        tb.push_batch(&records);
        assert!(tb.overflowed(), "three buffers hold 30 of 35");
        assert_eq!(tb.recorded(), 30);
        assert_eq!(tb.dropped(), 5);
    }

    #[test]
    fn recycled_storage_rearms_taken_buffers() {
        let mut tb = TripleBuffer::with_capacity(100);
        for i in 0..100u64 {
            tb.push(rec(i));
        }
        let mut batches = tb.take_queued();
        assert_eq!(batches.len(), 1);
        let cap = batches[0].capacity();
        tb.recycle(batches.pop().unwrap());
        for i in 0..100u64 {
            tb.push(rec(i));
        }
        let again = tb.take_queued();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].len(), 100);
        assert!(
            again[0].capacity() >= cap.min(100),
            "the refill reused warmed storage"
        );
    }

    #[test]
    fn flush_frees_buffers_for_reuse() {
        let mut tb = TripleBuffer::new();
        for round in 0..5u64 {
            for i in 0..BUFFER_CAPACITY as u64 {
                tb.push(rec(round * 10_000 + i));
            }
            let batches = tb.take_queued();
            assert_eq!(batches.len(), 1, "round {round}");
        }
        assert!(!tb.overflowed());
        assert_eq!(tb.recorded(), 5 * BUFFER_CAPACITY as u64);
    }
}
