//! The collection-server pool.
//!
//! §3: "The collection servers are three dedicated file servers that take
//! the incoming event streams and store them in compressed formats for
//! later retrieval." [`CollectorPool`] runs one thread per server; trace
//! agents ship full buffers through a channel to the server their machine
//! is assigned to, and the pool merges the three stores at shutdown.

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

use crate::collector::{CollectionServer, MachineId};
use crate::record::{NameRecord, TraceRecord};

/// Anything a trace agent can ship records into — a local store or a
/// channel to a remote collection server.
pub trait RecordSink {
    /// Stores one shipped buffer.
    fn ingest(&mut self, machine: MachineId, records: &[TraceRecord]);

    /// Stores one file-object name record.
    fn ingest_name(&mut self, machine: MachineId, name: NameRecord);
}

impl RecordSink for CollectionServer {
    fn ingest(&mut self, machine: MachineId, records: &[TraceRecord]) {
        CollectionServer::ingest(self, machine, records);
    }

    fn ingest_name(&mut self, machine: MachineId, name: NameRecord) {
        CollectionServer::ingest_name(self, machine, name);
    }
}

enum Shipment {
    Batch(MachineId, Vec<TraceRecord>),
    Name(MachineId, NameRecord),
}

/// A per-machine handle that ships to the assigned collection server.
#[derive(Clone)]
pub struct CollectorHandle {
    tx: Sender<Shipment>,
}

impl RecordSink for CollectorHandle {
    fn ingest(&mut self, machine: MachineId, records: &[TraceRecord]) {
        if !records.is_empty() {
            // A closed pool drops the shipment, like an agent whose
            // server went away (§3: the agent would suspend).
            let _ = self.tx.send(Shipment::Batch(machine, records.to_vec()));
        }
    }

    fn ingest_name(&mut self, machine: MachineId, name: NameRecord) {
        let _ = self.tx.send(Shipment::Name(machine, name));
    }
}

/// The pool of collection servers.
pub struct CollectorPool {
    senders: Vec<Sender<Shipment>>,
    handles: Vec<JoinHandle<CollectionServer>>,
}

impl CollectorPool {
    /// Starts `servers` collection-server threads (the study ran three).
    pub fn start(servers: usize) -> Self {
        let servers = servers.max(1);
        let mut senders = Vec::with_capacity(servers);
        let mut handles = Vec::with_capacity(servers);
        for _ in 0..servers {
            let (tx, rx) = unbounded::<Shipment>();
            senders.push(tx);
            handles.push(std::thread::spawn(move || {
                let mut store = CollectionServer::new();
                while let Ok(shipment) = rx.recv() {
                    match shipment {
                        Shipment::Batch(m, records) => store.ingest(m, &records),
                        Shipment::Name(m, name) => store.ingest_name(m, name),
                    }
                }
                store
            }));
        }
        CollectorPool { senders, handles }
    }

    /// The handle a machine's agent should ship through; machines hash to
    /// servers for a stable assignment.
    pub fn handle_for(&self, machine: MachineId) -> CollectorHandle {
        let idx = machine.0 as usize % self.senders.len();
        CollectorHandle {
            tx: self.senders[idx].clone(),
        }
    }

    /// Closes the streams, joins the servers and merges their stores.
    ///
    /// Every [`CollectorHandle`] must have been dropped first — a live
    /// handle keeps its server's channel open and `finish` would wait for
    /// it (the agents disconnect before the servers shut down, §3).
    pub fn finish(self) -> CollectionServer {
        drop(self.senders);
        let mut merged = CollectionServer::new();
        for h in self.handles {
            let store = h.join().expect("collection server thread panicked");
            merged.merge(store);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_io::{EventKind, MajorFunction, NtStatus};

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            code: EventKind::Irp(MajorFunction::Read).code(),
            flags: 0,
            status: NtStatus::Success,
            set_info: None,
            access: None,
            disposition: None,
            options: None,
            file_object: i,
            fcb: 0,
            process: 0,
            volume: 0,
            offset: 0,
            length: 512,
            transferred: 512,
            file_size: 0,
            byte_offset: 0,
            start_ticks: i * 1000,
            end_ticks: i * 1000 + 10,
        }
    }

    #[test]
    fn pool_collects_from_concurrent_agents() {
        let pool = CollectorPool::start(3);
        std::thread::scope(|scope| {
            for m in 0..9u32 {
                let mut handle = pool.handle_for(MachineId(m));
                scope.spawn(move || {
                    for batch in 0..4u64 {
                        let records: Vec<TraceRecord> =
                            (0..50).map(|i| rec(batch * 50 + i)).collect();
                        handle.ingest(MachineId(m), &records);
                    }
                    handle.ingest_name(
                        MachineId(m),
                        NameRecord {
                            file_object: m as u64,
                            volume: 0,
                            process: 0,
                            path: format!(r"\m{m}.txt"),
                            at_ticks: 0,
                        },
                    );
                });
            }
        });
        let merged = pool.finish();
        assert_eq!(merged.total_records(), 9 * 4 * 50);
        assert_eq!(merged.machines().len(), 9);
        for m in 0..9u32 {
            assert_eq!(merged.records_for(MachineId(m)).len(), 200);
            assert_eq!(merged.names_for(MachineId(m)).len(), 1);
        }
    }

    #[test]
    fn machine_assignment_is_stable() {
        let pool = CollectorPool::start(3);
        let a = pool.handle_for(MachineId(4));
        let b = pool.handle_for(MachineId(4));
        assert!(a.tx.same_channel(&b.tx), "same machine, same server");
        let c = pool.handle_for(MachineId(5));
        assert!(!a.tx.same_channel(&c.tx), "different machine, other server");
        // Handles keep their server's channel open; drop them before the
        // pool shuts down.
        drop((a, b, c));
        pool.finish();
    }

    #[test]
    fn empty_batches_are_not_shipped() {
        let pool = CollectorPool::start(1);
        let mut h = pool.handle_for(MachineId(0));
        h.ingest(MachineId(0), &[]);
        drop(h);
        let merged = pool.finish();
        assert_eq!(merged.total_records(), 0);
    }
}
