//! The collection-server pool.
//!
//! §3: "The collection servers are three dedicated file servers that take
//! the incoming event streams and store them in compressed formats for
//! later retrieval." [`CollectorPool`] runs one thread per server; trace
//! agents ship full buffers through a channel to the server their machine
//! is assigned to, and the pool merges the three stores at shutdown.
//!
//! The pool can also simulate server outages: each server carries a set of
//! downtime windows, and a [`CollectorHandle`] fails over to the next live
//! server when its primary is down. When every server is down the shipment
//! is refused and the agent keeps the batch for a later retry.

use crossbeam::channel::{unbounded, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::collector::{CollectionServer, MachineId};
use crate::fault::{any_contains, TickWindow};
use crate::record::{NameRecord, TraceRecord};

/// Anything a trace agent can ship records into — a local store or a
/// channel to a remote collection server.
pub trait RecordSink {
    /// Stores one shipped buffer.
    fn ingest(&mut self, machine: MachineId, records: &[TraceRecord]);

    /// Stores one file-object name record.
    fn ingest_name(&mut self, machine: MachineId, name: NameRecord);

    /// Sequence-stamped, time-aware delivery. Returns `false` when the
    /// sink is unreachable at `now_ticks` (a collector outage); the caller
    /// must keep the batch and retry. Sinks with no notion of downtime
    /// accept unconditionally.
    fn ingest_at(
        &mut self,
        machine: MachineId,
        seq: u64,
        records: &[TraceRecord],
        now_ticks: u64,
    ) -> bool {
        let _ = (seq, now_ticks);
        self.ingest(machine, records);
        true
    }

    /// Sequence-stamped, time-aware name delivery; see [`Self::ingest_at`].
    fn ingest_name_at(
        &mut self,
        machine: MachineId,
        seq: u64,
        name: NameRecord,
        now_ticks: u64,
    ) -> bool {
        let _ = (seq, now_ticks);
        self.ingest_name(machine, name);
        true
    }
}

impl RecordSink for CollectionServer {
    fn ingest(&mut self, machine: MachineId, records: &[TraceRecord]) {
        CollectionServer::ingest(self, machine, records);
    }

    fn ingest_name(&mut self, machine: MachineId, name: NameRecord) {
        CollectionServer::ingest_name(self, machine, name);
    }

    fn ingest_at(
        &mut self,
        machine: MachineId,
        seq: u64,
        records: &[TraceRecord],
        _now_ticks: u64,
    ) -> bool {
        self.ingest_seq(machine, seq, records);
        true
    }

    fn ingest_name_at(
        &mut self,
        machine: MachineId,
        seq: u64,
        name: NameRecord,
        _now_ticks: u64,
    ) -> bool {
        self.ingest_name_seq(machine, seq, name);
        true
    }
}

enum Shipment {
    /// `(machine, agent sequence, records)`; `None` = arrival order.
    Batch(MachineId, Option<u64>, Vec<TraceRecord>),
    Name(MachineId, Option<u64>, NameRecord),
}

/// A per-machine handle that ships to the assigned collection server,
/// failing over to the next live server during outages.
#[derive(Clone)]
pub struct CollectorHandle {
    senders: Vec<Sender<Shipment>>,
    primary: usize,
    /// Downtime windows per server, indexed like `senders`.
    outages: Arc<Vec<Vec<TickWindow>>>,
    /// Shipments that landed on a non-primary server.
    failovers: u64,
}

impl CollectorHandle {
    /// The first server reachable at `now_ticks`, trying the primary
    /// first and rotating through the pool.
    fn live_server(&self, now_ticks: u64) -> Option<usize> {
        let n = self.senders.len();
        (0..n)
            .map(|i| (self.primary + i) % n)
            .find(|&s| !any_contains(&self.outages[s], now_ticks))
    }

    /// Shipments this handle delivered to a non-primary server.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }
}

impl RecordSink for CollectorHandle {
    fn ingest(&mut self, machine: MachineId, records: &[TraceRecord]) {
        if !records.is_empty() {
            // A closed pool drops the shipment, like an agent whose
            // server went away (§3: the agent would suspend).
            let _ =
                self.senders[self.primary].send(Shipment::Batch(machine, None, records.to_vec()));
        }
    }

    fn ingest_name(&mut self, machine: MachineId, name: NameRecord) {
        let _ = self.senders[self.primary].send(Shipment::Name(machine, None, name));
    }

    fn ingest_at(
        &mut self,
        machine: MachineId,
        seq: u64,
        records: &[TraceRecord],
        now_ticks: u64,
    ) -> bool {
        let Some(server) = self.live_server(now_ticks) else {
            return false;
        };
        if server != self.primary {
            self.failovers += 1;
        }
        if !records.is_empty() {
            let _ =
                self.senders[server].send(Shipment::Batch(machine, Some(seq), records.to_vec()));
        }
        true
    }

    fn ingest_name_at(
        &mut self,
        machine: MachineId,
        seq: u64,
        name: NameRecord,
        now_ticks: u64,
    ) -> bool {
        let Some(server) = self.live_server(now_ticks) else {
            return false;
        };
        if server != self.primary {
            self.failovers += 1;
        }
        let _ = self.senders[server].send(Shipment::Name(machine, Some(seq), name));
        true
    }
}

/// The pool of collection servers.
pub struct CollectorPool {
    senders: Vec<Sender<Shipment>>,
    handles: Vec<JoinHandle<CollectionServer>>,
    outages: Arc<Vec<Vec<TickWindow>>>,
}

impl CollectorPool {
    /// Starts `servers` collection-server threads (the study ran three).
    pub fn start(servers: usize) -> Self {
        Self::start_with_outages(servers, Vec::new())
    }

    /// Starts the pool with per-server downtime windows. A server whose
    /// window covers the shipment time refuses it; handles fail over.
    /// Missing entries mean "always up".
    pub fn start_with_outages(servers: usize, mut outages: Vec<Vec<TickWindow>>) -> Self {
        let servers = servers.max(1);
        outages.resize(servers, Vec::new());
        let mut senders = Vec::with_capacity(servers);
        let mut handles = Vec::with_capacity(servers);
        for _ in 0..servers {
            let (tx, rx) = unbounded::<Shipment>();
            senders.push(tx);
            handles.push(std::thread::spawn(move || {
                let mut store = CollectionServer::new();
                while let Ok(shipment) = rx.recv() {
                    match shipment {
                        Shipment::Batch(m, Some(seq), records) => {
                            store.ingest_seq(m, seq, &records)
                        }
                        Shipment::Batch(m, None, records) => store.ingest(m, &records),
                        Shipment::Name(m, Some(seq), name) => store.ingest_name_seq(m, seq, name),
                        Shipment::Name(m, None, name) => store.ingest_name(m, name),
                    }
                }
                store
            }));
        }
        CollectorPool {
            senders,
            handles,
            outages: Arc::new(outages),
        }
    }

    /// The handle a machine's agent should ship through; machines hash to
    /// servers for a stable assignment.
    pub fn handle_for(&self, machine: MachineId) -> CollectorHandle {
        CollectorHandle {
            senders: self.senders.clone(),
            primary: machine.0 as usize % self.senders.len(),
            outages: Arc::clone(&self.outages),
            failovers: 0,
        }
    }

    /// Closes the streams, joins the servers and merges their stores.
    ///
    /// Every [`CollectorHandle`] must have been dropped first — a live
    /// handle keeps its server's channel open and `finish` would wait for
    /// it (the agents disconnect before the servers shut down, §3).
    pub fn finish(self) -> CollectionServer {
        drop(self.senders);
        let mut merged = CollectionServer::new();
        for h in self.handles {
            let store = h.join().expect("collection server thread panicked");
            merged.merge(store);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_io::{EventKind, MajorFunction, NtStatus};

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            code: EventKind::Irp(MajorFunction::Read).code(),
            flags: 0,
            status: NtStatus::Success,
            set_info: None,
            access: None,
            disposition: None,
            options: None,
            file_object: i,
            fcb: 0,
            process: 0,
            volume: 0,
            offset: 0,
            length: 512,
            transferred: 512,
            file_size: 0,
            byte_offset: 0,
            start_ticks: i * 1000,
            end_ticks: i * 1000 + 10,
        }
    }

    #[test]
    fn pool_collects_from_concurrent_agents() {
        let pool = CollectorPool::start(3);
        std::thread::scope(|scope| {
            for m in 0..9u32 {
                let mut handle = pool.handle_for(MachineId(m));
                scope.spawn(move || {
                    for batch in 0..4u64 {
                        let records: Vec<TraceRecord> =
                            (0..50).map(|i| rec(batch * 50 + i)).collect();
                        handle.ingest(MachineId(m), &records);
                    }
                    handle.ingest_name(
                        MachineId(m),
                        NameRecord {
                            file_object: m as u64,
                            volume: 0,
                            process: 0,
                            path: format!(r"\m{m}.txt"),
                            at_ticks: 0,
                        },
                    );
                });
            }
        });
        let merged = pool.finish();
        assert_eq!(merged.total_records(), 9 * 4 * 50);
        assert_eq!(merged.machines().len(), 9);
        for m in 0..9u32 {
            assert_eq!(merged.records_for(MachineId(m)).len(), 200);
            assert_eq!(merged.names_for(MachineId(m)).len(), 1);
        }
    }

    #[test]
    fn machine_assignment_is_stable() {
        let pool = CollectorPool::start(3);
        let a = pool.handle_for(MachineId(4));
        let b = pool.handle_for(MachineId(4));
        assert_eq!(a.primary, b.primary, "same machine, same server");
        let c = pool.handle_for(MachineId(5));
        assert_ne!(a.primary, c.primary, "different machine, other server");
        // Handles keep their server's channel open; drop them before the
        // pool shuts down.
        drop((a, b, c));
        pool.finish();
    }

    #[test]
    fn empty_batches_are_not_shipped() {
        let pool = CollectorPool::start(1);
        let mut h = pool.handle_for(MachineId(0));
        h.ingest(MachineId(0), &[]);
        drop(h);
        let merged = pool.finish();
        assert_eq!(merged.total_records(), 0);
    }

    #[test]
    fn outage_refuses_then_fails_over() {
        // Server 0 down for ticks [100, 200); server 1 down always.
        let outages = vec![
            vec![TickWindow::new(100, 200)],
            vec![TickWindow::new(0, u64::MAX)],
        ];
        let pool = CollectorPool::start_with_outages(2, outages);
        let mut h = pool.handle_for(MachineId(0)); // primary = server 0
        let records: Vec<TraceRecord> = (0..10).map(rec).collect();
        assert!(h.ingest_at(MachineId(0), 0, &records, 50), "before outage");
        assert!(
            !h.ingest_at(MachineId(0), 1, &records, 150),
            "every server down: refused"
        );
        assert!(h.ingest_at(MachineId(0), 1, &records, 250), "after outage");
        assert_eq!(h.failovers(), 0, "primary recovered, no failover needed");

        // Machine 1's primary is the always-down server 1: it fails over.
        let mut h1 = pool.handle_for(MachineId(1));
        assert!(h1.ingest_at(MachineId(1), 0, &records, 50));
        assert_eq!(h1.failovers(), 1);
        drop((h, h1));
        let merged = pool.finish();
        assert_eq!(merged.total_records(), 30);
    }

    #[test]
    fn failover_batches_reassemble_in_sequence_order() {
        // Primary down in the middle window; the agent ships batch 1 to
        // the secondary, then batch 2 back on the primary. The merged
        // store must return them in sequence order regardless of which
        // server stored what.
        let outages = vec![vec![TickWindow::new(100, 200)], Vec::new()];
        let pool = CollectorPool::start_with_outages(2, outages);
        let mut h = pool.handle_for(MachineId(0));
        let batch = |lo: u64| -> Vec<TraceRecord> { (lo..lo + 5).map(rec).collect() };
        assert!(h.ingest_at(MachineId(0), 0, &batch(0), 50));
        assert!(h.ingest_at(MachineId(0), 1, &batch(5), 150), "failover");
        assert!(h.ingest_at(MachineId(0), 2, &batch(10), 250));
        assert_eq!(h.failovers(), 1);
        drop(h);
        let merged = pool.finish();
        let back = merged.records_for(MachineId(0));
        assert_eq!(back.len(), 15);
        let ids: Vec<u64> = back.iter().map(|r| r.file_object).collect();
        assert_eq!(ids, (0..15).collect::<Vec<u64>>(), "agent order restored");
    }
}
