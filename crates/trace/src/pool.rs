//! The collection-server pool.
//!
//! §3: "The collection servers are three dedicated file servers that take
//! the incoming event streams and store them in compressed formats for
//! later retrieval." [`CollectorPool`] runs one thread per server; trace
//! agents ship full buffers through a channel to the server their machine
//! is assigned to, and the pool merges the three stores at shutdown.
//!
//! The pool can also simulate server outages: each server carries a set of
//! downtime windows, and a [`CollectorHandle`] fails over to the next live
//! server when its primary is down. When every server is down the shipment
//! is refused and the agent keeps the batch for a later retry.

use crossbeam::channel::{unbounded, Sender};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;

use nt_obs::{FlightEvent, FlightRecorder, RecorderScope, ShipmentTracer, TraceContext};

use crate::collector::{CollectionServer, MachineId, RecordBatch};
use crate::fault::{any_contains, TickWindow};
use crate::record::{NameRecord, TraceRecord};

/// The causal baggage a record batch carries across the collector
/// channel: the collect-hop [`TraceContext`] (for downstream tiers to
/// parent-link their spans to), the simulated delivery tick, and the
/// server that accepted it. Attached by the [`CollectorHandle`] when
/// shipment tracing is on; `None` otherwise.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchMeta {
    /// The collect-hop context; downstream hops are its children.
    pub ctx: TraceContext,
    /// Simulated tick the collector accepted the batch.
    pub deliver_ticks: u64,
    /// Index of the accepting collection server.
    pub server: u32,
}

/// A destination for shipments on the collection-server threads — the
/// streaming alternative to [`CollectionServer`]'s store-then-retrieve.
/// Implementations route each shipment to per-machine state (distinct
/// machines may be consumed concurrently from different server threads;
/// one machine's shipments arrive from one agent but possibly via
/// several servers, carrying the agent's sequence stamp for reassembly).
pub trait ShipmentConsumer: Send + Sync {
    /// Consumes one shipped buffer. `seq` is the agent's own sequence
    /// stamp (`None` = plain arrival-order shipping); `meta` is the
    /// batch's causal trace baggage when shipment tracing is on.
    fn batch(
        &self,
        machine: MachineId,
        seq: Option<u64>,
        records: Vec<TraceRecord>,
        meta: Option<BatchMeta>,
    );

    /// Consumes one file-object name record.
    fn name(&self, machine: MachineId, seq: Option<u64>, name: NameRecord);
}

/// Anything a trace agent can ship records into — a local store or a
/// channel to a remote collection server.
pub trait RecordSink {
    /// Stores one shipped buffer.
    fn ingest(&mut self, machine: MachineId, records: &[TraceRecord]);

    /// Stores one file-object name record.
    fn ingest_name(&mut self, machine: MachineId, name: NameRecord);

    /// Sequence-stamped, time-aware delivery. Returns `false` when the
    /// sink is unreachable at `now_ticks` (a collector outage); the caller
    /// must keep the batch and retry. Sinks with no notion of downtime
    /// accept unconditionally.
    fn ingest_at(
        &mut self,
        machine: MachineId,
        seq: u64,
        records: &[TraceRecord],
        now_ticks: u64,
    ) -> bool {
        let _ = (seq, now_ticks);
        self.ingest(machine, records);
        true
    }

    /// Sequence-stamped, time-aware name delivery; see [`Self::ingest_at`].
    fn ingest_name_at(
        &mut self,
        machine: MachineId,
        seq: u64,
        name: NameRecord,
        now_ticks: u64,
    ) -> bool {
        let _ = (seq, now_ticks);
        self.ingest_name(machine, name);
        true
    }
}

impl RecordSink for CollectionServer {
    fn ingest(&mut self, machine: MachineId, records: &[TraceRecord]) {
        CollectionServer::ingest(self, machine, records);
    }

    fn ingest_name(&mut self, machine: MachineId, name: NameRecord) {
        CollectionServer::ingest_name(self, machine, name);
    }

    fn ingest_at(
        &mut self,
        machine: MachineId,
        seq: u64,
        records: &[TraceRecord],
        _now_ticks: u64,
    ) -> bool {
        self.ingest_seq(machine, seq, records);
        true
    }

    fn ingest_name_at(
        &mut self,
        machine: MachineId,
        seq: u64,
        name: NameRecord,
        _now_ticks: u64,
    ) -> bool {
        self.ingest_name_seq(machine, seq, name);
        true
    }
}

enum Shipment {
    /// `(machine, agent sequence, records, trace baggage)`; a `None`
    /// sequence means arrival order.
    Batch(MachineId, Option<u64>, Vec<TraceRecord>, Option<BatchMeta>),
    Name(MachineId, Option<u64>, NameRecord),
}

/// A collection-server thread died mid-run (panicked), so the records it
/// held were lost. Surfaced as an error so a study can report the fault
/// (and whatever the surviving servers collected) instead of aborting
/// the whole process.
#[derive(Debug)]
pub struct CollectionFault {
    /// Index of the dead server in the pool.
    pub server: usize,
    /// The panic payload, when it carried a message.
    pub message: String,
}

impl fmt::Display for CollectionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "collection server {} panicked: {}",
            self.server, self.message
        )
    }
}

impl std::error::Error for CollectionFault {}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A per-machine handle that ships to the assigned collection server,
/// failing over to the next live server during outages.
#[derive(Clone)]
pub struct CollectorHandle {
    senders: Vec<Sender<Shipment>>,
    primary: usize,
    /// Downtime windows per server, indexed like `senders`.
    outages: Arc<Vec<Vec<TickWindow>>>,
    /// Shipments that landed on a non-primary server.
    failovers: u64,
    /// Emits the collect-hop span and stamps [`BatchMeta`] on batches.
    tracer: ShipmentTracer,
    /// Receives failover events for this machine's scope.
    recorder: FlightRecorder,
}

impl CollectorHandle {
    /// The first server reachable at `now_ticks`, trying the primary
    /// first and rotating through the pool.
    fn live_server(&self, now_ticks: u64) -> Option<usize> {
        let n = self.senders.len();
        (0..n)
            .map(|i| (self.primary + i) % n)
            .find(|&s| !any_contains(&self.outages[s], now_ticks))
    }

    /// Shipments this handle delivered to a non-primary server.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }
}

impl RecordSink for CollectorHandle {
    fn ingest(&mut self, machine: MachineId, records: &[TraceRecord]) {
        if !records.is_empty() {
            // A closed pool drops the shipment, like an agent whose
            // server went away (§3: the agent would suspend).
            let _ = self.senders[self.primary].send(Shipment::Batch(
                machine,
                None,
                records.to_vec(),
                None,
            ));
        }
    }

    fn ingest_name(&mut self, machine: MachineId, name: NameRecord) {
        let _ = self.senders[self.primary].send(Shipment::Name(machine, None, name));
    }

    fn ingest_at(
        &mut self,
        machine: MachineId,
        seq: u64,
        records: &[TraceRecord],
        now_ticks: u64,
    ) -> bool {
        let Some(server) = self.live_server(now_ticks) else {
            return false;
        };
        if server != self.primary {
            self.failovers += 1;
            self.recorder.record(
                RecorderScope::Machine(machine.0),
                FlightEvent::Failover {
                    ticks: now_ticks,
                    seq,
                    from_server: self.primary as u32,
                    to_server: server as u32,
                },
            );
        }
        if !records.is_empty() {
            // The collect hop: span emitted here (server and shard are
            // known), context attached to the shipment so downstream
            // tiers parent-link to it across the channel.
            let meta = self
                .tracer
                .collect(
                    machine.0,
                    seq,
                    now_ticks,
                    records.len() as u64,
                    server as u32,
                )
                .map(|ctx| BatchMeta {
                    ctx,
                    deliver_ticks: now_ticks,
                    server: server as u32,
                });
            let _ = self.senders[server].send(Shipment::Batch(
                machine,
                Some(seq),
                records.to_vec(),
                meta,
            ));
        }
        true
    }

    fn ingest_name_at(
        &mut self,
        machine: MachineId,
        seq: u64,
        name: NameRecord,
        now_ticks: u64,
    ) -> bool {
        let Some(server) = self.live_server(now_ticks) else {
            return false;
        };
        if server != self.primary {
            self.failovers += 1;
        }
        let _ = self.senders[server].send(Shipment::Name(machine, Some(seq), name));
        true
    }
}

/// The pool of collection servers.
pub struct CollectorPool {
    senders: Vec<Sender<Shipment>>,
    handles: Vec<JoinHandle<CollectionServer>>,
    outages: Arc<Vec<Vec<TickWindow>>>,
}

impl CollectorPool {
    /// Starts `servers` collection-server threads (the study ran three).
    pub fn start(servers: usize) -> Self {
        Self::start_with_outages(servers, Vec::new())
    }

    /// Starts the pool with per-server downtime windows. A server whose
    /// window covers the shipment time refuses it; handles fail over.
    /// Missing entries mean "always up".
    pub fn start_with_outages(servers: usize, mut outages: Vec<Vec<TickWindow>>) -> Self {
        let servers = servers.max(1);
        outages.resize(servers, Vec::new());
        let mut senders = Vec::with_capacity(servers);
        let mut handles = Vec::with_capacity(servers);
        for _ in 0..servers {
            let (tx, rx) = unbounded::<Shipment>();
            senders.push(tx);
            handles.push(std::thread::spawn(move || {
                let mut store = CollectionServer::new();
                while let Ok(shipment) = rx.recv() {
                    match shipment {
                        Shipment::Batch(m, Some(seq), records, _) => {
                            store.ingest_seq(m, seq, &records)
                        }
                        Shipment::Batch(m, None, records, _) => store.ingest(m, &records),
                        Shipment::Name(m, Some(seq), name) => store.ingest_name_seq(m, seq, name),
                        Shipment::Name(m, None, name) => store.ingest_name(m, name),
                    }
                }
                store
            }));
        }
        CollectorPool {
            senders,
            handles,
            outages: Arc::new(outages),
        }
    }

    /// The handle a machine's agent should ship through; machines hash to
    /// servers for a stable assignment.
    pub fn handle_for(&self, machine: MachineId) -> CollectorHandle {
        CollectorHandle {
            senders: self.senders.clone(),
            primary: machine.0 as usize % self.senders.len(),
            outages: Arc::clone(&self.outages),
            failovers: 0,
            tracer: ShipmentTracer::off(),
            recorder: FlightRecorder::off(),
        }
    }

    /// Closes the streams, joins the servers and merges their stores.
    ///
    /// Every [`CollectorHandle`] must have been dropped first — a live
    /// handle keeps its server's channel open and `finish` would wait for
    /// it (the agents disconnect before the servers shut down, §3).
    ///
    /// A panicked server thread is reported as the first
    /// [`CollectionFault`] (the remaining servers are still joined, so no
    /// thread is leaked) rather than propagating the panic.
    pub fn finish(self) -> Result<CollectionServer, CollectionFault> {
        drop(self.senders);
        let mut merged = CollectionServer::new();
        let mut fault = None;
        for (server, h) in self.handles.into_iter().enumerate() {
            match h.join() {
                Ok(store) => merged.merge(store),
                Err(payload) => {
                    fault.get_or_insert(CollectionFault {
                        server,
                        message: panic_message(payload),
                    });
                }
            }
        }
        match fault {
            Some(f) => Err(f),
            None => Ok(merged),
        }
    }
}

/// What a [`StreamingPool`]'s servers accounted while forwarding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamingTotals {
    /// Records that passed through the pool.
    pub total_records: usize,
    /// Compressed footprint the batches *would* occupy on a collection
    /// server (each shipment is compressed for accounting exactly like
    /// [`CollectionServer::ingest_seq`] stores it, then dropped).
    pub stored_bytes: usize,
}

/// A pool of collection-server threads that forward shipments into a
/// [`ShipmentConsumer`] instead of storing them.
///
/// Agents interact with it exactly like with [`CollectorPool`] — same
/// [`CollectorHandle`], same failover and refusal behaviour, same
/// per-shipment compression accounting — but nothing is retained: the
/// consumer sees each buffer once and the pool's memory stays bounded by
/// the channel backlog, which is what lets paper-scale studies run
/// without materializing ~190 M records.
pub struct StreamingPool {
    senders: Vec<Sender<Shipment>>,
    handles: Vec<JoinHandle<StreamingTotals>>,
    outages: Arc<Vec<Vec<TickWindow>>>,
    tracer: ShipmentTracer,
    recorder: FlightRecorder,
}

impl StreamingPool {
    /// Starts `servers` forwarding threads over `consumer`.
    pub fn start(servers: usize, consumer: Arc<dyn ShipmentConsumer>) -> Self {
        Self::start_with_outages(servers, Vec::new(), consumer)
    }

    /// Starts the pool with per-server downtime windows (semantics as
    /// [`CollectorPool::start_with_outages`]).
    pub fn start_with_outages(
        servers: usize,
        outages: Vec<Vec<TickWindow>>,
        consumer: Arc<dyn ShipmentConsumer>,
    ) -> Self {
        Self::start_traced(
            servers,
            outages,
            consumer,
            ShipmentTracer::off(),
            FlightRecorder::off(),
        )
    }

    /// [`Self::start_with_outages`] with shipment tracing: the handles
    /// this pool hands out emit collect-hop spans through `tracer`
    /// (shard-stamped when the tracer is), attach [`BatchMeta`] to every
    /// accepted batch, and record failovers into `recorder`.
    pub fn start_traced(
        servers: usize,
        mut outages: Vec<Vec<TickWindow>>,
        consumer: Arc<dyn ShipmentConsumer>,
        tracer: ShipmentTracer,
        recorder: FlightRecorder,
    ) -> Self {
        let servers = servers.max(1);
        outages.resize(servers, Vec::new());
        let mut senders = Vec::with_capacity(servers);
        let mut handles = Vec::with_capacity(servers);
        for _ in 0..servers {
            let (tx, rx) = unbounded::<Shipment>();
            senders.push(tx);
            let consumer = Arc::clone(&consumer);
            handles.push(std::thread::spawn(move || {
                let mut totals = StreamingTotals::default();
                while let Ok(shipment) = rx.recv() {
                    match shipment {
                        Shipment::Batch(m, seq, records, meta) => {
                            if records.is_empty() {
                                continue;
                            }
                            totals.total_records += records.len();
                            totals.stored_bytes +=
                                RecordBatch::compress(&records).compressed_bytes();
                            consumer.batch(m, seq, records, meta);
                        }
                        Shipment::Name(m, seq, name) => consumer.name(m, seq, name),
                    }
                }
                totals
            }));
        }
        StreamingPool {
            senders,
            handles,
            outages: Arc::new(outages),
            tracer,
            recorder,
        }
    }

    /// The handle a machine's agent should ship through; the assignment
    /// matches [`CollectorPool::handle_for`] exactly.
    pub fn handle_for(&self, machine: MachineId) -> CollectorHandle {
        CollectorHandle {
            senders: self.senders.clone(),
            primary: machine.0 as usize % self.senders.len(),
            outages: Arc::clone(&self.outages),
            failovers: 0,
            tracer: self.tracer.clone(),
            recorder: self.recorder.clone(),
        }
    }

    /// Closes the streams, joins the servers and sums their accounting.
    /// As with [`CollectorPool::finish`], every handle must be dropped
    /// first, and a panicked forwarding thread (most likely a panic in
    /// the [`ShipmentConsumer`]) comes back as a [`CollectionFault`].
    pub fn finish(self) -> Result<StreamingTotals, CollectionFault> {
        drop(self.senders);
        let mut totals = StreamingTotals::default();
        let mut fault = None;
        for (server, h) in self.handles.into_iter().enumerate() {
            match h.join() {
                Ok(t) => {
                    totals.total_records += t.total_records;
                    totals.stored_bytes += t.stored_bytes;
                }
                Err(payload) => {
                    fault.get_or_insert(CollectionFault {
                        server,
                        message: panic_message(payload),
                    });
                }
            }
        }
        match fault {
            Some(f) => Err(f),
            None => Ok(totals),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_io::{EventKind, MajorFunction, NtStatus};

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            code: EventKind::Irp(MajorFunction::Read).code(),
            flags: 0,
            status: NtStatus::Success,
            set_info: None,
            access: None,
            disposition: None,
            options: None,
            file_object: i,
            fcb: 0,
            process: 0,
            volume: 0,
            offset: 0,
            length: 512,
            transferred: 512,
            file_size: 0,
            byte_offset: 0,
            start_ticks: i * 1000,
            end_ticks: i * 1000 + 10,
        }
    }

    #[test]
    fn pool_collects_from_concurrent_agents() {
        let pool = CollectorPool::start(3);
        std::thread::scope(|scope| {
            for m in 0..9u32 {
                let mut handle = pool.handle_for(MachineId(m));
                scope.spawn(move || {
                    for batch in 0..4u64 {
                        let records: Vec<TraceRecord> =
                            (0..50).map(|i| rec(batch * 50 + i)).collect();
                        handle.ingest(MachineId(m), &records);
                    }
                    handle.ingest_name(
                        MachineId(m),
                        NameRecord {
                            file_object: m as u64,
                            volume: 0,
                            process: 0,
                            path: format!(r"\m{m}.txt"),
                            at_ticks: 0,
                        },
                    );
                });
            }
        });
        let merged = pool.finish().expect("no server died");
        assert_eq!(merged.total_records(), 9 * 4 * 50);
        assert_eq!(merged.machines().len(), 9);
        for m in 0..9u32 {
            assert_eq!(merged.records_for(MachineId(m)).len(), 200);
            assert_eq!(merged.names_for(MachineId(m)).len(), 1);
        }
    }

    #[test]
    fn machine_assignment_is_stable() {
        let pool = CollectorPool::start(3);
        let a = pool.handle_for(MachineId(4));
        let b = pool.handle_for(MachineId(4));
        assert_eq!(a.primary, b.primary, "same machine, same server");
        let c = pool.handle_for(MachineId(5));
        assert_ne!(a.primary, c.primary, "different machine, other server");
        // Handles keep their server's channel open; drop them before the
        // pool shuts down.
        drop((a, b, c));
        pool.finish().expect("no server died");
    }

    #[test]
    fn empty_batches_are_not_shipped() {
        let pool = CollectorPool::start(1);
        let mut h = pool.handle_for(MachineId(0));
        h.ingest(MachineId(0), &[]);
        drop(h);
        let merged = pool.finish().expect("no server died");
        assert_eq!(merged.total_records(), 0);
    }

    #[test]
    fn outage_refuses_then_fails_over() {
        // Server 0 down for ticks [100, 200); server 1 down always.
        let outages = vec![
            vec![TickWindow::new(100, 200)],
            vec![TickWindow::new(0, u64::MAX)],
        ];
        let pool = CollectorPool::start_with_outages(2, outages);
        let mut h = pool.handle_for(MachineId(0)); // primary = server 0
        let records: Vec<TraceRecord> = (0..10).map(rec).collect();
        assert!(h.ingest_at(MachineId(0), 0, &records, 50), "before outage");
        assert!(
            !h.ingest_at(MachineId(0), 1, &records, 150),
            "every server down: refused"
        );
        assert!(h.ingest_at(MachineId(0), 1, &records, 250), "after outage");
        assert_eq!(h.failovers(), 0, "primary recovered, no failover needed");

        // Machine 1's primary is the always-down server 1: it fails over.
        let mut h1 = pool.handle_for(MachineId(1));
        assert!(h1.ingest_at(MachineId(1), 0, &records, 50));
        assert_eq!(h1.failovers(), 1);
        drop((h, h1));
        let merged = pool.finish().expect("no server died");
        assert_eq!(merged.total_records(), 30);
    }

    #[test]
    fn streaming_pool_accounts_exactly_like_storage() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Counter {
            records: Mutex<usize>,
            names: Mutex<usize>,
        }
        impl ShipmentConsumer for Counter {
            fn batch(
                &self,
                _m: MachineId,
                _seq: Option<u64>,
                records: Vec<TraceRecord>,
                meta: Option<BatchMeta>,
            ) {
                assert!(meta.is_none(), "untraced pool attaches no baggage");
                *self.records.lock().unwrap() += records.len();
            }
            fn name(&self, _m: MachineId, _seq: Option<u64>, _name: NameRecord) {
                *self.names.lock().unwrap() += 1;
            }
        }

        let ship = |pool_handle: &mut CollectorHandle| {
            for m in 0..4u32 {
                for batch in 0..3u64 {
                    let records: Vec<TraceRecord> = (0..25).map(|i| rec(batch * 25 + i)).collect();
                    assert!(pool_handle.ingest_at(MachineId(m), batch, &records, 10));
                }
                assert!(pool_handle.ingest_name_at(
                    MachineId(m),
                    3,
                    NameRecord {
                        file_object: m as u64,
                        volume: 0,
                        process: 0,
                        path: format!(r"\m{m}.txt"),
                        at_ticks: 0,
                    },
                    10,
                ));
            }
        };

        let stored = CollectorPool::start(2);
        let mut h = stored.handle_for(MachineId(0));
        ship(&mut h);
        drop(h);
        let merged = stored.finish().expect("no server died");

        let consumer = Arc::new(Counter::default());
        let streaming = StreamingPool::start(2, consumer.clone() as Arc<dyn ShipmentConsumer>);
        let mut h = streaming.handle_for(MachineId(0));
        ship(&mut h);
        drop(h);
        let totals = streaming.finish().expect("no server died");

        assert_eq!(totals.total_records, merged.total_records());
        assert_eq!(totals.stored_bytes, merged.stored_bytes());
        assert_eq!(*consumer.records.lock().unwrap(), totals.total_records);
        assert_eq!(*consumer.names.lock().unwrap(), 4);
    }

    #[test]
    fn panicking_consumer_is_a_collection_fault_not_an_abort() {
        struct Bomb;
        impl ShipmentConsumer for Bomb {
            fn batch(
                &self,
                _m: MachineId,
                _seq: Option<u64>,
                _records: Vec<TraceRecord>,
                _meta: Option<BatchMeta>,
            ) {
                panic!("consumer exploded");
            }
            fn name(&self, _m: MachineId, _seq: Option<u64>, _name: NameRecord) {}
        }
        let pool = StreamingPool::start(1, Arc::new(Bomb));
        let mut h = pool.handle_for(MachineId(0));
        let records: Vec<TraceRecord> = (0..5).map(rec).collect();
        h.ingest(MachineId(0), &records);
        drop(h);
        // Before finish() returned Result, the dead thread's panic was
        // re-raised here and took the whole process down.
        let fault = pool.finish().expect_err("the server thread died");
        assert_eq!(fault.server, 0);
        assert!(fault.message.contains("consumer exploded"), "{fault}");
        assert!(fault.to_string().contains("collection server 0"));
    }

    #[test]
    fn traced_pool_stamps_meta_and_records_failovers() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct MetaLog {
            seen: Mutex<Vec<(u64, BatchMeta)>>,
        }
        impl ShipmentConsumer for MetaLog {
            fn batch(
                &self,
                _m: MachineId,
                seq: Option<u64>,
                _records: Vec<TraceRecord>,
                meta: Option<BatchMeta>,
            ) {
                self.seen
                    .lock()
                    .unwrap()
                    .push((seq.unwrap(), meta.expect("traced pool attaches baggage")));
            }
            fn name(&self, _m: MachineId, _seq: Option<u64>, _name: NameRecord) {}
        }

        let tracer = ShipmentTracer::new(11, 10_000);
        let recorder = FlightRecorder::new(16);
        // Primary (server 0) down in [100, 200): batch 1 fails over.
        let outages = vec![vec![TickWindow::new(100, 200)], Vec::new()];
        let consumer = Arc::new(MetaLog::default());
        let pool = StreamingPool::start_traced(
            2,
            outages,
            consumer.clone() as Arc<dyn ShipmentConsumer>,
            tracer.clone().for_shard(3),
            recorder.clone(),
        );
        let mut h = pool.handle_for(MachineId(0));
        let records: Vec<TraceRecord> = (0..5).map(rec).collect();
        assert!(h.ingest_at(MachineId(0), 0, &records, 50));
        assert!(h.ingest_at(MachineId(0), 1, &records, 150), "failover");
        drop(h);
        pool.finish().expect("no server died");

        let mut seen = consumer.seen.lock().unwrap().clone();
        seen.sort_by_key(|&(seq, _)| seq);
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].1.server, 0);
        assert_eq!(seen[0].1.deliver_ticks, 50);
        assert_eq!(seen[1].1.server, 1, "batch 1 landed on the secondary");
        // The carried context is the collect hop of the derived chain.
        let expect = TraceContext::root(11, 0, 0)
            .child(nt_obs::Hop::Ship)
            .child(nt_obs::Hop::Collect);
        assert_eq!(seen[0].1.ctx, expect);

        // Collect spans were emitted with server + shard attribution.
        let spans = tracer.take_sorted();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.hop == nt_obs::Hop::Collect));
        assert_eq!(spans[1].server, Some(1));
        assert_eq!(spans[1].shard, Some(3));

        // The failover landed in the machine's flight-recorder scope.
        let snap = recorder.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, RecorderScope::Machine(0));
        assert_eq!(
            snap[0].1,
            vec![FlightEvent::Failover {
                ticks: 150,
                seq: 1,
                from_server: 0,
                to_server: 1,
            }]
        );
    }

    #[test]
    fn failover_batches_reassemble_in_sequence_order() {
        // Primary down in the middle window; the agent ships batch 1 to
        // the secondary, then batch 2 back on the primary. The merged
        // store must return them in sequence order regardless of which
        // server stored what.
        let outages = vec![vec![TickWindow::new(100, 200)], Vec::new()];
        let pool = CollectorPool::start_with_outages(2, outages);
        let mut h = pool.handle_for(MachineId(0));
        let batch = |lo: u64| -> Vec<TraceRecord> { (lo..lo + 5).map(rec).collect() };
        assert!(h.ingest_at(MachineId(0), 0, &batch(0), 50));
        assert!(h.ingest_at(MachineId(0), 1, &batch(5), 150), "failover");
        assert!(h.ingest_at(MachineId(0), 2, &batch(10), 250));
        assert_eq!(h.failovers(), 1);
        drop(h);
        let merged = pool.finish().expect("no server died");
        let back = merged.records_for(MachineId(0));
        assert_eq!(back.len(), 15);
        let ids: Vec<u64> = back.iter().map(|r| r.file_object).collect();
        assert_eq!(ids, (0..15).collect::<Vec<u64>>(), "agent order restored");
    }
}
