//! Service-time model for the four major request classes of figure 13.
//!
//! The study's latency CDFs (figures 13/14) separate FastIO reads/writes
//! (cache copies: single-digit microseconds) from IRP reads/writes (packet
//! overhead plus, on a miss, a disk access: hundreds of microseconds to
//! tens of milliseconds). The parameters below model the study's hardware
//! — 200 MHz P6 workstations, local IDE disks, 100 Mbit switched Ethernet
//! to the file servers — and each volume keeps a FIFO disk queue so
//! bursts see queueing delay, which the heavy-tailed arrival process
//! amplifies (§7).

use nt_sim::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

/// Disk/service parameters for one volume.
#[derive(Clone, Debug)]
pub struct DiskParams {
    /// Fixed positioning cost per disk access (seek + rotation), lower
    /// bound, in microseconds.
    pub seek_min_us: u64,
    /// Upper bound of the positioning cost in microseconds.
    pub seek_max_us: u64,
    /// Sequential transfer rate in bytes per microsecond (≈ MB/s).
    pub transfer_bytes_per_us: u64,
    /// Extra per-request network round-trip for redirector volumes, in
    /// microseconds (0 for local disks).
    pub network_rtt_us: u64,
}

impl DiskParams {
    /// A 1998-era local IDE disk (§2: 2–6 GB IDE on the desktops).
    pub fn local_ide() -> Self {
        DiskParams {
            seek_min_us: 2_000,
            seek_max_us: 14_000,
            transfer_bytes_per_us: 8,
            network_rtt_us: 0,
        }
    }

    /// An Ultra-2 SCSI disk (§2: the scientific machines).
    pub fn local_scsi() -> Self {
        DiskParams {
            seek_min_us: 1_000,
            seek_max_us: 9_000,
            transfer_bytes_per_us: 18,
            network_rtt_us: 0,
        }
    }

    /// An SSD-class device — an anachronism for the 1998 study, but the
    /// what-if replay axis the §9 simulation studies call for: near-zero
    /// positioning cost and an order of magnitude more bandwidth, so a
    /// policy matrix can ask which 1998 cache decisions stop mattering
    /// once seeks are free.
    pub fn ssd_class() -> Self {
        DiskParams {
            seek_min_us: 40,
            seek_max_us: 120,
            transfer_bytes_per_us: 400,
            network_rtt_us: 0,
        }
    }

    /// A CIFS share over 100 Mbit switched Ethernet (§2). The server's own
    /// cache absorbs most seeks, so the positioning cost is lower but every
    /// request pays a round trip.
    pub fn network_share() -> Self {
        DiskParams {
            seek_min_us: 500,
            seek_max_us: 8_000,
            transfer_bytes_per_us: 10,
            network_rtt_us: 900,
        }
    }
}

/// CPU-side service parameters, shared by all volumes of a machine.
#[derive(Clone, Debug)]
pub struct LatencyParams {
    /// Fixed cost of a FastIO call that is resolved in the cache, in
    /// 100 ns ticks.
    pub fastio_base_ticks: u64,
    /// Fixed cost of building, dispatching and completing an IRP, in
    /// 100 ns ticks.
    pub irp_base_ticks: u64,
    /// Cache copy throughput in bytes per 100 ns tick.
    pub copy_bytes_per_tick: u64,
    /// Cost of a metadata-only operation (query/set information,
    /// directory entry fetch, control op) resolved from cached metadata,
    /// in 100 ns ticks.
    pub metadata_ticks: u64,
}

impl Default for LatencyParams {
    fn default() -> Self {
        LatencyParams {
            // ~2 us procedural call + copy.
            fastio_base_ticks: 20,
            // ~30 us packet path.
            irp_base_ticks: 300,
            // ~80 MB/s memcpy on a 200 MHz P6: 8 bytes per 100 ns.
            copy_bytes_per_tick: 8,
            // ~12 us for cached metadata.
            metadata_ticks: 120,
        }
    }
}

/// The machine-wide latency model plus per-volume disk queues.
pub struct LatencyModel {
    params: LatencyParams,
    disks: Vec<DiskParams>,
    /// Per-volume time at which the disk becomes idle (FIFO queue).
    free_at: Vec<SimTime>,
    /// Total service ticks across every disk transfer (positioning +
    /// transfer + RTT, excluding queueing) — how long the disks were
    /// actually busy, the latency-model axis of the what-if studies.
    busy_ticks: u64,
}

impl LatencyModel {
    /// Creates a model with the given CPU parameters and per-volume disks.
    pub fn new(params: LatencyParams, disks: Vec<DiskParams>) -> Self {
        let free_at = vec![SimTime::ZERO; disks.len()];
        LatencyModel {
            params,
            disks,
            free_at,
            busy_ticks: 0,
        }
    }

    /// Registers one more volume, returning its index.
    pub fn add_volume(&mut self, disk: DiskParams) -> usize {
        self.disks.push(disk);
        self.free_at.push(SimTime::ZERO);
        self.disks.len() - 1
    }

    /// The CPU-side parameters.
    pub fn params(&self) -> &LatencyParams {
        &self.params
    }

    /// Service time of a FastIO cache copy of `bytes`.
    pub fn fastio_copy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ticks(
            self.params.fastio_base_ticks + bytes / self.params.copy_bytes_per_tick.max(1),
        )
    }

    /// Service time of an IRP that is satisfied without disk I/O
    /// (cache-resident data or cached metadata) copying `bytes`.
    pub fn irp_cached(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ticks(
            self.params.irp_base_ticks + bytes / self.params.copy_bytes_per_tick.max(1),
        )
    }

    /// Service time of a metadata operation (control, query, directory).
    pub fn metadata_op(&self) -> SimDuration {
        SimDuration::from_ticks(self.params.irp_base_ticks + self.params.metadata_ticks)
    }

    /// FastIO metadata query (QueryBasicInfo etc.).
    pub fn fastio_metadata(&self) -> SimDuration {
        SimDuration::from_ticks(self.params.fastio_base_ticks + self.params.metadata_ticks / 4)
    }

    /// Completion time of a disk transfer of `bytes` on `volume` issued at
    /// `now`: IRP overhead, FIFO queueing behind earlier transfers, a
    /// sampled positioning cost and the sequential transfer.
    ///
    /// Advances the volume's queue; returns the absolute completion time.
    pub fn disk_io(
        &mut self,
        volume: usize,
        bytes: u64,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> SimTime {
        let disk = &self.disks[volume.min(self.disks.len().saturating_sub(1))];
        let seek_us = if disk.seek_max_us > disk.seek_min_us {
            rng.gen_range(disk.seek_min_us..=disk.seek_max_us)
        } else {
            disk.seek_min_us
        };
        let service = SimDuration::from_micros(
            disk.network_rtt_us + seek_us + bytes / disk.transfer_bytes_per_us.max(1),
        );
        let start =
            self.free_at[volume].max(now + SimDuration::from_ticks(self.params.irp_base_ticks));
        let done = start + service;
        self.free_at[volume] = done;
        self.busy_ticks += service.ticks();
        done
    }

    /// Time at which a volume's disk queue drains (for tests/metrics).
    pub fn queue_free_at(&self, volume: usize) -> SimTime {
        self.free_at[volume]
    }

    /// Cumulative disk service ticks across all volumes (queueing
    /// excluded): the disks' busy time under the current [`DiskParams`].
    pub fn disk_busy_ticks(&self) -> u64 {
        self.busy_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model() -> LatencyModel {
        LatencyModel::new(
            LatencyParams::default(),
            vec![DiskParams::local_ide(), DiskParams::network_share()],
        )
    }

    #[test]
    fn fastio_is_much_cheaper_than_irp() {
        let m = model();
        assert!(m.fastio_copy(4096) < m.irp_cached(4096));
        assert!(m.fastio_copy(0).ticks() >= m.params().fastio_base_ticks);
    }

    #[test]
    fn copies_scale_with_size() {
        let m = model();
        assert!(m.fastio_copy(65_536) > m.fastio_copy(512));
        assert!(m.irp_cached(65_536) > m.irp_cached(512));
    }

    #[test]
    fn disk_io_queues_fifo() {
        let mut m = model();
        let mut rng = SmallRng::seed_from_u64(7);
        let now = SimTime::from_secs(1);
        let d1 = m.disk_io(0, 65_536, now, &mut rng);
        let d2 = m.disk_io(0, 65_536, now, &mut rng);
        assert!(d2 > d1, "second transfer waits for the first");
        assert_eq!(m.queue_free_at(0), d2);
        // The other volume's queue is independent.
        let d3 = m.disk_io(1, 4_096, now, &mut rng);
        assert!(d3 < d2 + SimDuration::from_secs(1));
        assert!(m.queue_free_at(1) == d3);
    }

    #[test]
    fn disk_latency_in_plausible_range() {
        let mut m = model();
        let mut rng = SmallRng::seed_from_u64(7);
        let now = SimTime::from_secs(5);
        let done = m.disk_io(0, 4_096, now, &mut rng);
        let lat = done.saturating_since(now);
        assert!(lat >= SimDuration::from_millis(2), "got {lat}");
        assert!(lat <= SimDuration::from_millis(20), "got {lat}");
    }

    #[test]
    fn network_share_pays_rtt() {
        let mut m = LatencyModel::new(
            LatencyParams::default(),
            vec![DiskParams {
                seek_min_us: 0,
                seek_max_us: 0,
                transfer_bytes_per_us: 1_000,
                network_rtt_us: 900,
            }],
        );
        let mut rng = SmallRng::seed_from_u64(7);
        let done = m.disk_io(0, 0, SimTime::ZERO, &mut rng);
        assert!(done.saturating_since(SimTime::ZERO) >= SimDuration::from_micros(900));
    }
}
