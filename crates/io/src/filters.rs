//! The stock filter drivers the study's stack ships with.
//!
//! * [`ObserverFilter`] — the paper's instrument itself: wraps an
//!   [`IoObserver`] (the trace agent, a test vector, or nothing) as a
//!   stack layer that consumes every trace record.
//! * [`SpanFilter`] — nt-obs span instrumentation as a layer: opens a
//!   dispatch span when a packet descends past it and closes it when the
//!   completion comes back up.
//! * [`AntivirusFilter`] — the canonical third-party filter the paper
//!   names (§3.2: "virus scanners are implemented this way"): adds scan
//!   latency to every create and read passing through, visible as its
//!   own phase in the runtime profile.
//! * [`FastIoVeto`] — a filter whose FastIO table is empty, forcing the
//!   documented IRP fallback for every procedural call (what a filter
//!   that fails to implement the FastIO methods does to a system, §10).

use std::any::Any;

use nt_obs::{Phase, SpanGuard, Telemetry};
use nt_sim::SimDuration;

use crate::fastio::FastIoDispatch;
use crate::machine::OpReply;
use crate::observer::{FileObjectInfo, IoObserver};
use crate::request::{IoEvent, MajorFunction};
use crate::stack::{FilterAction, FilterDriver, IrpFrame};

/// An [`IoObserver`] attached as a stack layer.
///
/// Observation only: the packet path is untouched (`intercepts` stays
/// false, the FastIO table stays full), so a stack holding nothing but
/// an `ObserverFilter` adds no work to dispatch beyond the record
/// broadcast the observer exists for.
pub struct ObserverFilter<O: IoObserver> {
    observer: O,
}

impl<O: IoObserver> ObserverFilter<O> {
    /// Wraps `observer` as an attachable layer.
    pub fn new(observer: O) -> Self {
        ObserverFilter { observer }
    }

    /// The wrapped observer.
    pub fn inner(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the wrapped observer.
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.observer
    }
}

impl<O: IoObserver> FilterDriver for ObserverFilter<O> {
    fn name(&self) -> &'static str {
        "observer"
    }

    fn wants_events(&self) -> bool {
        O::ENABLED
    }

    fn event(&mut self, event: &IoEvent) {
        self.observer.event(event);
    }

    fn file_object(&mut self, info: &FileObjectInfo) {
        self.observer.file_object(info);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// nt-obs span instrumentation as a stack layer.
///
/// A packet descending past this filter opens a [`Phase::Dispatch`] span
/// named after the frame's label; the completion coming back up closes
/// it. Spans nest naturally when an operation dispatches another (an
/// image load issuing its create, for instance), because the guards form
/// a LIFO that mirrors the descent.
pub struct SpanFilter {
    telemetry: Telemetry,
    open: Vec<SpanGuard>,
}

impl SpanFilter {
    /// A span layer logging through `telemetry`.
    pub fn new(telemetry: Telemetry) -> Self {
        SpanFilter {
            telemetry,
            open: Vec::new(),
        }
    }
}

impl FilterDriver for SpanFilter {
    fn name(&self) -> &'static str {
        "spans"
    }

    fn intercepts(&self) -> bool {
        true
    }

    fn pre(&mut self, frame: &mut IrpFrame) -> FilterAction {
        self.open
            .push(self.telemetry.span(Phase::Dispatch, frame.label, frame.now));
        FilterAction::Pass
    }

    fn post(&mut self, _frame: &IrpFrame, _reply: &mut OpReply) {
        self.open.pop();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A virus-scanner layer: every create and read passing through pays a
/// scan delay before reaching the FSD.
///
/// The delay moves the frame's clock forward, so the FSD serves the
/// request at the delayed time and the whole slowdown lands in the
/// trace's own timestamps — the §3.2 observation that filter drivers are
/// where real-world I/O divergence comes from, made measurable. Each
/// scan also records a [`Phase::Filter`] span, giving the layer its own
/// row in the runtime profile.
pub struct AntivirusFilter {
    scan_cost: SimDuration,
    telemetry: Telemetry,
    scans: u64,
}

impl AntivirusFilter {
    /// A scanner charging `scan_cost` per create/read.
    pub fn new(scan_cost: SimDuration) -> Self {
        AntivirusFilter {
            scan_cost,
            telemetry: Telemetry::off(),
            scans: 0,
        }
    }

    /// Routes the scanner's spans through `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Files scanned so far.
    pub fn scans(&self) -> u64 {
        self.scans
    }
}

impl FilterDriver for AntivirusFilter {
    fn name(&self) -> &'static str {
        "antivirus"
    }

    fn intercepts(&self) -> bool {
        true
    }

    fn pre(&mut self, frame: &mut IrpFrame) -> FilterAction {
        if matches!(
            frame.major,
            Some(MajorFunction::Create) | Some(MajorFunction::Read)
        ) {
            self.scans += 1;
            let _scan = self.telemetry.span(Phase::Filter, "av.scan", frame.now);
            frame.now += self.scan_cost;
        }
        FilterAction::Pass
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A filter exposing an empty FastIO table.
///
/// Attaching one turns every would-be FastIO call into its IRP fallback
/// machine-wide — same service times, same record stream modulo the
/// [`EventKind`](crate::request::EventKind) relabelling — which is how
/// `tests/filter_stack.rs` proves the fallback rule preserves the fact
/// tables.
#[derive(Default)]
pub struct FastIoVeto;

impl FilterDriver for FastIoVeto {
    fn name(&self) -> &'static str {
        "fastio-veto"
    }

    fn fastio(&self) -> FastIoDispatch {
        FastIoDispatch::empty()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::VecObserver;
    use crate::stack::DriverStack;
    use nt_sim::SimTime;

    #[test]
    fn observer_filter_relays_and_is_findable() {
        let mut stack = DriverStack::new();
        stack.attach(Box::new(ObserverFilter::new(VecObserver::default())));
        assert!(stack.events_wanted());
        assert!(!stack.intercepting(), "observation is not interception");
        let ev = IoEvent {
            kind: crate::request::EventKind::Irp(MajorFunction::Create),
            file_object: crate::types::FileObjectId(1),
            fcb: crate::types::FcbId(1),
            process: crate::types::ProcessId(1),
            volume: 0,
            local: true,
            paging_io: false,
            readahead: false,
            offset: 0,
            length: 0,
            transferred: 0,
            file_size: 0,
            byte_offset: 0,
            status: crate::status::NtStatus::Success,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            access: None,
            disposition: None,
            options: None,
            set_info: None,
            created: false,
        };
        stack.event(&ev);
        let filter: &ObserverFilter<VecObserver> = stack.find().expect("attached above");
        assert_eq!(filter.inner().events.len(), 1);
    }

    #[test]
    fn antivirus_charges_latency_on_create_and_read_only() {
        let mut av = AntivirusFilter::new(SimDuration::from_millis(2));
        let mut frame = IrpFrame {
            major: Some(MajorFunction::Read),
            label: "read",
            handle: None,
            process: None,
            offset: 0,
            length: 4096,
            now: SimTime::from_secs(1),
        };
        assert!(matches!(av.pre(&mut frame), FilterAction::Pass));
        assert_eq!(
            frame.now,
            SimTime::from_secs(1) + SimDuration::from_millis(2)
        );
        assert_eq!(av.scans(), 1);
        let mut close = IrpFrame {
            major: Some(MajorFunction::Close),
            label: "close",
            ..frame
        };
        let before = close.now;
        av.pre(&mut close);
        assert_eq!(close.now, before, "closes are not scanned");
        assert_eq!(av.scans(), 1);
    }

    #[test]
    fn veto_empties_the_stack_table() {
        let mut stack = DriverStack::new();
        stack.attach(Box::new(FastIoVeto));
        assert!(stack.fastio().is_empty());
        assert!(!stack.fastio_supported(crate::request::FastIoKind::Read));
    }
}
