//! Metadata queries and sets, volume control and the §8.3/§8.4 control
//! traffic.

use nt_fs::{FileTimes, NtPath, VolumeId};
use nt_sim::SimTime;

use crate::machine::{emit_event, Machine, OpReply};
use crate::observer::IoObserver;
use crate::request::{EventKind, FastIoKind, IoEvent, MajorFunction, SetInfoKind};
use crate::stack::IrpFrame;
use crate::status::NtStatus;
use crate::types::{FcbId, FileObjectId, HandleId, ProcessId};

impl<O: IoObserver> Machine<O> {
    /// Generic metadata operation helper (query information, set basic
    /// information, volume queries, FSCTLs). `status` decides the §8.4
    /// control-failure accounting.
    pub(crate) fn metadata_irp(
        &mut self,
        kind: EventKind,
        handle: Option<HandleId>,
        set_info: Option<SetInfoKind>,
        status: NtStatus,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let (fo, fcb, volume, process) = match handle.and_then(|h| self.handles.get_raw(h.0)) {
            Some(h) => (h.fo, h.fcb, h.volume, h.process),
            None => (FileObjectId(0), FcbId(u64::MAX), VolumeId(0), ProcessId(0)),
        };
        let local = self.ns.is_local(volume);
        let end = now + self.latency.metadata_op();
        self.metrics.control_ops += 1;
        if status.is_error() {
            self.metrics.control_failures += 1;
        }
        emit_event!(
            self,
            IoEvent {
                kind,
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size: 0,
                byte_offset: 0,
                status,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info,
                created: false,
            }
        );
        OpReply::at(status, end)
    }

    /// Builds the frame a handle-addressed metadata IRP descends with.
    pub(crate) fn info_frame(
        &self,
        major: MajorFunction,
        label: &'static str,
        handle: HandleId,
        now: SimTime,
    ) -> IrpFrame {
        IrpFrame {
            major: Some(major),
            label,
            handle: Some(handle),
            process: self.handles.get_raw(handle.0).map(|h| h.process),
            offset: 0,
            length: 0,
            now,
        }
    }

    /// IRP_MJ_QUERY_INFORMATION on an open handle (attributes, sizes).
    pub fn query_information(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        let frame = self.info_frame(
            MajorFunction::QueryInformation,
            "query_information",
            handle,
            now,
        );
        self.dispatch(frame, |m, f| {
            let ok = m.handles.contains_raw(handle.0);
            m.metadata_irp(
                EventKind::Irp(MajorFunction::QueryInformation),
                ok.then_some(handle),
                None,
                if ok {
                    NtStatus::Success
                } else {
                    NtStatus::InvalidHandle
                },
                f.now,
            )
        })
    }

    /// FastIO QueryBasicInfo — the procedural metadata path the Win32
    /// GetFileAttributes family rides when the file is already open.
    ///
    /// Procedural means no stack descent; but if any layer opted the
    /// routine out of its table, the I/O manager builds the
    /// query-information IRP instead and sends *that* down the stack.
    pub fn fast_query_basic(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.pump(now);
        if self.stack.fastio_supported(FastIoKind::QueryBasicInfo) {
            return self.fast_query_basic_fsd(handle, now);
        }
        let frame = self.info_frame(
            MajorFunction::QueryInformation,
            "fast_query_basic",
            handle,
            now,
        );
        self.dispatch(frame, |m, f| m.fast_query_basic_fsd(handle, f.now))
    }

    fn fast_query_basic_fsd(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        let Some(h) = self.handles.get_raw(handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (fo, fcb, volume, process) = (h.fo, h.fcb, h.volume, h.process);
        let local = self.ns.is_local(volume);
        let end = now + self.latency.fastio_metadata();
        self.metrics.control_ops += 1;
        emit_event!(
            self,
            IoEvent {
                kind: self.fastio_event_kind(FastIoKind::QueryBasicInfo),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size: 0,
                byte_offset: 0,
                status: NtStatus::Success,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        OpReply::at(NtStatus::Success, end)
    }

    /// The "is volume mounted" FSCTL — §8.3: issued by the Win32 runtime
    /// during name validation, up to 40 times a second on a busy system.
    pub fn is_volume_mounted(
        &mut self,
        process: ProcessId,
        volume: VolumeId,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let frame = IrpFrame {
            major: Some(MajorFunction::FileSystemControl),
            label: "is_volume_mounted",
            handle: None,
            process: Some(process),
            offset: 0,
            length: 0,
            now,
        };
        self.dispatch(frame, |m, f| {
            let now = f.now;
            let local = m.ns.is_local(volume);
            let end = now + m.latency.fastio_metadata();
            m.metrics.control_ops += 1;
            emit_event!(
                m,
                IoEvent {
                    kind: EventKind::Irp(MajorFunction::FileSystemControl),
                    file_object: FileObjectId(0),
                    fcb: FcbId(u64::MAX),
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset: 0,
                    length: 0,
                    transferred: 0,
                    file_size: 0,
                    byte_offset: 0,
                    status: NtStatus::Success,
                    start: now,
                    end,
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: None,
                    created: false,
                }
            );
            OpReply::at(NtStatus::Success, end)
        })
    }

    /// IRP_MJ_QUERY_VOLUME_INFORMATION — the free-space check
    /// applications run before large writes.
    pub fn query_volume_information(
        &mut self,
        process: ProcessId,
        volume: VolumeId,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let frame = IrpFrame {
            major: Some(MajorFunction::QueryVolumeInformation),
            label: "query_volume_information",
            handle: None,
            process: Some(process),
            offset: 0,
            length: 0,
            now,
        };
        self.dispatch(frame, |m, f| {
            let now = f.now;
            let status = match m.ns.volume(volume) {
                Ok(_) => NtStatus::Success,
                Err(e) => NtStatus::from(e),
            };
            let local = m.ns.is_local(volume);
            let end = now + m.latency.metadata_op();
            m.metrics.control_ops += 1;
            if status.is_error() {
                m.metrics.control_failures += 1;
            }
            emit_event!(
                m,
                IoEvent {
                    kind: EventKind::Irp(MajorFunction::QueryVolumeInformation),
                    file_object: FileObjectId(0),
                    fcb: FcbId(u64::MAX),
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset: 0,
                    length: 0,
                    transferred: 0,
                    file_size: 0,
                    byte_offset: 0,
                    status,
                    start: now,
                    end,
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: None,
                    created: false,
                }
            );
            OpReply::at(status, end)
        })
    }

    /// The free bytes remaining on a volume (what the query reports).
    pub fn volume_free_bytes(&self, volume: VolumeId) -> u64 {
        self.ns
            .volume(volume)
            .map(|v| {
                let s = v.stats();
                s.capacity.saturating_sub(s.allocated_bytes)
            })
            .unwrap_or(0)
    }

    /// An unsupported device control — a §8.4 control failure.
    pub fn invalid_control(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        let frame = self.info_frame(MajorFunction::DeviceControl, "invalid_control", handle, now);
        self.dispatch(frame, |m, f| {
            m.metadata_irp(
                EventKind::Irp(MajorFunction::DeviceControl),
                Some(handle),
                None,
                NtStatus::InvalidDeviceRequest,
                f.now,
            )
        })
    }

    /// SetEndOfFile (IRP_MJ_SET_INFORMATION / FileEndOfFileInformation).
    pub fn set_end_of_file(&mut self, handle: HandleId, size: u64, now: SimTime) -> OpReply {
        self.pump(now);
        let frame = self.info_frame(
            MajorFunction::SetInformation,
            "set_end_of_file",
            handle,
            now,
        );
        self.dispatch(frame, |m, f| {
            let now = f.now;
            let Some(h) = m.handles.get_raw(handle.0) else {
                return OpReply::at(NtStatus::InvalidHandle, now);
            };
            let (volume, node) = (h.volume, h.node);
            let status = match m
                .ns
                .volume_mut(volume)
                .and_then(|v| v.set_file_size(node, size, now))
            {
                Ok(()) => NtStatus::Success,
                Err(e) => NtStatus::from(e),
            };
            m.metadata_irp(
                EventKind::Irp(MajorFunction::SetInformation),
                Some(handle),
                Some(SetInfoKind::EndOfFile),
                status,
                now,
            )
        })
    }

    /// Marks the file delete-on-close (FileDispositionInformation) — the
    /// §6.3 explicit-delete path used by Win32 DeleteFile.
    pub fn set_delete_disposition(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.pump(now);
        let frame = self.info_frame(
            MajorFunction::SetInformation,
            "set_delete_disposition",
            handle,
            now,
        );
        self.dispatch(frame, |m, f| {
            let now = f.now;
            let Some(h) = m.handles.get_raw(handle.0) else {
                return OpReply::at(NtStatus::InvalidHandle, now);
            };
            let (volume, node, fcb_slot) = (h.volume, h.node, h.fcb_slot);
            let status = match m
                .ns
                .volume_mut(volume)
                .and_then(|v| v.set_delete_pending(node, true))
            {
                Ok(()) => {
                    if let Some(fc) = m.fcbs.get_mut(fcb_slot) {
                        fc.delete_pending = true;
                    }
                    NtStatus::Success
                }
                Err(e) => NtStatus::from(e),
            };
            m.metadata_irp(
                EventKind::Irp(MajorFunction::SetInformation),
                Some(handle),
                Some(SetInfoKind::Disposition),
                status,
                now,
            )
        })
    }

    /// Renames the file (FileRenameInformation).
    pub fn rename(&mut self, handle: HandleId, new_path: &NtPath, now: SimTime) -> OpReply {
        self.pump(now);
        let frame = self.info_frame(MajorFunction::SetInformation, "rename", handle, now);
        self.dispatch(frame, |m, f| {
            let now = f.now;
            let Some(h) = m.handles.get_raw(handle.0) else {
                return OpReply::at(NtStatus::InvalidHandle, now);
            };
            let (volume, node) = (h.volume, h.node);
            let old_parent = m.parent_of(volume, node);
            let mut new_parent = None;
            let status = (|| -> Result<(), NtStatus> {
                let vol = m.ns.volume_mut(volume).map_err(NtStatus::from)?;
                let parent = vol
                    .lookup(&new_path.parent())
                    .map_err(|_| NtStatus::ObjectPathNotFound)?;
                let name = new_path.file_name().ok_or(NtStatus::InvalidParameter)?;
                vol.rename(node, parent, name, now)
                    .map_err(NtStatus::from)?;
                new_parent = Some(parent);
                Ok(())
            })()
            .err()
            .unwrap_or(NtStatus::Success);
            if status.is_success() {
                if let Some(p) = old_parent {
                    m.fire_watches(volume, p, now);
                }
                if let Some(p) = new_parent.filter(|p| old_parent != Some(*p)) {
                    m.fire_watches(volume, p, now);
                }
            }
            m.metadata_irp(
                EventKind::Irp(MajorFunction::SetInformation),
                Some(handle),
                Some(SetInfoKind::Rename),
                status,
                now,
            )
        })
    }

    /// Sets timestamps/attributes (FileBasicInformation) — what installers
    /// use to back-date creation times (§5).
    pub fn set_basic_information(
        &mut self,
        handle: HandleId,
        times: FileTimes,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let frame = self.info_frame(
            MajorFunction::SetInformation,
            "set_basic_information",
            handle,
            now,
        );
        self.dispatch(frame, |m, f| {
            let now = f.now;
            let Some(h) = m.handles.get_raw(handle.0) else {
                return OpReply::at(NtStatus::InvalidHandle, now);
            };
            let (volume, node) = (h.volume, h.node);
            let status = match m
                .ns
                .volume_mut(volume)
                .and_then(|v| v.set_times(node, times))
            {
                Ok(()) => NtStatus::Success,
                Err(e) => NtStatus::from(e),
            };
            m.metadata_irp(
                EventKind::Irp(MajorFunction::SetInformation),
                Some(handle),
                Some(SetInfoKind::Basic),
                status,
                now,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::testkit::{machine, open_new, t, P};
    use crate::request::{EventKind, MajorFunction};

    #[test]
    fn control_failures_are_counted() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\x", t(1));
        let r = m.invalid_control(h, t(2));
        assert!(r.status.is_error());
        assert_eq!(m.metrics().control_failures, 1);
        assert!(m.metrics().control_ops >= 1);
    }

    #[test]
    fn volume_mounted_fsctl_emits_event() {
        let (mut m, vol) = machine();
        let r = m.is_volume_mounted(P, vol, t(1));
        assert!(r.status.is_success());
        assert!(m
            .observer()
            .events
            .iter()
            .any(|e| e.kind == EventKind::Irp(MajorFunction::FileSystemControl)));
    }
}
