//! Byte-range locks (the FastIoLock / FastIoUnlockSingle procedural
//! calls, falling back to IRP_MJ_LOCK_CONTROL when a layer vetoes them).

use nt_sim::SimTime;

use crate::machine::{emit_event, Machine, OpReply};
use crate::observer::IoObserver;
use crate::request::{FastIoKind, IoEvent, MajorFunction};
use crate::status::NtStatus;
use crate::types::HandleId;

impl<O: IoObserver> Machine<O> {
    fn lock_event(
        &mut self,
        kind: FastIoKind,
        handle: HandleId,
        offset: u64,
        len: u64,
        status: NtStatus,
        now: SimTime,
    ) -> OpReply {
        let Some(h) = self.handles.get_raw(handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (fo, fcb, volume, process) = (h.fo, h.fcb, h.volume, h.process);
        let local = self.ns.is_local(volume);
        let end = now + self.latency.fastio_metadata();
        emit_event!(
            self,
            IoEvent {
                kind: self.fastio_event_kind(kind),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset,
                length: len,
                transferred: 0,
                file_size: 0,
                byte_offset: 0,
                status,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        OpReply::at(status, end)
    }

    fn lock_fsd(
        &mut self,
        handle: HandleId,
        offset: u64,
        len: u64,
        exclusive: bool,
        now: SimTime,
    ) -> OpReply {
        let Some(h) = self.handles.get_raw(handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let key = h.fcb_slot;
        let granted = self
            .shares
            .locks_mut(key)
            .lock(handle, offset, len, exclusive);
        if granted {
            self.metrics.locks_granted += 1;
        } else {
            self.metrics.lock_conflicts += 1;
        }
        let status = if granted {
            NtStatus::Success
        } else {
            NtStatus::FileLockConflict
        };
        self.lock_event(FastIoKind::Lock, handle, offset, len, status, now)
    }

    /// Takes a byte-range lock on the current handle's file. Procedural
    /// FastIO unless some layer opted the routine out, in which case the
    /// lock-control IRP descends the stack.
    pub fn lock(
        &mut self,
        handle: HandleId,
        offset: u64,
        len: u64,
        exclusive: bool,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        if self.stack.fastio_supported(FastIoKind::Lock) {
            return self.lock_fsd(handle, offset, len, exclusive, now);
        }
        let mut frame = self.info_frame(MajorFunction::LockControl, "lock", handle, now);
        frame.offset = offset;
        frame.length = len;
        self.dispatch(frame, |m, f| {
            m.lock_fsd(handle, offset, len, exclusive, f.now)
        })
    }

    fn unlock_fsd(&mut self, handle: HandleId, offset: u64, len: u64, now: SimTime) -> OpReply {
        let Some(h) = self.handles.get_raw(handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let key = h.fcb_slot;
        let ok = self.shares.locks_mut(key).unlock(handle, offset, len);
        let status = if ok {
            NtStatus::Success
        } else {
            NtStatus::InvalidParameter
        };
        self.lock_event(FastIoKind::UnlockSingle, handle, offset, len, status, now)
    }

    /// Releases a byte-range lock (same FastIO-or-IRP routing as
    /// [`Machine::lock`]).
    pub fn unlock(&mut self, handle: HandleId, offset: u64, len: u64, now: SimTime) -> OpReply {
        self.pump(now);
        if self.stack.fastio_supported(FastIoKind::UnlockSingle) {
            return self.unlock_fsd(handle, offset, len, now);
        }
        let mut frame = self.info_frame(MajorFunction::LockControl, "unlock", handle, now);
        frame.offset = offset;
        frame.length = len;
        self.dispatch(frame, |m, f| m.unlock_fsd(handle, offset, len, f.now))
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::testkit::{machine, open_new, t};
    use crate::request::{EventKind, FastIoKind};
    use crate::status::NtStatus;

    #[test]
    fn byte_range_locks_gate_data_access() {
        let (mut m, vol) = machine();
        let h1 = open_new(&mut m, vol, r"\shared.db", t(1));
        m.write(h1, Some(0), 64_000, t(1));
        let h2 = open_new(&mut m, vol, r"\shared.db", t(2));
        // h1 takes an exclusive lock on the first 4 KB.
        let r = m.lock(h1, 0, 4_096, true, t(3));
        assert_eq!(r.status, NtStatus::Success);
        assert_eq!(m.metrics().locks_granted, 1);
        // h2 cannot read or write the locked range, but can elsewhere.
        assert_eq!(
            m.read(h2, Some(0), 512, t(4)).status,
            NtStatus::FileLockConflict
        );
        assert_eq!(
            m.write(h2, Some(1_000), 100, t(4)).status,
            NtStatus::FileLockConflict
        );
        assert_eq!(m.read(h2, Some(8_192), 512, t(4)).status, NtStatus::Success);
        // A conflicting lock request is denied.
        assert_eq!(
            m.lock(h2, 0, 100, false, t(5)).status,
            NtStatus::FileLockConflict
        );
        // Unlock, then h2 proceeds.
        assert_eq!(m.unlock(h1, 0, 4_096, t(6)).status, NtStatus::Success);
        assert_eq!(m.read(h2, Some(0), 512, t(7)).status, NtStatus::Success);
        m.close(h1, t(8));
        m.close(h2, t(8));
    }

    #[test]
    fn cleanup_releases_locks_with_unlock_all() {
        let (mut m, vol) = machine();
        let h1 = open_new(&mut m, vol, r"\pool.db", t(1));
        m.write(h1, Some(0), 10_000, t(1));
        m.lock(h1, 0, 100, true, t(2));
        m.lock(h1, 500, 100, true, t(2));
        let h2 = open_new(&mut m, vol, r"\pool.db", t(3));
        m.close(h1, t(4));
        // The UnlockAll call appears in the trace and h2 is free to go.
        assert!(m
            .observer()
            .events
            .iter()
            .any(|e| e.kind == EventKind::FastIo(FastIoKind::UnlockAll)));
        assert_eq!(m.read(h2, Some(0), 100, t(5)).status, NtStatus::Success);
        m.close(h2, t(6));
    }
}
