//! The two-stage close (§8.1) and the lazy writer (§9.2).

use nt_sim::{SimDuration, SimTime};

use crate::machine::{emit_event, FileKey, Machine, OpReply, Pending};
use crate::observer::IoObserver;
use crate::request::{EventKind, FastIoKind, IoEvent, MajorFunction, SetInfoKind};
use crate::stack::IrpFrame;
use crate::status::NtStatus;
use crate::types::{FcbId, FileObjectId, HandleId, ProcessId};

impl<O: IoObserver> Machine<O> {
    /// Closes a handle: emits the cleanup IRP now; the close IRP follows
    /// 4–10 µs later for read-cached files, or after the lazy writer
    /// drains the dirty pages (1–4 s) for write-cached ones.
    pub fn close(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.pump(now);
        let frame = self.info_frame(MajorFunction::Cleanup, "close", handle, now);
        self.dispatch(frame, |m, f| m.close_fsd(handle, f.now))
    }

    fn close_fsd(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        let Some(h) = self.handles.remove_raw(handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (fo, fcb, fcb_slot, volume, node, process, options) = (
            h.fo, h.fcb, h.fcb_slot, h.volume, h.node, h.process, h.options,
        );
        if h.mapped {
            self.vm.unmap(&(volume, node));
        }
        self.cancel_watches(handle);
        let local = self.ns.is_local(volume);
        let key: FileKey = (volume, node);
        let file_size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);

        let end = now + self.latency.metadata_op();
        self.metrics.cleanups += 1;
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::Irp(MajorFunction::Cleanup),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size,
                byte_offset: h.byte_offset,
                status: NtStatus::Success,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );

        // Release byte-range locks and the share registration with the
        // cleanup, as NT does; held locks produce an UnlockAll call.
        let dropped = self.shares.locks_mut(fcb_slot).unlock_all(handle);
        if dropped > 0 {
            emit_event!(
                self,
                IoEvent {
                    kind: self.fastio_event_kind(FastIoKind::UnlockAll),
                    file_object: fo,
                    fcb,
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset: 0,
                    length: dropped as u64,
                    transferred: 0,
                    file_size,
                    byte_offset: 0,
                    status: NtStatus::Success,
                    start: now,
                    end: now + self.latency.fastio_metadata(),
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: None,
                    created: false,
                }
            );
        }
        self.shares.close(fcb_slot, handle);

        let last_handle = self.fcbs.cleanup(fcb_slot);
        if !last_handle {
            // Other handles remain: the file object closes quickly, the
            // FCB stays.
            self.schedule(
                end + self.config.cache.clean_close_delay,
                Pending::CloseIrp {
                    fo,
                    fcb,
                    fcb_slot,
                    volume,
                    node,
                    process,
                },
            );
            return OpReply::at(NtStatus::Success, end);
        }

        let deleting = options.delete_on_close
            || options.temporary
            || self
                .fcbs
                .get(fcb_slot)
                .map(|f| f.delete_pending)
                .unwrap_or(false);

        if deleting {
            // §6.3: unwritten dirty pages may still be in the cache.
            self.release_deferred(key, end);
            self.cache.purge(&key);
            self.vm.purge(&key);
            let parent = self.parent_of(volume, node);
            let _ = self.ns.volume_mut(volume).and_then(|v| v.remove(node, now));
            if let Some(parent) = parent {
                self.fire_watches(volume, parent, now);
            }
            if options.temporary || options.delete_on_close {
                self.metrics.delete_on_close += 1;
            } else {
                self.metrics.explicit_deletes += 1;
            }
            self.schedule(
                end + self.config.cache.clean_close_delay,
                Pending::CloseIrp {
                    fo,
                    fcb,
                    fcb_slot,
                    volume,
                    node,
                    process,
                },
            );
            return OpReply::at(NtStatus::Success, end);
        }

        let outcome = self.cache.cleanup(&key, file_size);
        if outcome.set_end_of_file.is_some() {
            // §8.3: the cache manager trims page-granular lazy writes back
            // to the true end of file before close.
            let se = end + SimDuration::from_ticks(self.latency.params().metadata_ticks);
            emit_event!(
                self,
                IoEvent {
                    kind: EventKind::Irp(MajorFunction::SetInformation),
                    file_object: fo,
                    fcb,
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset: file_size,
                    length: 0,
                    transferred: 0,
                    file_size,
                    byte_offset: 0,
                    status: NtStatus::Success,
                    start: end,
                    end: se,
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: Some(SetInfoKind::EndOfFile),
                    created: false,
                }
            );
            self.metrics.control_ops += 1;
        }
        match outcome.close_after {
            Some(delay) => {
                self.schedule(
                    end + delay,
                    Pending::CloseIrp {
                        fo,
                        fcb,
                        fcb_slot,
                        volume,
                        node,
                        process,
                    },
                );
            }
            None => {
                // Close follows the lazy-writer drain (§8.1: 1–4 s).
                self.deferred_close
                    .entry(key)
                    .or_default()
                    .push((fo, fcb, fcb_slot, process, end));
            }
        }
        OpReply::at(NtStatus::Success, end)
    }

    /// One lazy-writer scan; call once per second of virtual time.
    ///
    /// Issues the paging writes the cache manager selects, completes any
    /// deferred closes whose dirty data has drained, and trims cold cache
    /// maps back under the memory budget.
    pub fn lazy_tick(&mut self, now: SimTime) {
        self.pump(now);
        let frame = IrpFrame {
            major: None,
            label: "lazy_tick",
            handle: None,
            process: None,
            offset: 0,
            length: 0,
            now,
        };
        self.dispatch(frame, |m, f| {
            m.lazy_tick_fsd(f.now);
            OpReply::at(NtStatus::Success, f.now)
        });
    }

    fn lazy_tick_fsd(&mut self, now: SimTime) {
        let (actions, closable) = self.cache.lazy_scan(now);
        for action in actions {
            let (volume, node) = action.key;
            let local = self.ns.is_local(volume);
            let done = self
                .latency
                .disk_io(volume.0 as usize, action.io.len, now, &mut self.rng);
            self.metrics.paging_writes += 1;
            self.metrics.paging_write_bytes += action.io.len;
            let (fo, fcb, process) = self
                .deferred_close
                .get(&action.key)
                .and_then(|v| v.last().copied())
                .map(|(fo, fcb, _, process, _)| (fo, fcb, process))
                .unwrap_or((FileObjectId(0), FcbId(u64::MAX), ProcessId(4)));
            let file_size = self
                .ns
                .volume(volume)
                .ok()
                .and_then(|v| v.file_size(node).ok())
                .unwrap_or(0);
            self.emit_write_event(
                EventKind::Irp(MajorFunction::Write),
                fo,
                fcb,
                process,
                volume,
                local,
                true,
                action.io.offset,
                action.io.len,
                file_size,
                0,
                now,
                done,
            );
        }
        for key in closable {
            if let Some(waiters) = self.deferred_close.remove(&key) {
                let (volume, node) = key;
                for (fo, fcb, fcb_slot, process, cleaned) in waiters {
                    // Catch-up scans may run with a timestamp before the
                    // cleanup that registered this close; the close IRP
                    // never precedes its cleanup.
                    let at = now.max(cleaned + self.config.cache.clean_close_delay);
                    self.emit_close_irp(fo, fcb, fcb_slot, volume, node, process, at);
                }
            }
        }
        // Keep resident cache data within the machine's memory budget by
        // dropping the coldest clean maps (standby-list reclaim).
        self.cache.trim(self.config.cache_budget_bytes);
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::testkit::{machine, open_new, t, P};
    use crate::request::{EventKind, MajorFunction, SetInfoKind};
    use crate::status::NtStatus;
    use crate::types::{AccessMode, CreateOptions, Disposition};
    use nt_fs::NtPath;
    use nt_sim::SimDuration;

    #[test]
    fn two_stage_close_clean_file() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\r.txt", t(1));
        m.close(h, t(2));
        m.pump(t(3));
        let kinds: Vec<EventKind> = m.observer().events.iter().map(|e| e.kind).collect();
        let cleanup = kinds
            .iter()
            .position(|k| *k == EventKind::Irp(MajorFunction::Cleanup))
            .expect("cleanup IRP");
        let close = kinds
            .iter()
            .position(|k| *k == EventKind::Irp(MajorFunction::Close))
            .expect("close IRP");
        assert!(close > cleanup);
        let cu = &m.observer().events[cleanup];
        let cl = &m.observer().events[close];
        let gap = cl.start.saturating_since(cu.end);
        assert!(
            gap < SimDuration::from_millis(1),
            "clean close is fast, got {gap}"
        );
    }

    #[test]
    fn dirty_file_close_waits_for_lazy_writer() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\w.dat", t(1));
        m.write(h, Some(0), 300_000, t(1));
        m.close(h, t(2));
        assert_eq!(m.deferred_closes(), 1);
        let mut s = 3;
        while m.deferred_closes() > 0 && s < 60 {
            m.lazy_tick(t(s));
            s += 1;
        }
        assert_eq!(m.deferred_closes(), 0, "drain completes the close");
        // SetEndOfFile was issued before the close (§8.3).
        assert!(m
            .observer()
            .events
            .iter()
            .any(|e| e.set_info == Some(SetInfoKind::EndOfFile)));
        // Lazy paging writes were emitted.
        assert!(m.metrics().paging_writes > 0);
    }

    #[test]
    fn delete_on_close_removes_the_file() {
        let (mut m, vol) = machine();
        let (_, h) = m.create(
            P,
            vol,
            &NtPath::parse(r"\tmp.del"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions {
                delete_on_close: true,
                ..CreateOptions::default()
            },
            t(1),
        );
        let h = h.unwrap();
        m.write(h, Some(0), 4_096, t(1));
        m.close(h, t(2));
        assert_eq!(m.metrics().delete_on_close, 1);
        let (reply, _) = m.create(
            P,
            vol,
            &NtPath::parse(r"\tmp.del"),
            AccessMode::Read,
            Disposition::Open,
            CreateOptions::default(),
            t(3),
        );
        assert_eq!(reply.status, NtStatus::ObjectNameNotFound);
        // The dirty page never reached the disk: purged at delete.
        assert!(m.cache_metrics().purged_dirty_bytes >= 4_096);
    }

    #[test]
    fn explicit_delete_via_disposition() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\doomed.txt", t(1));
        m.write(h, Some(0), 100, t(1));
        let r = m.set_delete_disposition(h, t(2));
        assert_eq!(r.status, NtStatus::Success);
        m.close(h, t(3));
        assert_eq!(m.metrics().explicit_deletes, 1);
        assert!(m
            .namespace()
            .volume(vol)
            .unwrap()
            .lookup(&NtPath::parse(r"\doomed.txt"))
            .is_err());
    }
}
