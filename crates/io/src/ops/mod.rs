//! The Win32-level operations of [`Machine`](crate::machine::Machine),
//! one focused module per request family.
//!
//! Every module extends `impl<O: IoObserver> Machine<O>` with the public
//! entry points for its family; each entry point pumps due background
//! work, builds an [`IrpFrame`](crate::stack::IrpFrame) and sends it
//! through `Machine::dispatch`, so
//! the attached filter drivers see the request on the way down and its
//! completion on the way back up.
//!
//! * [`create`] — IRP_MJ_CREATE: open/create resolution, share-mode
//!   arbitration, truncating dispositions (§8.4 failure accounting).
//! * [`read_write`] — the data path: FastIO-vs-IRP split, paging I/O,
//!   write-through and flush (§9, §10).
//! * [`info`] — metadata queries and sets, volume control (§8.3).
//! * [`dir`] — directory enumeration and change notification.
//! * [`locks`] — byte-range locks (FastIoLock family).
//! * [`section`] — memory-mapped access and the MDL interface (§3.3, §10).
//! * [`close`] — the two-stage close and the lazy writer (§8.1, §9.2).

pub mod close;
pub mod create;
pub mod dir;
pub mod info;
pub mod locks;
pub mod read_write;
pub mod section;

#[cfg(test)]
pub(crate) mod testkit {
    use crate::latency::DiskParams;
    use crate::machine::{Machine, MachineConfig};
    use crate::observer::VecObserver;
    use crate::status::NtStatus;
    use crate::types::{AccessMode, CreateOptions, Disposition, HandleId, ProcessId};
    use nt_fs::{NtPath, VolumeConfig, VolumeId};
    use nt_sim::SimTime;

    pub(crate) fn machine() -> (Machine<VecObserver>, VolumeId) {
        let mut m = Machine::new(MachineConfig::default(), VecObserver::default());
        let vol = m.add_local_volume(
            'C',
            VolumeConfig::local_ntfs(1 << 30),
            DiskParams::local_ide(),
        );
        (m, vol)
    }

    pub(crate) const P: ProcessId = ProcessId(7);

    pub(crate) fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    pub(crate) fn open_new(
        m: &mut Machine<VecObserver>,
        vol: VolumeId,
        path: &str,
        at: SimTime,
    ) -> HandleId {
        let (reply, h) = m.create(
            P,
            vol,
            &NtPath::parse(path),
            AccessMode::ReadWrite,
            Disposition::OpenIf,
            CreateOptions::default(),
            at,
        );
        assert_eq!(reply.status, NtStatus::Success);
        h.expect("open succeeded")
    }
}

#[cfg(test)]
mod tests {
    use std::any::Any;

    use nt_fs::{NtPath, VolumeConfig};
    use nt_sim::SimDuration;

    use crate::filters::{AntivirusFilter, FastIoVeto};
    use crate::latency::DiskParams;
    use crate::machine::{IoMetrics, Machine, MachineConfig, OpReply};
    use crate::observer::{IoObserver, NullObserver, VecObserver};
    use crate::request::{EventKind, MajorFunction};
    use crate::stack::{FilterAction, FilterDriver, IrpFrame};
    use crate::status::NtStatus;
    use crate::types::{AccessMode, CreateOptions, Disposition, HandleId};

    use super::testkit::{machine, open_new, t, P};

    #[test]
    fn invalid_handles_are_rejected() {
        let (mut m, _) = machine();
        let bogus = HandleId(999);
        assert_eq!(
            m.read(bogus, None, 10, t(1)).status,
            NtStatus::InvalidHandle
        );
        assert_eq!(
            m.write(bogus, None, 10, t(1)).status,
            NtStatus::InvalidHandle
        );
        assert_eq!(m.close(bogus, t(1)).status, NtStatus::InvalidHandle);
        assert_eq!(m.flush(bogus, t(1)).status, NtStatus::InvalidHandle);
    }

    #[test]
    fn file_objects_reported_to_observer() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\hello.txt", t(1));
        m.close(h, t(2));
        assert_eq!(m.observer().objects.len(), 1);
        assert_eq!(m.observer().objects[0].path, r"\hello.txt");
    }

    #[test]
    fn null_observer_keeps_metrics_parity() {
        // `NullObserver` skips building `IoEvent` values entirely
        // (`O::ENABLED`), but the machine's counters — `events_emitted`
        // in particular, which the conservation ledger debits — must
        // count exactly what a recording observer would have seen.
        fn drive<O: IoObserver>(mut m: Machine<O>) -> (IoMetrics, Machine<O>) {
            let vol = m.add_local_volume(
                'C',
                VolumeConfig::local_ntfs(1 << 30),
                DiskParams::local_ide(),
            );
            let (reply, h) = m.create(
                P,
                vol,
                &NtPath::parse(r"\parity.dat"),
                AccessMode::ReadWrite,
                Disposition::OpenIf,
                CreateOptions::default(),
                t(1),
            );
            assert_eq!(reply.status, NtStatus::Success);
            let h = h.expect("open succeeded");
            m.write(h, Some(0), 16_384, t(2));
            let mut at = t(3);
            for _ in 0..4 {
                at = m.read(h, Some(0), 4_096, at).end;
            }
            m.flush(h, at);
            m.close(h, at + SimDuration::from_secs(1));
            m.lazy_tick(at + SimDuration::from_secs(10));
            (m.metrics(), m)
        }

        let (null_metrics, _) = drive(Machine::new(
            MachineConfig {
                seed: 9,
                ..MachineConfig::default()
            },
            NullObserver,
        ));
        let (vec_metrics, watched) = drive(Machine::new(
            MachineConfig {
                seed: 9,
                ..MachineConfig::default()
            },
            VecObserver::default(),
        ));
        assert_eq!(null_metrics, vec_metrics);
        assert!(null_metrics.events_emitted > 0);
        assert_eq!(
            vec_metrics.events_emitted,
            watched.observer().events.len() as u64,
            "every counted emission reached the recording observer"
        );
    }

    #[test]
    fn ablation_disable_fastio_forces_irp() {
        let mut m = Machine::new(
            MachineConfig {
                disable_fastio: true,
                ..MachineConfig::default()
            },
            VecObserver::default(),
        );
        let vol = m.add_local_volume(
            'C',
            VolumeConfig::local_ntfs(1 << 30),
            DiskParams::local_ide(),
        );
        let h = open_new(&mut m, vol, r"\f.dat", t(1));
        m.write(h, Some(0), 20_000, t(1));
        let mut tt = t(2);
        for _ in 0..10 {
            tt = m.read(h, Some(0), 4_096, tt).end;
        }
        assert_eq!(m.metrics().fastio_reads, 0);
        assert_eq!(m.metrics().fastio_writes, 0);
        assert!(m.metrics().irp_reads >= 10);
        assert!(m
            .observer()
            .events
            .iter()
            .all(|e| !e.kind.is_fastio() || !e.kind.is_read()));
    }

    #[test]
    fn access_mode_is_enforced() {
        let (mut m, vol) = machine();
        let (_, h) = m.create(
            P,
            vol,
            &NtPath::parse(r"\ro.txt"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions::default(),
            t(1),
        );
        let h = h.unwrap();
        m.write(h, Some(0), 100, t(1));
        assert_eq!(
            m.read(h, Some(0), 100, t(2)).status,
            NtStatus::AccessDenied,
            "write-only handle cannot read"
        );
        m.close(h, t(3));
        let (_, h) = m.create(
            P,
            vol,
            &NtPath::parse(r"\ro.txt"),
            AccessMode::Read,
            Disposition::Open,
            CreateOptions::default(),
            t(4),
        );
        let h = h.unwrap();
        assert_eq!(
            m.write(h, Some(0), 100, t(5)).status,
            NtStatus::AccessDenied,
            "read-only handle cannot write"
        );
        m.close(h, t(6));
    }

    #[test]
    fn temporary_files_spare_the_disk() {
        let (mut m, vol) = machine();
        let (_, h) = m.create(
            P,
            vol,
            &NtPath::parse(r"\scratch.tmp"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions {
                temporary: true,
                delete_on_close: true,
                ..CreateOptions::default()
            },
            t(1),
        );
        let h = h.unwrap();
        m.write(h, Some(0), 100_000, t(1));
        m.lazy_tick(t(2));
        assert_eq!(
            m.metrics().paging_writes,
            0,
            "temporary data never hits the disk"
        );
        m.close(h, t(3));
        assert_eq!(m.metrics().delete_on_close, 1);
    }

    #[test]
    fn antivirus_scan_latency_lands_in_the_trace() {
        let scan = SimDuration::from_millis(3);
        let (mut plain, vol_p) = machine();
        let (mut scanned, vol_s) = machine();
        scanned.attach_filter(Box::new(AntivirusFilter::new(scan)));
        let hp = open_new(&mut plain, vol_p, r"\mail.doc", t(1));
        let hs = open_new(&mut scanned, vol_s, r"\mail.doc", t(1));
        plain.write(hp, Some(0), 8_192, t(2));
        scanned.write(hs, Some(0), 8_192, t(2));
        let rp = plain.read(hp, Some(0), 4_096, t(3));
        let rs = scanned.read(hs, Some(0), 4_096, t(3));
        assert_eq!(rs.status, NtStatus::Success);
        assert_eq!(
            rs.end.saturating_since(t(3)),
            rp.end.saturating_since(t(3)) + scan,
            "the scan delay is additive on the read path"
        );
        let av: &AntivirusFilter = scanned.stack().find().expect("attached above");
        assert!(av.scans() >= 2, "create and read both scanned");
    }

    #[test]
    fn veto_relabels_fastio_as_irp_at_the_same_cost() {
        let (mut plain, vol_p) = machine();
        let (mut vetoed, vol_v) = machine();
        vetoed.attach_filter(Box::new(FastIoVeto));
        for (m, vol) in [(&mut plain, vol_p), (&mut vetoed, vol_v)] {
            let h = open_new(m, vol, r"\same.dat", t(1));
            m.write(h, Some(0), 16_384, t(1));
            let mut at = t(2);
            for _ in 0..3 {
                at = m.read(h, Some(0), 4_096, at).end;
            }
            m.lock(h, 0, 64, true, at);
            m.unlock(h, 0, 64, at);
            m.close(h, at + SimDuration::from_secs(1));
        }
        assert_eq!(vetoed.metrics().fastio_reads, 0);
        assert_eq!(
            vetoed.metrics().irp_reads,
            plain.metrics().irp_reads + plain.metrics().fastio_reads,
            "every FastIO read fell back to its IRP"
        );
        assert!(vetoed
            .observer()
            .events
            .iter()
            .all(|e| !matches!(e.kind, EventKind::FastIo(_))));
        // Same record stream modulo the relabelling: identical timing.
        assert_eq!(
            plain.observer().events.len(),
            vetoed.observer().events.len()
        );
        for (a, b) in plain
            .observer()
            .events
            .iter()
            .zip(vetoed.observer().events.iter())
        {
            assert_eq!(
                (a.start, a.end, a.transferred, a.status),
                (b.start, b.end, b.transferred, b.status)
            );
        }
    }

    #[test]
    fn a_filter_may_complete_above_the_fsd() {
        struct Firewall {
            blocked: u64,
        }
        impl FilterDriver for Firewall {
            fn name(&self) -> &'static str {
                "firewall"
            }
            fn intercepts(&self) -> bool {
                true
            }
            fn pre(&mut self, frame: &mut IrpFrame) -> FilterAction {
                if frame.major == Some(MajorFunction::Write) {
                    self.blocked += 1;
                    return FilterAction::Complete(OpReply::at(NtStatus::AccessDenied, frame.now));
                }
                FilterAction::Pass
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let (mut m, vol) = machine();
        m.attach_filter(Box::new(Firewall { blocked: 0 }));
        let h = open_new(&mut m, vol, r"\guarded.txt", t(1));
        let before_fsd = m.stack().fsd_completed();
        let r = m.write(h, Some(0), 4_096, t(2));
        assert_eq!(r.status, NtStatus::AccessDenied);
        assert_eq!(
            m.stack().fsd_completed(),
            before_fsd,
            "the FSD never saw the write"
        );
        assert_eq!(
            m.metrics().irp_writes + m.metrics().fastio_writes,
            0,
            "no write was served"
        );
        let fw: &Firewall = m.stack().find().expect("attached above");
        assert_eq!(fw.blocked, 1);
        let (top, rest) = m
            .stack()
            .layers()
            .split_first()
            .map(|(a, b)| (*a, b.to_vec()))
            .unwrap();
        assert_eq!(top.0, "firewall");
        assert_eq!(top.1.completed, 1, "the firewall completed the write");
        assert!(rest.iter().all(|(_, c)| c.completed == 0));
    }
}
