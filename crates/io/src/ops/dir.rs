//! Directory enumeration and change notification
//! (IRP_MJ_DIRECTORY_CONTROL).

use nt_fs::{NodeId, VolumeId};
use nt_sim::SimTime;

use crate::machine::{emit_event, FileKey, Machine, OpReply};
use crate::observer::IoObserver;
use crate::request::{EventKind, IoEvent, MajorFunction};
use crate::status::NtStatus;
use crate::types::HandleId;

impl<O: IoObserver> Machine<O> {
    /// Directory enumeration (IRP_MJ_DIRECTORY_CONTROL / QueryDirectory).
    /// Returns up to `batch` entries per call; NoMoreFiles terminates.
    pub fn query_directory(&mut self, handle: HandleId, batch: usize, now: SimTime) -> OpReply {
        self.pump(now);
        let frame = self.info_frame(
            MajorFunction::DirectoryControl,
            "query_directory",
            handle,
            now,
        );
        self.dispatch(frame, |m, f| m.query_directory_fsd(handle, batch, f.now))
    }

    fn query_directory_fsd(&mut self, handle: HandleId, batch: usize, now: SimTime) -> OpReply {
        let Some(h) = self.handles.get_raw(handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (fo, fcb, volume, node, process, cursor) =
            (h.fo, h.fcb, h.volume, h.node, h.process, h.dir_cursor);
        let local = self.ns.is_local(volume);
        let entries = match self.ns.volume(volume).and_then(|v| v.read_dir(node)) {
            Ok(e) => e,
            Err(e) => {
                return self.metadata_irp(
                    EventKind::Irp(MajorFunction::DirectoryControl),
                    Some(handle),
                    None,
                    NtStatus::from(e),
                    now,
                )
            }
        };
        let remaining = entries.len().saturating_sub(cursor);
        let returned = remaining.min(batch.max(1));
        let status = if returned == 0 {
            NtStatus::NoMoreFiles
        } else {
            NtStatus::Success
        };
        if let Some(h) = self.handles.get_raw_mut(handle.0) {
            h.dir_cursor += returned;
        }
        let end = now + self.latency.metadata_op();
        self.metrics.control_ops += 1;
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::Irp(MajorFunction::DirectoryControl),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: cursor as u64,
                length: batch as u64,
                transferred: returned as u64,
                file_size: entries.len() as u64,
                byte_offset: 0,
                status,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        OpReply {
            status,
            transferred: returned as u64,
            end,
        }
    }

    /// Registers a change-notification IRP on an open directory handle
    /// (FindFirstChangeNotification). The IRP stays pended; it completes
    /// — and appears in the trace with its full waiting time as latency —
    /// when something changes in the directory. One-shot: applications
    /// re-arm after each notification.
    pub fn watch_directory(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.pump(now);
        let frame = self.info_frame(
            MajorFunction::DirectoryControl,
            "watch_directory",
            handle,
            now,
        );
        self.dispatch(frame, |m, f| {
            let now = f.now;
            let Some(h) = m.handles.get_raw(handle.0) else {
                return OpReply::at(NtStatus::InvalidHandle, now);
            };
            let is_dir =
                m.ns.volume(h.volume)
                    .ok()
                    .and_then(|v| v.node(h.node).ok())
                    .map(|n| n.kind.is_directory())
                    .unwrap_or(false);
            if !is_dir {
                return m.metadata_irp(
                    EventKind::Irp(MajorFunction::DirectoryControl),
                    Some(handle),
                    None,
                    NtStatus::NotADirectory,
                    now,
                );
            }
            let key: FileKey = (h.volume, h.node);
            let entry = (handle, h.fo, h.fcb, h.process, now);
            let waiters = m.watches.entry(key).or_default();
            // Re-arming an already-pending watch is a no-op (the
            // application keeps one notification outstanding per handle).
            if !waiters.iter().any(|(wh, ..)| *wh == handle) {
                waiters.push(entry);
            }
            // The request pends: nothing completes yet, so the reply
            // returns control to the caller immediately.
            OpReply::at(NtStatus::Success, now + m.latency.fastio_metadata())
        })
    }

    /// Completes any change-notification IRPs watching `dir`.
    pub(crate) fn fire_watches(&mut self, volume: VolumeId, dir: NodeId, now: SimTime) {
        let Some(waiters) = self.watches.remove(&(volume, dir)) else {
            return;
        };
        let local = self.ns.is_local(volume);
        for (_, fo, fcb, process, registered) in waiters {
            self.metrics.control_ops += 1;
            emit_event!(
                self,
                IoEvent {
                    kind: EventKind::Irp(MajorFunction::DirectoryControl),
                    file_object: fo,
                    fcb,
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset: 0,
                    length: 0,
                    transferred: 1,
                    file_size: 0,
                    byte_offset: 0,
                    status: NtStatus::Success,
                    start: registered,
                    end: now,
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: None,
                    created: false,
                }
            );
        }
    }

    /// Drops a handle's pending watches (handle cleanup).
    pub(crate) fn cancel_watches(&mut self, handle: HandleId) {
        for waiters in self.watches.values_mut() {
            waiters.retain(|(h, ..)| *h != handle);
        }
        self.watches.retain(|_, v| !v.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::testkit::{machine, t, P};
    use crate::request::{EventKind, MajorFunction};
    use crate::status::NtStatus;
    use crate::types::{AccessMode, CreateOptions, Disposition};
    use nt_fs::NtPath;

    #[test]
    fn directory_enumeration_batches() {
        let (mut m, vol) = machine();
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            for i in 0..25 {
                v.create_file(root, &format!("f{i:02}"), t(0)).unwrap();
            }
        }
        let (_, h) = m.create(
            P,
            vol,
            &NtPath::root(),
            AccessMode::Control,
            Disposition::Open,
            CreateOptions {
                directory: true,
                ..CreateOptions::default()
            },
            t(1),
        );
        let h = h.unwrap();
        let mut total = 0;
        let mut calls = 0;
        loop {
            let r = m.query_directory(h, 10, t(2));
            calls += 1;
            if r.status == NtStatus::NoMoreFiles {
                break;
            }
            total += r.transferred;
            assert!(calls < 10);
        }
        assert_eq!(total, 25);
        assert_eq!(calls, 4, "3 batches + terminator");
    }

    #[test]
    fn change_notification_pends_until_a_change() {
        let (mut m, vol) = machine();
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            v.mkdir(root, "watched", t(0)).unwrap();
        }
        let (_, dh) = m.create(
            P,
            vol,
            &NtPath::parse(r"\watched"),
            AccessMode::Control,
            Disposition::Open,
            CreateOptions {
                directory: true,
                ..CreateOptions::default()
            },
            t(1),
        );
        let dh = dh.unwrap();
        let r = m.watch_directory(dh, t(2));
        assert_eq!(r.status, NtStatus::Success);
        // No notification yet.
        let before = m
            .observer()
            .events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Irp(MajorFunction::DirectoryControl) && e.transferred == 1
            })
            .count();
        assert_eq!(before, 0);
        // Creating a file inside the directory completes the pended IRP,
        // whose recorded latency is the whole wait.
        let (_, fh) = m.create(
            P,
            vol,
            &NtPath::parse(r"\watched\new.txt"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions::default(),
            t(30),
        );
        let notify: Vec<_> = m
            .observer()
            .events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Irp(MajorFunction::DirectoryControl) && e.transferred == 1
            })
            .cloned()
            .collect();
        assert_eq!(notify.len(), 1);
        assert_eq!(notify[0].start, t(2), "pended at registration");
        assert!(notify[0].end >= t(30), "completed at the change");
        m.close(fh.unwrap(), t(31));
        // One-shot: a second change does not fire again.
        let (_, fh2) = m.create(
            P,
            vol,
            &NtPath::parse(r"\watched\second.txt"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions::default(),
            t(40),
        );
        m.close(fh2.unwrap(), t(41));
        let after = m
            .observer()
            .events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Irp(MajorFunction::DirectoryControl) && e.transferred == 1
            })
            .count();
        assert_eq!(after, 1, "watch is one-shot");
        // A cancelled watch (handle closed) never fires.
        m.watch_directory(dh, t(50));
        m.close(dh, t(51));
        let (_, fh3) = m.create(
            P,
            vol,
            &NtPath::parse(r"\watched\third.txt"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions::default(),
            t(60),
        );
        m.close(fh3.unwrap(), t(61));
        let final_count = m
            .observer()
            .events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Irp(MajorFunction::DirectoryControl) && e.transferred == 1
            })
            .count();
        assert_eq!(final_count, 1, "closed handle's watch was cancelled");
    }
}
