//! The data path: reads, writes and flushes, with the §10 FastIO-vs-IRP
//! split.
//!
//! All four data entry points ([`Machine::read`], [`Machine::write`],
//! [`Machine::mdl_read`], [`Machine::mdl_write`]) share one prologue —
//! `Machine::data_op` — that validates the handle, checks the access
//! mode and extracts the fields the FSD needs; the FastIO-vs-IRP
//! epilogue both copy paths share lives in `Machine::data_path`. The
//! IRP descent itself happens in the caller via
//! `Machine::dispatch`, so filter
//! drivers see every data request whichever path the FSD ends up taking.

use nt_fs::{NodeId, VolumeId};
use nt_sim::SimTime;

use crate::arena::ArenaHandle;
use crate::machine::{emit_event, FileKey, Machine, OpReply};
use crate::observer::IoObserver;
use crate::request::{EventKind, FastIoKind, IoEvent, MajorFunction};
use crate::stack::IrpFrame;
use crate::status::NtStatus;
use crate::types::{CreateOptions, FcbId, FileObjectId, HandleId, ProcessId};

/// Which half of the data path a request rides; selects the access
/// check, the § 8.4 failure counters and the FastIO entry points.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum DataDir {
    Read,
    Write,
}

/// Everything the shared prologue extracts from a validated data handle.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DataOp {
    pub(crate) fo: FileObjectId,
    pub(crate) fcb: FcbId,
    pub(crate) fcb_slot: ArenaHandle,
    pub(crate) volume: VolumeId,
    pub(crate) node: NodeId,
    pub(crate) process: ProcessId,
    pub(crate) options: CreateOptions,
    pub(crate) byte_offset: u64,
    /// The effective request offset (explicit, or the handle's cursor).
    pub(crate) offset: u64,
    pub(crate) local: bool,
    pub(crate) key: FileKey,
}

impl<O: IoObserver> Machine<O> {
    /// The prologue every data operation shares, FastIO and IRP alike:
    /// validate the handle, check the access mode, resolve the offset and
    /// pull out the fields the FSD works with.
    pub(crate) fn data_op(
        &self,
        handle: HandleId,
        offset: Option<u64>,
        dir: DataDir,
        now: SimTime,
    ) -> Result<DataOp, OpReply> {
        let Some(h) = self.handles.get_raw(handle.0) else {
            return Err(OpReply::at(NtStatus::InvalidHandle, now));
        };
        let allowed = match dir {
            DataDir::Read => h.access.can_read(),
            DataDir::Write => h.access.can_write(),
        };
        if !allowed {
            return Err(OpReply::at(NtStatus::AccessDenied, now));
        }
        Ok(DataOp {
            fo: h.fo,
            fcb: h.fcb,
            fcb_slot: h.fcb_slot,
            volume: h.volume,
            node: h.node,
            process: h.process,
            options: h.options,
            byte_offset: h.byte_offset,
            offset: offset.unwrap_or(h.byte_offset),
            local: self.ns.is_local(h.volume),
            key: (h.volume, h.node),
        })
    }

    /// Fails the request when the target is remote and the link is
    /// partitioned; the failure rides the IRP path with zero payload.
    fn data_network_guard(
        &mut self,
        d: &DataOp,
        dir: DataDir,
        len: u64,
        now: SimTime,
    ) -> Option<OpReply> {
        if d.local || self.network_up {
            return None;
        }
        let end = now + self.latency.irp_cached(0);
        self.metrics.network_failures += 1;
        let major = match dir {
            DataDir::Read => {
                self.metrics.irp_reads += 1;
                MajorFunction::Read
            }
            DataDir::Write => {
                self.metrics.irp_writes += 1;
                MajorFunction::Write
            }
        };
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::Irp(major),
                file_object: d.fo,
                fcb: d.fcb,
                process: d.process,
                volume: d.volume.0,
                local: d.local,
                paging_io: false,
                readahead: false,
                offset: d.offset,
                length: len,
                transferred: 0,
                file_size: 0,
                byte_offset: d.byte_offset,
                status: NtStatus::NetworkUnreachable,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        Some(OpReply::at(NtStatus::NetworkUnreachable, end))
    }

    /// Byte-range lock arbitration: another handle's conflicting lock
    /// bounces the request with no event (the FSD refuses it before any
    /// transfer starts).
    fn data_lock_guard(
        &mut self,
        handle: HandleId,
        d: &DataOp,
        dir: DataDir,
        len: u64,
        now: SimTime,
    ) -> Option<OpReply> {
        let t = self.shares.locks(d.fcb_slot)?;
        let allowed = match dir {
            DataDir::Read => t.read_allowed(handle, d.offset, len),
            DataDir::Write => t.write_allowed(handle, d.offset, len),
        };
        if allowed {
            return None;
        }
        self.metrics.lock_conflicts += 1;
        match dir {
            DataDir::Read => self.metrics.read_lock_conflicts += 1,
            DataDir::Write => self.metrics.write_lock_conflicts += 1,
        }
        let end = now + self.latency.irp_cached(0);
        Some(OpReply::at(NtStatus::FileLockConflict, end))
    }

    /// The §10 path split both copy ops share. `fast` is the FSD's
    /// verdict (warm map, nothing forced to disk, FastIO not ablated);
    /// the effective FastIO table can still veto the procedural path, in
    /// which case the call is relabelled onto its IRP fallback at the
    /// same service time. Counters follow the path the event reports.
    fn data_path(
        &mut self,
        dir: DataDir,
        fast: bool,
        compressed: bool,
        bytes: u64,
        slow_end: SimTime,
        now: SimTime,
    ) -> (EventKind, SimTime) {
        let (kind, end) = if fast {
            let fastio = match (dir, compressed) {
                (DataDir::Read, false) => FastIoKind::Read,
                (DataDir::Read, true) => FastIoKind::ReadCompressed,
                (DataDir::Write, false) => FastIoKind::Write,
                (DataDir::Write, true) => FastIoKind::WriteCompressed,
            };
            // Compressed files pay the (de)compression penalty on top of
            // the cache copy.
            let copy = if compressed {
                self.latency.fastio_copy(bytes) * 2
            } else {
                self.latency.fastio_copy(bytes)
            };
            (self.fastio_event_kind(fastio), now + copy)
        } else {
            let major = match dir {
                DataDir::Read => MajorFunction::Read,
                DataDir::Write => MajorFunction::Write,
            };
            (EventKind::Irp(major), slow_end)
        };
        match (dir, matches!(kind, EventKind::FastIo(_))) {
            (DataDir::Read, true) => self.metrics.fastio_reads += 1,
            (DataDir::Read, false) => self.metrics.irp_reads += 1,
            (DataDir::Write, true) => self.metrics.fastio_writes += 1,
            (DataDir::Write, false) => self.metrics.irp_writes += 1,
        }
        (kind, end)
    }

    /// Reads `len` bytes at `offset` (or the current byte offset).
    pub fn read(
        &mut self,
        handle: HandleId,
        offset: Option<u64>,
        len: u64,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let d = match self.data_op(handle, offset, DataDir::Read, now) {
            Ok(d) => d,
            Err(reply) => return reply,
        };
        let frame = IrpFrame {
            major: Some(MajorFunction::Read),
            label: "read",
            handle: Some(handle),
            process: Some(d.process),
            offset: d.offset,
            length: len,
            now,
        };
        self.dispatch(frame, |m, f| m.read_fsd(handle, d, len, f.now))
    }

    fn read_fsd(&mut self, handle: HandleId, d: DataOp, len: u64, now: SimTime) -> OpReply {
        self.metrics.read_dispatches += 1;
        if let Some(reply) = self.data_network_guard(&d, DataDir::Read, len, now) {
            return reply;
        }
        let file_size = match self.ns.volume(d.volume).and_then(|v| v.file_size(d.node)) {
            Ok(s) => s,
            Err(e) => {
                self.metrics.read_stat_failures += 1;
                return OpReply::at(NtStatus::from(e), now);
            }
        };
        if d.offset >= file_size {
            // §8.4: reads past end-of-file are the only read errors seen.
            let end = now + self.latency.irp_cached(0);
            self.metrics.read_errors += 1;
            self.metrics.irp_reads += 1;
            emit_event!(
                self,
                IoEvent {
                    kind: EventKind::Irp(MajorFunction::Read),
                    file_object: d.fo,
                    fcb: d.fcb,
                    process: d.process,
                    volume: d.volume.0,
                    local: d.local,
                    paging_io: false,
                    readahead: false,
                    offset: d.offset,
                    length: len,
                    transferred: 0,
                    file_size,
                    byte_offset: d.byte_offset,
                    status: NtStatus::EndOfFile,
                    start: now,
                    end,
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: None,
                    created: false,
                }
            );
            return OpReply::at(NtStatus::EndOfFile, end);
        }
        if let Some(reply) = self.data_lock_guard(handle, &d, DataDir::Read, len, now) {
            return reply;
        }
        let transferred = len.min(file_size - d.offset);
        let _ = self
            .ns
            .volume_mut(d.volume)
            .and_then(|v| v.note_read(d.node, now));

        if d.options.no_intermediate_buffering {
            // §9: caching disabled at open; everything takes the IRP path
            // straight to the disk.
            let end = self
                .latency
                .disk_io(d.volume.0 as usize, transferred, now, &mut self.rng);
            self.metrics.irp_reads += 1;
            self.metrics.bytes_read += transferred;
            self.emit_read_event(
                EventKind::Irp(MajorFunction::Read),
                d.fo,
                d.fcb,
                d.process,
                d.volume,
                d.local,
                false,
                false,
                d.offset,
                len,
                transferred,
                file_size,
                d.byte_offset,
                now,
                end,
            );
            self.advance_offset(handle, d.offset + transferred);
            return OpReply {
                status: NtStatus::Success,
                transferred,
                end,
            };
        }

        let outcome = self
            .cache
            .read(&d.key, d.offset, len, file_size, Self::hints_for(d.options));
        // The map existed before this request exactly when the read did
        // not have to initiate caching — saves a second map walk.
        let was_cached = !outcome.initiated_caching;
        self.metrics.cached_read_requested_bytes += transferred;

        // NTFS compression: half the bytes move on the disk, and every
        // cache copy pays a decompression penalty (the follow-up traces
        // the paper mentions looked at exactly these reads).
        let compressed = self.is_compressed(d.volume, d.node);

        // Issue background read-ahead regardless of path.
        let mut demand_done = now;
        for io in &outcome.ios {
            let disk_bytes = if compressed { io.len / 2 } else { io.len };
            let done = self
                .latency
                .disk_io(d.volume.0 as usize, disk_bytes, now, &mut self.rng);
            self.metrics.paging_reads += 1;
            self.metrics.paging_read_bytes += io.len;
            self.emit_read_event(
                EventKind::Irp(MajorFunction::Read),
                d.fo,
                d.fcb,
                d.process,
                d.volume,
                d.local,
                true,
                io.readahead,
                io.offset,
                io.len,
                io.len,
                file_size,
                d.byte_offset,
                now,
                done,
            );
            if io.readahead && was_cached {
                // Run-length-triggered read-ahead streams in the
                // background; pages appear when the disk delivers them.
                self.schedule(
                    done,
                    crate::machine::Pending::RaComplete {
                        key: d.key,
                        offset: io.offset,
                        len: io.len,
                    },
                );
            } else {
                // Demand misses, and the caching-initiation prefetch: the
                // first IRP read blocks until the read-ahead unit is in
                // the cache (§9.1's "single prefetch" behaviour).
                self.cache.complete_paging_read(&d.key, io.offset, io.len);
                demand_done = demand_done.max(done);
            }
        }

        // First read (caching initiation) or a miss bounces the FastIO
        // attempt back to the IRP path.
        let fast = was_cached && outcome.hit && !self.config.disable_fastio;
        let slow_end = if outcome.hit {
            now + self.latency.irp_cached(transferred)
        } else {
            demand_done + self.latency.fastio_copy(transferred)
        };
        let (kind, end) =
            self.data_path(DataDir::Read, fast, compressed, transferred, slow_end, now);
        self.metrics.bytes_read += transferred;
        self.emit_read_event(
            kind,
            d.fo,
            d.fcb,
            d.process,
            d.volume,
            d.local,
            false,
            false,
            d.offset,
            len,
            transferred,
            file_size,
            d.byte_offset,
            now,
            end,
        );
        self.advance_offset(handle, d.offset + transferred);
        OpReply {
            status: NtStatus::Success,
            transferred,
            end,
        }
    }

    /// Writes `len` bytes at `offset` (or the current byte offset).
    pub fn write(
        &mut self,
        handle: HandleId,
        offset: Option<u64>,
        len: u64,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let d = match self.data_op(handle, offset, DataDir::Write, now) {
            Ok(d) => d,
            Err(reply) => return reply,
        };
        let frame = IrpFrame {
            major: Some(MajorFunction::Write),
            label: "write",
            handle: Some(handle),
            process: Some(d.process),
            offset: d.offset,
            length: len,
            now,
        };
        self.dispatch(frame, |m, f| m.write_fsd(handle, d, len, f.now))
    }

    fn write_fsd(&mut self, handle: HandleId, d: DataOp, len: u64, now: SimTime) -> OpReply {
        self.metrics.write_dispatches += 1;
        if let Some(reply) = self.data_network_guard(&d, DataDir::Write, len, now) {
            return reply;
        }
        if let Some(reply) = self.data_lock_guard(handle, &d, DataDir::Write, len, now) {
            return reply;
        }
        // Extend the file; disk-full is the only write failure mode and
        // the study saw none (workloads stay within capacity).
        if let Err(e) = self
            .ns
            .volume_mut(d.volume)
            .and_then(|v| v.note_write(d.node, d.offset, len, now))
        {
            self.metrics.write_stat_failures += 1;
            let end = now + self.latency.irp_cached(0);
            return OpReply::at(NtStatus::from(e), end);
        }
        if let Some(fcb_entry) = self.fcbs.get_mut(d.fcb_slot) {
            fcb_entry.written = true;
        }
        let file_size = self
            .ns
            .volume(d.volume)
            .ok()
            .and_then(|v| v.file_size(d.node).ok())
            .unwrap_or(0);

        if d.options.no_intermediate_buffering {
            let end = self
                .latency
                .disk_io(d.volume.0 as usize, len, now, &mut self.rng);
            self.metrics.irp_writes += 1;
            self.metrics.bytes_written += len;
            self.emit_write_event(
                EventKind::Irp(MajorFunction::Write),
                d.fo,
                d.fcb,
                d.process,
                d.volume,
                d.local,
                false,
                d.offset,
                len,
                file_size,
                d.byte_offset,
                now,
                end,
            );
            self.advance_offset(handle, d.offset + len);
            return OpReply {
                status: NtStatus::Success,
                transferred: len,
                end,
            };
        }

        let outcome =
            self.cache
                .write(&d.key, d.offset, len, file_size, Self::hints_for(d.options));
        let was_cached = !outcome.initiated_caching;

        // Write-through paging writes go to disk now; the request waits.
        let mut forced_done = now;
        for io in &outcome.ios {
            let done = self
                .latency
                .disk_io(d.volume.0 as usize, io.len, now, &mut self.rng);
            forced_done = forced_done.max(done);
            self.metrics.paging_writes += 1;
            self.metrics.paging_write_bytes += io.len;
            self.emit_write_event(
                EventKind::Irp(MajorFunction::Write),
                d.fo,
                d.fcb,
                d.process,
                d.volume,
                d.local,
                true,
                io.offset,
                io.len,
                file_size,
                d.byte_offset,
                now,
                done,
            );
        }

        let compressed = self.is_compressed(d.volume, d.node);
        // §10: 96 % of writes ride FastIO into the cache.
        let fast = was_cached && outcome.ios.is_empty() && !self.config.disable_fastio;
        let slow_end = if outcome.ios.is_empty() {
            now + self.latency.irp_cached(len)
        } else {
            forced_done
        };
        let (kind, end) = self.data_path(DataDir::Write, fast, compressed, len, slow_end, now);
        self.metrics.bytes_written += len;
        self.emit_write_event(
            kind,
            d.fo,
            d.fcb,
            d.process,
            d.volume,
            d.local,
            false,
            d.offset,
            len,
            file_size,
            d.byte_offset,
            now,
            end,
        );
        self.advance_offset(handle, d.offset + len);
        OpReply {
            status: NtStatus::Success,
            transferred: len,
            end,
        }
    }

    /// FlushFileBuffers: forces the file's dirty pages to disk (§9.2 — the
    /// dominant explicit strategy was flushing after every write).
    pub fn flush(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.pump(now);
        let Some(h) = self.handles.get_raw(handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let process = h.process;
        let frame = IrpFrame {
            major: Some(MajorFunction::FlushBuffers),
            label: "flush",
            handle: Some(handle),
            process: Some(process),
            offset: 0,
            length: 0,
            now,
        };
        self.dispatch(frame, |m, f| m.flush_fsd(handle, f.now))
    }

    fn flush_fsd(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        let Some(h) = self.handles.get_raw(handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (fo, fcb, volume, node, process) = (h.fo, h.fcb, h.volume, h.node, h.process);
        let local = self.ns.is_local(volume);
        let key: FileKey = (volume, node);
        let ios = self.cache.flush(&key);
        let mut end = now + self.latency.metadata_op();
        let file_size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);
        for io in &ios {
            let done = self
                .latency
                .disk_io(volume.0 as usize, io.len, now, &mut self.rng);
            end = end.max(done);
            self.metrics.paging_writes += 1;
            self.metrics.paging_write_bytes += io.len;
            self.emit_write_event(
                EventKind::Irp(MajorFunction::Write),
                fo,
                fcb,
                process,
                volume,
                local,
                true,
                io.offset,
                io.len,
                file_size,
                0,
                now,
                done,
            );
        }
        self.metrics.control_ops += 1;
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::Irp(MajorFunction::FlushBuffers),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size,
                byte_offset: 0,
                status: NtStatus::Success,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        OpReply::at(NtStatus::Success, end)
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::testkit::{machine, open_new, t};
    use crate::request::{EventKind, FastIoKind};
    use crate::status::NtStatus;
    use nt_sim::SimDuration;

    #[test]
    fn first_read_is_irp_subsequent_are_fastio() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\data.bin", t(1));
        m.write(h, Some(0), 20_000, t(1));
        m.close(h, t(2));
        // Drain the lazy writer so the close completes.
        for s in 3..10 {
            m.lazy_tick(t(s));
        }
        let h = open_new(&mut m, vol, r"\data.bin", t(20));
        let r1 = m.read(h, Some(0), 4_096, t(20));
        assert_eq!(r1.status, NtStatus::Success);
        assert_eq!(r1.transferred, 4_096);
        let r2 = m.read(h, None, 4_096, r1.end + SimDuration::from_millis(1));
        assert_eq!(r2.transferred, 4_096, "sequential read from byte offset");
        let reads: Vec<_> = m
            .observer()
            .events
            .iter()
            .filter(|e| e.kind.is_read() && !e.paging_io)
            .collect();
        assert!(reads.len() >= 2);
        // The cache was still warm from the writes, so even the first read
        // hits; what matters is the split exists and FastIO is used once
        // cached.
        assert!(m.metrics().fastio_reads >= 1, "metrics: {:?}", m.metrics());
    }

    #[test]
    fn cold_read_pays_disk_latency_then_hits() {
        let (mut m, vol) = machine();
        // Build the file directly in the namespace (pre-existing content).
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            let f = v.create_file(root, "big.dat", t(0)).unwrap();
            v.set_file_size(f, 200_000, t(0)).unwrap();
        }
        let h = open_new(&mut m, vol, r"\big.dat", t(1));
        let r1 = m.read(h, Some(0), 4_096, t(1));
        let lat1 = r1.end.saturating_since(t(1));
        assert!(
            lat1 >= SimDuration::from_millis(1),
            "cold read hits the disk, got {lat1}"
        );
        assert_eq!(m.metrics().irp_reads, 1);
        assert!(m.metrics().paging_reads >= 1, "demand paging read issued");
        let t2 = r1.end + SimDuration::from_millis(1);
        let r2 = m.read(h, None, 4_096, t2);
        let lat2 = r2.end.saturating_since(t2);
        assert!(
            lat2 < SimDuration::from_millis(1),
            "warm read is a cache copy, got {lat2}"
        );
        assert_eq!(m.metrics().fastio_reads, 1);
    }

    #[test]
    fn read_past_eof_is_the_only_read_error() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\f.txt", t(1));
        m.write(h, Some(0), 100, t(1));
        let r = m.read(h, Some(500), 100, t(2));
        assert_eq!(r.status, NtStatus::EndOfFile);
        assert_eq!(m.metrics().read_errors, 1);
    }

    #[test]
    fn writes_ride_fastio_once_cached() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\log.txt", t(1));
        m.write(h, Some(0), 512, t(1));
        for i in 1..20u64 {
            m.write(h, None, 512, t(1) + SimDuration::from_micros(100 * i));
        }
        let metrics = m.metrics();
        assert_eq!(metrics.irp_writes, 1, "only the initiating write is IRP");
        assert_eq!(metrics.fastio_writes, 19);
        assert!(
            metrics.fastio_writes as f64 / (metrics.fastio_writes + metrics.irp_writes) as f64
                > 0.9
        );
    }

    #[test]
    fn compressed_files_ride_the_compressed_fastio_entries() {
        let (mut m, vol) = machine();
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            let f = v.create_file(root, "big.cab", t(0)).unwrap();
            v.set_file_size(f, 400_000, t(0)).unwrap();
            v.set_attributes(f, nt_fs::FileAttributes::COMPRESSED)
                .unwrap();
        }
        let h = open_new(&mut m, vol, r"\big.cab", t(1));
        let r1 = m.read(h, Some(0), 4_096, t(1));
        assert_eq!(r1.status, NtStatus::Success);
        let t2 = r1.end + SimDuration::from_millis(1);
        let r2 = m.read(h, Some(0), 4_096, t2);
        assert_eq!(r2.status, NtStatus::Success);
        m.write(h, Some(0), 4_096, r2.end + SimDuration::from_millis(1));
        let kinds: Vec<EventKind> = m.observer().events.iter().map(|e| e.kind).collect();
        assert!(
            kinds.contains(&EventKind::FastIo(FastIoKind::ReadCompressed)),
            "warm read decompresses: {kinds:?}"
        );
        assert!(kinds.contains(&EventKind::FastIo(FastIoKind::WriteCompressed)));
        // The decompression penalty makes the warm read slower than an
        // uncompressed copy would be, but still far from disk latency.
        let warm = r2.end.saturating_since(t2);
        assert!(warm < SimDuration::from_millis(1), "got {warm}");
        m.close(h, t(9));
    }
}
