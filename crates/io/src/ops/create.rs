//! IRP_MJ_CREATE: open/create resolution, share-mode arbitration and the
//! truncating dispositions (§6.3, §8.4).

use nt_fs::{FileAttributes, FsError, NodeId, NtPath, VolumeId};
use nt_sim::SimTime;

use crate::machine::{emit_event, Machine, OpReply, OpenHandle};
use crate::observer::{FileObjectInfo, IoObserver};
use crate::request::{EventKind, IoEvent, MajorFunction};
use crate::stack::IrpFrame;
use crate::status::NtStatus;
use crate::types::{AccessMode, CreateOptions, Disposition, FcbId, HandleId, ProcessId};

impl<O: IoObserver> Machine<O> {
    /// Opens or creates a file (IRP_MJ_CREATE).
    ///
    /// Returns the reply and, on success, a handle. Failed opens emit the
    /// create IRP with its failure status, which is how the §8.4 error
    /// rates enter the trace.
    // NtCreateFile takes this many parameters; mirroring it is clearer
    // than bundling.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &mut self,
        process: ProcessId,
        volume: VolumeId,
        path: &NtPath,
        access: AccessMode,
        disposition: Disposition,
        options: CreateOptions,
        now: SimTime,
    ) -> (OpReply, Option<HandleId>) {
        self.pump(now);
        let frame = IrpFrame {
            major: Some(MajorFunction::Create),
            label: "create",
            handle: None,
            process: Some(process),
            offset: 0,
            length: 0,
            now,
        };
        self.dispatch_with(frame, |m, f| {
            m.create_fsd(process, volume, path, access, disposition, options, f.now)
        })
    }

    /// The FSD's half of the create: everything below the driver stack.
    #[allow(clippy::too_many_arguments)]
    fn create_fsd(
        &mut self,
        process: ProcessId,
        volume: VolumeId,
        path: &NtPath,
        access: AccessMode,
        disposition: Disposition,
        options: CreateOptions,
        now: SimTime,
    ) -> (OpReply, Option<HandleId>) {
        let fo = self.next_file_object();
        // The name record (and its path copy) only exists when some layer
        // consumes records; an untraced machine never builds it.
        if self.stack.events_wanted() {
            let info = FileObjectInfo {
                id: fo,
                volume: volume.0,
                path: path.to_string(),
                process,
                at: now,
            };
            self.stack.file_object(&info);
        }
        let local = self.ns.is_local(volume);

        // A partitioned network link fails the open before the redirector
        // reaches the server; nothing on the remote volume changes.
        if !local && !self.network_up {
            let end = now + self.latency.metadata_op();
            self.metrics.open_failures += 1;
            self.metrics.network_failures += 1;
            emit_event!(
                self,
                IoEvent {
                    kind: EventKind::Irp(MajorFunction::Create),
                    file_object: fo,
                    fcb: FcbId(u64::MAX),
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset: 0,
                    length: 0,
                    transferred: 0,
                    file_size: 0,
                    byte_offset: 0,
                    status: NtStatus::NetworkUnreachable,
                    start: now,
                    end,
                    access: Some(access),
                    disposition: Some(disposition),
                    options: Some(options),
                    set_info: None,
                    created: false,
                }
            );
            return (OpReply::at(NtStatus::NetworkUnreachable, end), None);
        }

        // Share-mode arbitration happens before any side effect of the
        // open (in particular before a truncating disposition destroys
        // data).
        if let Ok(node) = self.ns.volume(volume).and_then(|v| v.lookup(path)) {
            let live_fcb = self.fcbs.find(volume, node);
            let compatible = live_fcb
                .map(|slot| self.shares.compatible(slot, access, options.share))
                .unwrap_or(true);
            if !compatible {
                let end = now + self.latency.metadata_op();
                self.metrics.open_failures += 1;
                self.metrics.sharing_violations += 1;
                emit_event!(
                    self,
                    IoEvent {
                        kind: EventKind::Irp(MajorFunction::Create),
                        file_object: fo,
                        fcb: FcbId(u64::MAX),
                        process,
                        volume: volume.0,
                        local,
                        paging_io: false,
                        readahead: false,
                        offset: 0,
                        length: 0,
                        transferred: 0,
                        file_size: 0,
                        byte_offset: 0,
                        status: NtStatus::SharingViolation,
                        start: now,
                        end,
                        access: Some(access),
                        disposition: Some(disposition),
                        options: Some(options),
                        set_info: None,
                        created: false,
                    }
                );
                return (OpReply::at(NtStatus::SharingViolation, end), None);
            }
        }
        let resolved = self.resolve_create(volume, path, disposition, options, now);
        let end = now + self.latency.metadata_op();
        match resolved {
            Err(status) => {
                self.metrics.open_failures += 1;
                emit_event!(
                    self,
                    IoEvent {
                        kind: EventKind::Irp(MajorFunction::Create),
                        file_object: fo,
                        fcb: FcbId(u64::MAX),
                        process,
                        volume: volume.0,
                        local,
                        paging_io: false,
                        readahead: false,
                        offset: 0,
                        length: 0,
                        transferred: 0,
                        file_size: 0,
                        byte_offset: 0,
                        status,
                        start: now,
                        end,
                        access: Some(access),
                        disposition: Some(disposition),
                        options: Some(options),
                        set_info: None,
                        created: false,
                    }
                );
                (OpReply::at(status, end), None)
            }
            Ok((node, truncated, created)) => {
                let (fcb_slot, fcb) = self.fcbs.open(volume, node);
                if truncated {
                    // §6.3: an overwrite may find unwritten dirty pages in
                    // the cache; they are purged, never written — and any
                    // close still waiting on the old data completes now.
                    self.release_deferred((volume, node), now);
                    self.cache.purge(&(volume, node));
                    self.vm.purge(&(volume, node));
                    self.metrics.overwrite_truncates += 1;
                }
                if options.temporary {
                    let _ = self.ns.volume_mut(volume).and_then(|v| {
                        let attrs = v
                            .node(node)
                            .ok()
                            .and_then(|n| n.file().map(|f| f.attributes))
                            .unwrap_or_default();
                        v.set_attributes(node, attrs | FileAttributes::TEMPORARY)
                    });
                }
                let file_size = self
                    .ns
                    .volume(volume)
                    .ok()
                    .and_then(|v| v.file_size(node).ok())
                    .unwrap_or(0);
                if created || truncated {
                    if let Some(parent) = self.parent_of(volume, node) {
                        self.fire_watches(volume, parent, now);
                    }
                }
                let handle = HandleId(
                    self.handles
                        .insert(OpenHandle {
                            fo,
                            fcb,
                            fcb_slot,
                            volume,
                            node,
                            process,
                            access,
                            options,
                            byte_offset: 0,
                            dir_cursor: 0,
                            mapped: false,
                        })
                        .pack(),
                );
                let registered = self
                    .shares
                    .try_open(fcb_slot, handle, access, options.share);
                debug_assert!(registered, "compatibility was checked above");
                self.metrics.opens += 1;
                emit_event!(
                    self,
                    IoEvent {
                        kind: EventKind::Irp(MajorFunction::Create),
                        file_object: fo,
                        fcb,
                        process,
                        volume: volume.0,
                        local,
                        paging_io: false,
                        readahead: false,
                        offset: 0,
                        length: 0,
                        transferred: 0,
                        file_size,
                        byte_offset: 0,
                        status: NtStatus::Success,
                        start: now,
                        end,
                        access: Some(access),
                        disposition: Some(disposition),
                        options: Some(options),
                        set_info: None,
                        created,
                    }
                );
                (
                    OpReply {
                        status: NtStatus::Success,
                        transferred: 0,
                        end,
                    },
                    Some(handle),
                )
            }
        }
    }

    fn resolve_create(
        &mut self,
        volume: VolumeId,
        path: &NtPath,
        disposition: Disposition,
        options: CreateOptions,
        now: SimTime,
    ) -> Result<(NodeId, bool, bool), NtStatus> {
        let vol = self.ns.volume_mut(volume).map_err(NtStatus::from)?;
        match vol.lookup(path) {
            Ok(node) => {
                let is_dir = vol
                    .node(node)
                    .map(|n| n.kind.is_directory())
                    .unwrap_or(false);
                if is_dir && !options.directory {
                    // Opening a directory as a file is allowed for control
                    // access in NT; only data access fails. We allow it.
                }
                if !is_dir && options.directory {
                    return Err(NtStatus::NotADirectory);
                }
                match disposition {
                    Disposition::Create => Err(NtStatus::ObjectNameCollision),
                    Disposition::Open | Disposition::OpenIf => Ok((node, false, false)),
                    Disposition::Overwrite | Disposition::OverwriteIf | Disposition::Supersede => {
                        if is_dir {
                            return Err(NtStatus::FileIsADirectory);
                        }
                        vol.overwrite(node, now).map_err(NtStatus::from)?;
                        Ok((node, true, false))
                    }
                }
            }
            Err(FsError::NotFound) => {
                if !disposition.may_create() {
                    return Err(NtStatus::ObjectNameNotFound);
                }
                let parent_path = path.parent();
                let parent = vol
                    .lookup(&parent_path)
                    .map_err(|_| NtStatus::ObjectPathNotFound)?;
                let name = path.file_name().ok_or(NtStatus::InvalidParameter)?;
                let node = if options.directory {
                    vol.mkdir(parent, name, now).map_err(NtStatus::from)?
                } else {
                    vol.create_file(parent, name, now).map_err(NtStatus::from)?
                };
                Ok((node, false, true))
            }
            Err(e) => Err(NtStatus::from(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::testkit::{machine, open_new, t, P};
    use crate::request::{EventKind, MajorFunction};
    use crate::status::NtStatus;
    use crate::types::{AccessMode, CreateOptions, Disposition, ShareMode};
    use nt_fs::NtPath;

    #[test]
    fn open_missing_file_fails_not_found() {
        let (mut m, vol) = machine();
        let (reply, h) = m.create(
            P,
            vol,
            &NtPath::parse(r"\missing.txt"),
            AccessMode::Read,
            Disposition::Open,
            CreateOptions::default(),
            t(1),
        );
        assert_eq!(reply.status, NtStatus::ObjectNameNotFound);
        assert!(h.is_none());
        assert_eq!(m.metrics().open_failures, 1);
        let ev = &m.observer().events[0];
        assert_eq!(ev.kind, EventKind::Irp(MajorFunction::Create));
        assert_eq!(ev.status, NtStatus::ObjectNameNotFound);
    }

    #[test]
    fn create_collision_fails() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\a.txt", t(1));
        m.close(h, t(2));
        let (reply, _) = m.create(
            P,
            vol,
            &NtPath::parse(r"\a.txt"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions::default(),
            t(3),
        );
        assert_eq!(reply.status, NtStatus::ObjectNameCollision);
    }

    #[test]
    fn overwrite_disposition_truncates() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\o.txt", t(1));
        m.write(h, Some(0), 10_000, t(1));
        m.close(h, t(2));
        for s in 3..8 {
            m.lazy_tick(t(s));
        }
        let (reply, h2) = m.create(
            P,
            vol,
            &NtPath::parse(r"\o.txt"),
            AccessMode::Write,
            Disposition::OverwriteIf,
            CreateOptions::default(),
            t(10),
        );
        assert_eq!(reply.status, NtStatus::Success);
        assert_eq!(m.metrics().overwrite_truncates, 1);
        let v = m.namespace().volume(vol).unwrap();
        let node = v.lookup(&NtPath::parse(r"\o.txt")).unwrap();
        assert_eq!(v.file_size(node).unwrap(), 0);
        m.close(h2.unwrap(), t(11));
    }

    #[test]
    fn sharing_violation_blocks_second_opener() {
        let (mut m, vol) = machine();
        // Open exclusively (share nothing).
        let (_, h1) = m.create(
            P,
            vol,
            &NtPath::parse(r"\locked.db"),
            AccessMode::ReadWrite,
            Disposition::OpenIf,
            CreateOptions {
                share: ShareMode::default(),
                ..CreateOptions::default()
            },
            t(1),
        );
        let h1 = h1.unwrap();
        let (reply, h2) = m.create(
            P,
            vol,
            &NtPath::parse(r"\locked.db"),
            AccessMode::Read,
            Disposition::Open,
            CreateOptions::default(),
            t(2),
        );
        assert_eq!(reply.status, NtStatus::SharingViolation);
        assert!(h2.is_none());
        assert_eq!(m.metrics().sharing_violations, 1);
        m.close(h1, t(3));
        // After the exclusive handle cleans up, the open succeeds.
        let (reply, h3) = m.create(
            P,
            vol,
            &NtPath::parse(r"\locked.db"),
            AccessMode::Read,
            Disposition::Open,
            CreateOptions::default(),
            t(4),
        );
        assert_eq!(reply.status, NtStatus::Success);
        m.close(h3.unwrap(), t(5));
    }
}
