//! Memory-mapped access (§3.3) and the zero-copy MDL interface (§10's
//! closing observation).

use nt_fs::{NtPath, VolumeId};
use nt_sim::{SimDuration, SimTime};
use nt_vm::SectionKind;

use crate::machine::{emit_event, FileKey, Machine, OpReply};
use crate::observer::IoObserver;
use crate::ops::read_write::DataDir;
use crate::request::{EventKind, FastIoKind, IoEvent, MajorFunction};
use crate::stack::IrpFrame;
use crate::status::NtStatus;
use crate::types::{AccessMode, CreateOptions, Disposition, HandleId, ProcessId};

impl<O: IoObserver> Machine<O> {
    /// Loads an executable image through a section: create, section
    /// acquire, paging reads (or a warm standby hit), handle close. The
    /// image stays resident after [`Machine::unload_image`] per §3.3.
    ///
    /// The wrapper frame carries no major function — the create it issues
    /// internally descends the stack as its own packet — so a filter sees
    /// the composite once and the create IRP once.
    pub fn load_image(
        &mut self,
        process: ProcessId,
        volume: VolumeId,
        path: &NtPath,
        now: SimTime,
    ) -> OpReply {
        let frame = IrpFrame {
            major: None,
            label: "load_image",
            handle: None,
            process: Some(process),
            offset: 0,
            length: 0,
            now,
        };
        self.dispatch(frame, |m, f| m.load_image_fsd(process, volume, path, f.now))
    }

    fn load_image_fsd(
        &mut self,
        process: ProcessId,
        volume: VolumeId,
        path: &NtPath,
        now: SimTime,
    ) -> OpReply {
        let (reply, handle) = self.create(
            process,
            volume,
            path,
            AccessMode::Read,
            Disposition::Open,
            CreateOptions::default(),
            now,
        );
        let Some(handle) = handle else {
            return reply;
        };
        let h = self.handles.get_raw(handle.0).expect("just created");
        let (fo, fcb, node) = (h.fo, h.fcb, h.node);
        let local = self.ns.is_local(volume);
        let key: FileKey = (volume, node);
        let size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);

        let t = reply.end;
        // Section acquisition rides FastIO (or its FSCTL packet fallback).
        let acq_end = t + self.latency.fastio_metadata();
        emit_event!(
            self,
            IoEvent {
                kind: self.fastio_event_kind(FastIoKind::AcquireFileForNtCreateSection),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size: size,
                byte_offset: 0,
                status: NtStatus::Success,
                start: t,
                end: acq_end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        let reads = self.vm.load_image(&key, size, acq_end);
        let mut done = acq_end;
        for r in &reads {
            let fin = self
                .latency
                .disk_io(volume.0 as usize, r.len, acq_end, &mut self.rng);
            done = done.max(fin);
            self.metrics.paging_reads += 1;
            self.metrics.paging_read_bytes += r.len;
            self.emit_read_event(
                EventKind::Irp(MajorFunction::Read),
                fo,
                fcb,
                process,
                volume,
                local,
                true,
                false,
                r.offset,
                r.len,
                r.len,
                size,
                0,
                acq_end,
                fin,
            );
        }
        emit_event!(
            self,
            IoEvent {
                kind: self.fastio_event_kind(FastIoKind::ReleaseFileForNtCreateSection),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size: size,
                byte_offset: 0,
                status: NtStatus::Success,
                start: done,
                end: done + self.latency.fastio_metadata(),
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        let close = self.close(handle, done + self.latency.fastio_metadata());
        OpReply {
            status: NtStatus::Success,
            transferred: size,
            end: close.end,
        }
    }

    /// Releases a process's reference on an image section; the pages stay
    /// on the standby list.
    pub fn unload_image(&mut self, volume: VolumeId, path: &NtPath) {
        if let Ok(fr) = self.ns.resolve(volume, path) {
            self.vm.unmap(&(fr.volume, fr.node));
        }
    }

    /// Maps an open file as a data section (scientific codes, §6.1).
    pub fn map_file(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.pump(now);
        let Some(h) = self.handles.get_raw_mut(handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        h.mapped = true;
        let (volume, node) = (h.volume, h.node);
        let size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);
        self.vm.map(&(volume, node), SectionKind::Data, size, now);
        OpReply::at(NtStatus::Success, now + self.latency.fastio_metadata())
    }

    /// Touches a mapped range; page faults become paging reads (§3.3).
    pub fn mapped_read(
        &mut self,
        handle: HandleId,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let frame = IrpFrame {
            major: None,
            label: "mapped_read",
            handle: Some(handle),
            process: self.handles.get_raw(handle.0).map(|h| h.process),
            offset,
            length: len,
            now,
        };
        self.dispatch(frame, |m, f| m.mapped_read_fsd(handle, offset, len, f.now))
    }

    fn mapped_read_fsd(
        &mut self,
        handle: HandleId,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> OpReply {
        let Some(h) = self.handles.get_raw(handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (fo, fcb, volume, node, process) = (h.fo, h.fcb, h.volume, h.node, h.process);
        let local = self.ns.is_local(volume);
        let key: FileKey = (volume, node);
        let size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);
        let reads = self.vm.fault(&key, offset, len, now);
        let mut end = now + SimDuration::from_micros(1);
        for r in &reads {
            let fin = self
                .latency
                .disk_io(volume.0 as usize, r.len, now, &mut self.rng);
            end = end.max(fin);
            self.metrics.paging_reads += 1;
            self.metrics.paging_read_bytes += r.len;
            self.emit_read_event(
                EventKind::Irp(MajorFunction::Read),
                fo,
                fcb,
                process,
                volume,
                local,
                true,
                false,
                r.offset,
                r.len,
                r.len,
                size,
                0,
                now,
                fin,
            );
        }
        self.metrics.bytes_read += len.min(size.saturating_sub(offset));
        OpReply {
            status: NtStatus::Success,
            transferred: len.min(size.saturating_sub(offset)),
            end,
        }
    }

    /// An MDL read: the caller is handed a memory descriptor list over
    /// the cache pages instead of a copy. §10: "the cache manager has
    /// functionality to avoid a copy of the data through a direct memory
    /// interface … we observed that only kernel-based services use this
    /// functionality" — in this model, the CIFS server serving remote
    /// clients.
    pub fn mdl_read(&mut self, handle: HandleId, offset: u64, len: u64, now: SimTime) -> OpReply {
        self.pump(now);
        let d = match self.data_op(handle, Some(offset), DataDir::Read, now) {
            Ok(d) => d,
            Err(reply) => return reply,
        };
        let frame = IrpFrame {
            major: None,
            label: "mdl_read",
            handle: Some(handle),
            process: Some(d.process),
            offset,
            length: len,
            now,
        };
        self.dispatch(frame, |m, f| m.mdl_read_fsd(handle, offset, len, f.now))
    }

    fn mdl_read_fsd(&mut self, handle: HandleId, offset: u64, len: u64, now: SimTime) -> OpReply {
        let d = match self.data_op(handle, Some(offset), DataDir::Read, now) {
            Ok(d) => d,
            Err(reply) => return reply,
        };
        let file_size = self
            .ns
            .volume(d.volume)
            .ok()
            .and_then(|v| v.file_size(d.node).ok())
            .unwrap_or(0);
        if offset >= file_size {
            let end = now + self.latency.fastio_metadata();
            return OpReply::at(NtStatus::EndOfFile, end);
        }
        self.metrics.read_dispatches += 1;
        let transferred = len.min(file_size - offset);
        // The pages must be resident; misses page in like any read.
        let outcome = self
            .cache
            .read(&d.key, offset, len, file_size, Self::hints_for(d.options));
        self.metrics.cached_read_requested_bytes += transferred;
        let mut done = now;
        for io in &outcome.ios {
            let fin = self
                .latency
                .disk_io(d.volume.0 as usize, io.len, now, &mut self.rng);
            self.metrics.paging_reads += 1;
            self.metrics.paging_read_bytes += io.len;
            self.cache.complete_paging_read(&d.key, io.offset, io.len);
            done = done.max(fin);
            self.emit_read_event(
                EventKind::Irp(MajorFunction::Read),
                d.fo,
                d.fcb,
                d.process,
                d.volume,
                d.local,
                true,
                io.readahead,
                io.offset,
                io.len,
                io.len,
                file_size,
                0,
                now,
                fin,
            );
        }
        // No copy: only the descriptor setup cost.
        let end = done + self.latency.fastio_metadata();
        if self.stack.fastio_supported(FastIoKind::MdlRead) {
            self.metrics.fastio_reads += 1;
        } else {
            self.metrics.irp_reads += 1;
        }
        self.metrics.bytes_read += transferred;
        emit_event!(
            self,
            IoEvent {
                kind: self.fastio_event_kind(FastIoKind::MdlRead),
                file_object: d.fo,
                fcb: d.fcb,
                process: d.process,
                volume: d.volume.0,
                local: d.local,
                paging_io: false,
                readahead: false,
                offset,
                length: len,
                transferred,
                file_size,
                byte_offset: 0,
                status: NtStatus::Success,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        // The caller releases the MDL when done.
        let rel = end + self.latency.fastio_metadata();
        emit_event!(
            self,
            IoEvent {
                kind: self.fastio_event_kind(FastIoKind::MdlReadComplete),
                file_object: d.fo,
                fcb: d.fcb,
                process: d.process,
                volume: d.volume.0,
                local: d.local,
                paging_io: false,
                readahead: false,
                offset,
                length: len,
                transferred,
                file_size,
                byte_offset: 0,
                status: NtStatus::Success,
                start: end,
                end: rel,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        OpReply {
            status: NtStatus::Success,
            transferred,
            end: rel,
        }
    }

    /// An MDL write: the caller fills cache pages directly
    /// (PrepareMdlWrite / MdlWriteComplete).
    pub fn mdl_write(&mut self, handle: HandleId, offset: u64, len: u64, now: SimTime) -> OpReply {
        self.pump(now);
        let d = match self.data_op(handle, Some(offset), DataDir::Write, now) {
            Ok(d) => d,
            Err(reply) => return reply,
        };
        let frame = IrpFrame {
            major: None,
            label: "mdl_write",
            handle: Some(handle),
            process: Some(d.process),
            offset,
            length: len,
            now,
        };
        self.dispatch(frame, |m, f| m.mdl_write_fsd(handle, offset, len, f.now))
    }

    fn mdl_write_fsd(&mut self, handle: HandleId, offset: u64, len: u64, now: SimTime) -> OpReply {
        let d = match self.data_op(handle, Some(offset), DataDir::Write, now) {
            Ok(d) => d,
            Err(reply) => return reply,
        };
        if let Err(e) = self
            .ns
            .volume_mut(d.volume)
            .and_then(|v| v.note_write(d.node, offset, len, now))
        {
            return OpReply::at(NtStatus::from(e), now);
        }
        if let Some(f) = self.fcbs.get_mut(d.fcb_slot) {
            f.written = true;
        }
        self.metrics.write_dispatches += 1;
        let file_size = self
            .ns
            .volume(d.volume)
            .ok()
            .and_then(|v| v.file_size(d.node).ok())
            .unwrap_or(0);
        let outcome = self
            .cache
            .write(&d.key, offset, len, file_size, Self::hints_for(d.options));
        let mut done = now;
        for io in &outcome.ios {
            let fin = self
                .latency
                .disk_io(d.volume.0 as usize, io.len, now, &mut self.rng);
            self.metrics.paging_writes += 1;
            self.metrics.paging_write_bytes += io.len;
            done = done.max(fin);
            self.emit_write_event(
                EventKind::Irp(MajorFunction::Write),
                d.fo,
                d.fcb,
                d.process,
                d.volume,
                d.local,
                true,
                io.offset,
                io.len,
                file_size,
                0,
                now,
                fin,
            );
        }
        let end = done + self.latency.fastio_metadata();
        if self.stack.fastio_supported(FastIoKind::PrepareMdlWrite) {
            self.metrics.fastio_writes += 1;
        } else {
            self.metrics.irp_writes += 1;
        }
        self.metrics.bytes_written += len;
        for (kind, s, e) in [
            (FastIoKind::PrepareMdlWrite, now, end),
            (
                FastIoKind::MdlWriteComplete,
                end,
                end + self.latency.fastio_metadata(),
            ),
        ] {
            emit_event!(
                self,
                IoEvent {
                    kind: self.fastio_event_kind(kind),
                    file_object: d.fo,
                    fcb: d.fcb,
                    process: d.process,
                    volume: d.volume.0,
                    local: d.local,
                    paging_io: false,
                    readahead: false,
                    offset,
                    length: len,
                    transferred: len,
                    file_size,
                    byte_offset: 0,
                    status: NtStatus::Success,
                    start: s,
                    end: e,
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: None,
                    created: false,
                }
            );
        }
        OpReply {
            status: NtStatus::Success,
            transferred: len,
            end: end + self.latency.fastio_metadata(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::testkit::{machine, open_new, t, P};
    use crate::request::{EventKind, FastIoKind};
    use crate::status::NtStatus;
    use nt_fs::NtPath;
    use nt_sim::SimDuration;

    #[test]
    fn image_loads_cold_then_warm() {
        let (mut m, vol) = machine();
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            let d = v.mkdir(root, "winnt", t(0)).unwrap();
            let f = v.create_file(d, "notepad.exe", t(0)).unwrap();
            v.set_file_size(f, 150_000, t(0)).unwrap();
        }
        let path = NtPath::parse(r"\winnt\notepad.exe");
        let r1 = m.load_image(P, vol, &path, t(1));
        assert_eq!(r1.status, NtStatus::Success);
        let cold_paging = m.metrics().paging_reads;
        assert!(cold_paging > 0);
        m.unload_image(vol, &path);
        let r2 = m.load_image(P, vol, &path, t(100));
        assert_eq!(r2.status, NtStatus::Success);
        assert_eq!(
            m.metrics().paging_reads,
            cold_paging,
            "§3.3: warm image load does no paging I/O"
        );
        assert_eq!(m.vm_metrics().warm_image_maps, 1);
    }

    #[test]
    fn mapped_reads_fault_pages_in() {
        let (mut m, vol) = machine();
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            let f = v.create_file(root, "sim.dat", t(0)).unwrap();
            v.set_file_size(f, 1 << 20, t(0)).unwrap();
        }
        let h = open_new(&mut m, vol, r"\sim.dat", t(1));
        m.map_file(h, t(1));
        let r = m.mapped_read(h, 0, 8_192, t(2));
        assert_eq!(r.transferred, 8_192);
        assert!(m.metrics().paging_reads >= 1);
        let again = m.mapped_read(h, 0, 8_192, t(3));
        assert_eq!(
            m.vm_metrics().soft_faults,
            1,
            "second touch is a soft fault"
        );
        assert!(again.end.saturating_since(t(3)) < SimDuration::from_millis(1));
        m.close(h, t(4));
    }

    #[test]
    fn mdl_interface_moves_data_without_copy_cost() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\served.dat", t(1));
        let w = m.mdl_write(h, 0, 65_536, t(1));
        assert_eq!(w.status, NtStatus::Success);
        assert_eq!(w.transferred, 65_536);
        let warm = m.mdl_read(h, 0, 65_536, t(2));
        assert_eq!(warm.status, NtStatus::Success);
        // Zero-copy: a 64 KB warm MDL read is as cheap as metadata, far
        // below the ~8 ms a 64 KB copy at memory speed would cost.
        assert!(
            warm.end.saturating_since(t(2)) < SimDuration::from_micros(50),
            "got {}",
            warm.end.saturating_since(t(2))
        );
        // The MDL call pairs appear in the trace.
        let kinds: Vec<EventKind> = m.observer().events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::FastIo(FastIoKind::MdlRead)));
        assert!(kinds.contains(&EventKind::FastIo(FastIoKind::MdlReadComplete)));
        assert!(kinds.contains(&EventKind::FastIo(FastIoKind::PrepareMdlWrite)));
        assert!(kinds.contains(&EventKind::FastIo(FastIoKind::MdlWriteComplete)));
        m.close(h, t(3));
    }
}
