//! Identifiers and open-time parameters.

/// A process on the traced machine. The workload layer assigns ids and
/// keeps the id → image-name mapping; trace records carry only the id,
/// exactly like the study's records (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProcessId(pub u32);

/// A kernel file object. One is created per open (even a failed one gets
/// an id in the trace so the create record can be attributed).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FileObjectId(pub u64);

/// A user-visible handle returned by a successful create.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HandleId(pub u64);

/// The per-file stream control block identity: all opens of the same file
/// share one FCB, which is the key the cache and VM managers use.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FcbId(pub u64);

/// Requested access, reduced to the classes the analysis distinguishes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessMode {
    /// GENERIC_READ.
    Read,
    /// GENERIC_WRITE.
    Write,
    /// GENERIC_READ | GENERIC_WRITE.
    ReadWrite,
    /// Attribute/control access only (FILE_READ_ATTRIBUTES etc.) — the
    /// open-for-control sessions that dominate §8.3.
    Control,
    /// DELETE access for an open-to-delete.
    Delete,
}

impl AccessMode {
    /// True when data reads are permitted.
    pub fn can_read(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// True when data writes are permitted.
    pub fn can_write(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }
}

/// Share mode (kept for completeness; the single-user workloads of the
/// study rarely conflict).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ShareMode {
    /// FILE_SHARE_READ.
    pub read: bool,
    /// FILE_SHARE_WRITE.
    pub write: bool,
    /// FILE_SHARE_DELETE.
    pub delete: bool,
}

impl ShareMode {
    /// Share-everything, the common library default.
    pub fn all() -> Self {
        ShareMode {
            read: true,
            write: true,
            delete: true,
        }
    }
}

/// NT create disposition (what to do about existence).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Disposition {
    /// FILE_OPEN: fail if the file does not exist.
    Open,
    /// FILE_CREATE: fail if the file exists.
    Create,
    /// FILE_OPEN_IF: open, or create when missing.
    OpenIf,
    /// FILE_OVERWRITE: truncate existing, fail when missing — one of the
    /// §6.3 "delete by overwrite" paths.
    Overwrite,
    /// FILE_OVERWRITE_IF: truncate existing or create.
    OverwriteIf,
    /// FILE_SUPERSEDE: replace the file outright.
    Supersede,
}

impl Disposition {
    /// True when an existing file's data is destroyed by the open.
    pub fn truncates(self) -> bool {
        matches!(
            self,
            Disposition::Overwrite | Disposition::OverwriteIf | Disposition::Supersede
        )
    }

    /// True when the disposition may create the file.
    pub fn may_create(self) -> bool {
        matches!(
            self,
            Disposition::Create
                | Disposition::OpenIf
                | Disposition::OverwriteIf
                | Disposition::Supersede
        )
    }
}

/// Open-time options and attributes the study found performance-relevant
/// (table 1: "access attributes … can improve access performance
/// significantly but are underutilized").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CreateOptions {
    /// FILE_SEQUENTIAL_ONLY — doubles read-ahead (§9.1).
    pub sequential_only: bool,
    /// FILE_WRITE_THROUGH — disables write caching (§9.2).
    pub write_through: bool,
    /// FILE_NO_INTERMEDIATE_BUFFERING — disables read caching entirely;
    /// §9: used for only 0.2 % of files, all requests take the IRP path.
    pub no_intermediate_buffering: bool,
    /// FILE_DELETE_ON_CLOSE.
    pub delete_on_close: bool,
    /// FILE_ATTRIBUTE_TEMPORARY on the created file (§6.3: 1 % of
    /// new-file deletions).
    pub temporary: bool,
    /// FILE_DIRECTORY_FILE — the open targets a directory.
    pub directory: bool,
    /// Share mode the opener grants to others; the common library
    /// default is share-everything, and restrictive modes produce the
    /// sharing-violation open failures.
    pub share: ShareMode,
}

impl Default for CreateOptions {
    fn default() -> Self {
        CreateOptions {
            sequential_only: false,
            write_through: false,
            no_intermediate_buffering: false,
            delete_on_close: false,
            temporary: false,
            directory: false,
            share: ShareMode::all(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_mode_classes() {
        assert!(AccessMode::Read.can_read());
        assert!(!AccessMode::Read.can_write());
        assert!(AccessMode::ReadWrite.can_read() && AccessMode::ReadWrite.can_write());
        assert!(!AccessMode::Control.can_read());
        assert!(!AccessMode::Delete.can_write());
    }

    #[test]
    fn disposition_properties() {
        assert!(Disposition::Overwrite.truncates());
        assert!(Disposition::Supersede.truncates());
        assert!(!Disposition::Open.truncates());
        assert!(Disposition::OverwriteIf.may_create());
        assert!(!Disposition::Overwrite.may_create());
        assert!(!Disposition::Open.may_create());
        assert!(Disposition::Create.may_create());
    }
}
