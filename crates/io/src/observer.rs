//! The filter-driver attachment point.
//!
//! The study inserted a filter driver above every local file-system driver
//! instance and the network redirector (§3.2). [`IoObserver`] is that
//! attachment: the I/O manager reports every IRP and FastIO call, plus the
//! auxiliary record mapping each new file object to its name.

use crate::request::IoEvent;
use crate::types::{FileObjectId, ProcessId};
use nt_sim::SimTime;

/// Metadata reported once per new file object (§3.2: "an additional trace
/// record is written for each new file object, mapping object id to a file
/// name").
#[derive(Clone, Debug)]
pub struct FileObjectInfo {
    /// The new file object.
    pub id: FileObjectId,
    /// Volume index within the machine namespace.
    pub volume: u32,
    /// Full path being opened (lower-cased components).
    pub path: String,
    /// Opening process.
    pub process: ProcessId,
    /// When the create was issued.
    pub at: SimTime,
}

/// The record consumer at the bottom of the driver stack.
///
/// `'static` because observers ride inside a boxed
/// [`crate::filters::ObserverFilter`] layer in the machine's
/// [`crate::stack::DriverStack`].
pub trait IoObserver: 'static {
    /// Whether this observer consumes records at all. When `false` the
    /// machine skips building `IoEvent`/`FileObjectInfo` values entirely
    /// — an untraced machine pays nothing on the request hot path. The
    /// constant is resolved at monomorphisation time, so the enabled
    /// path carries no branch either.
    const ENABLED: bool = true;

    /// A new file object came into existence (successful or failed open).
    fn file_object(&mut self, info: &FileObjectInfo);

    /// An IRP or FastIO request completed; `event` carries both
    /// timestamps.
    fn event(&mut self, event: &IoEvent);
}

/// An observer that records nothing (an untraced machine).
#[derive(Default, Clone, Copy, Debug)]
pub struct NullObserver;

impl IoObserver for NullObserver {
    const ENABLED: bool = false;

    fn file_object(&mut self, _info: &FileObjectInfo) {}

    fn event(&mut self, _event: &IoEvent) {}
}

/// An observer that appends everything to vectors; handy in tests.
#[derive(Default, Debug)]
pub struct VecObserver {
    /// File-object records seen.
    pub objects: Vec<FileObjectInfo>,
    /// Request records seen.
    pub events: Vec<IoEvent>,
}

impl IoObserver for VecObserver {
    fn file_object(&mut self, info: &FileObjectInfo) {
        self.objects.push(info.clone());
    }

    fn event(&mut self, event: &IoEvent) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_silent() {
        let mut o = NullObserver;
        o.file_object(&FileObjectInfo {
            id: FileObjectId(1),
            volume: 0,
            path: String::new(),
            process: ProcessId(0),
            at: SimTime::ZERO,
        });
        // Nothing to assert beyond "it compiles and does not panic".
    }
}
