//! Share-mode arbitration and byte-range locks.
//!
//! Windows NT arbitrates every open against the share modes of the
//! handles already open on the file, and IRP_MJ_LOCK_CONTROL implements
//! byte-range locks on top. The study logged lock operations without
//! detail (§3.4 explicitly scopes them out of the analysis), but the
//! mechanisms influence the trace — sharing violations are open failures,
//! and database-style applications issue lock traffic — so the model
//! implements both.

use crate::arena::ArenaHandle;
use crate::types::{AccessMode, HandleId, ShareMode};

/// One opener's contribution to the share state of a file.
#[derive(Clone, Copy, Debug)]
pub struct ShareEntry {
    /// Access the opener was granted.
    pub access: AccessMode,
    /// What the opener allows others to do.
    pub share: ShareMode,
}

/// Checks an open request against the existing openers of the file.
///
/// NT semantics: the new opener's requested access must be permitted by
/// every existing opener's share mode, and the new opener's share mode
/// must permit every existing opener's access.
pub fn share_compatible(existing: &[ShareEntry], access: AccessMode, share: ShareMode) -> bool {
    for e in existing {
        // Existing opener must allow what the newcomer wants.
        if access.can_read() && !e.share.read {
            return false;
        }
        if access.can_write() && !e.share.write {
            return false;
        }
        if matches!(access, AccessMode::Delete) && !e.share.delete {
            return false;
        }
        // Newcomer must allow what existing openers hold.
        if e.access.can_read() && !share.read {
            return false;
        }
        if e.access.can_write() && !share.write {
            return false;
        }
        if matches!(e.access, AccessMode::Delete) && !share.delete {
            return false;
        }
    }
    true
}

/// One byte-range lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ByteRangeLock {
    /// Lock start offset.
    pub offset: u64,
    /// Lock length.
    pub len: u64,
    /// Exclusive (write) vs shared (read) lock.
    pub exclusive: bool,
    /// Owning handle.
    pub owner: HandleId,
}

impl ByteRangeLock {
    fn overlaps(&self, offset: u64, len: u64) -> bool {
        let (s1, e1) = (self.offset, self.offset.saturating_add(self.len));
        let (s2, e2) = (offset, offset.saturating_add(len));
        s1 < e2 && s2 < e1
    }
}

/// Per-file byte-range lock table (keyed by FCB at the machine level).
#[derive(Clone, Debug, Default)]
pub struct LockTable {
    locks: Vec<ByteRangeLock>,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Number of live locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True when no locks are held.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Attempts to take a lock; `true` on success. Shared locks coexist;
    /// an exclusive lock conflicts with any overlapping lock held by a
    /// different handle.
    pub fn lock(&mut self, owner: HandleId, offset: u64, len: u64, exclusive: bool) -> bool {
        if len == 0 {
            return false;
        }
        for l in &self.locks {
            if l.owner != owner && l.overlaps(offset, len) && (exclusive || l.exclusive) {
                return false;
            }
        }
        self.locks.push(ByteRangeLock {
            offset,
            len,
            exclusive,
            owner,
        });
        true
    }

    /// Releases a single lock previously taken with exactly this range;
    /// `true` when one was found.
    pub fn unlock(&mut self, owner: HandleId, offset: u64, len: u64) -> bool {
        if let Some(i) = self
            .locks
            .iter()
            .position(|l| l.owner == owner && l.offset == offset && l.len == len)
        {
            self.locks.swap_remove(i);
            true
        } else {
            false
        }
    }

    /// Releases every lock held by a handle (UnlockAll / handle cleanup).
    /// Returns how many were dropped.
    pub fn unlock_all(&mut self, owner: HandleId) -> usize {
        let before = self.locks.len();
        self.locks.retain(|l| l.owner != owner);
        before - self.locks.len()
    }

    /// True when `[offset, offset+len)` can be written by `owner`:
    /// no conflicting lock held by someone else.
    pub fn write_allowed(&self, owner: HandleId, offset: u64, len: u64) -> bool {
        !self
            .locks
            .iter()
            .any(|l| l.owner != owner && l.overlaps(offset, len))
    }

    /// True when the range can be read by `owner` (only exclusive locks
    /// of other handles block reads).
    pub fn read_allowed(&self, owner: HandleId, offset: u64, len: u64) -> bool {
        !self
            .locks
            .iter()
            .any(|l| l.owner != owner && l.exclusive && l.overlaps(offset, len))
    }
}

/// Share state of one file, living in the slot of the file's FCB.
#[derive(Clone, Debug, Default)]
struct ShareState {
    /// Generation of the FCB slot the state belongs to; a mismatch means
    /// the slot was reclaimed and reused by another file, so whatever is
    /// stored here is dead (it should already be empty — entries and
    /// locks are dropped with the last cleanup, before FCB reclaim).
    generation: u32,
    entries: Vec<(HandleId, ShareEntry)>,
    locks: LockTable,
}

/// The per-machine registry of share states, keyed by FCB slot.
///
/// The registry is a plain vector indexed by the FCB's arena slot —
/// no hashing on the data hot path (byte-range lock arbitration runs on
/// every read and write). Slot generations guard against reuse: a state
/// stamped with an older generation reads as empty.
#[derive(Default)]
pub struct ShareRegistry {
    states: Vec<ShareState>,
}

impl ShareRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ShareRegistry::default()
    }

    /// The live state for `fcb`, if its slot holds one.
    fn state(&self, fcb: ArenaHandle) -> Option<&ShareState> {
        self.states
            .get(fcb.index())
            .filter(|s| s.generation == fcb.generation())
    }

    /// Mutable state for `fcb`, growing the vector and resetting any
    /// stale previous occupant of the slot.
    fn state_mut(&mut self, fcb: ArenaHandle) -> &mut ShareState {
        if fcb.index() >= self.states.len() {
            self.states
                .resize_with(fcb.index() + 1, ShareState::default);
        }
        let state = &mut self.states[fcb.index()];
        if state.generation != fcb.generation() {
            debug_assert!(
                state.entries.is_empty() && state.locks.is_empty(),
                "share state must drain before its FCB slot is reused"
            );
            state.entries.clear();
            state.locks = LockTable::new();
            state.generation = fcb.generation();
        }
        state
    }

    /// Read-only compatibility check (used before any side effects of
    /// the open are applied).
    pub fn compatible(&self, fcb: ArenaHandle, access: AccessMode, share: ShareMode) -> bool {
        match self.state(fcb) {
            Some(state) => {
                let existing: Vec<ShareEntry> = state.entries.iter().map(|(_, e)| *e).collect();
                share_compatible(&existing, access, share)
            }
            None => true,
        }
    }

    /// Arbitrates and registers a new open; `false` is a sharing
    /// violation.
    pub fn try_open(
        &mut self,
        fcb: ArenaHandle,
        handle: HandleId,
        access: AccessMode,
        share: ShareMode,
    ) -> bool {
        let state = self.state_mut(fcb);
        let existing: Vec<ShareEntry> = state.entries.iter().map(|(_, e)| *e).collect();
        if !share_compatible(&existing, access, share) {
            return false;
        }
        state.entries.push((handle, ShareEntry { access, share }));
        true
    }

    /// Removes a handle's registration and drops its locks.
    pub fn close(&mut self, fcb: ArenaHandle, handle: HandleId) {
        let Some(state) = self.states.get_mut(fcb.index()) else {
            return;
        };
        if state.generation != fcb.generation() {
            return;
        }
        state.entries.retain(|(h, _)| *h != handle);
        state.locks.unlock_all(handle);
        if state.entries.is_empty() {
            // Keep the allocation; the slot's next occupant reuses it.
            state.locks = LockTable::new();
        }
    }

    /// The lock table of a file.
    pub fn locks_mut(&mut self, fcb: ArenaHandle) -> &mut LockTable {
        &mut self.state_mut(fcb).locks
    }

    /// Read-only view of a file's locks.
    pub fn locks(&self, fcb: ArenaHandle) -> Option<&LockTable> {
        self.state(fcb).map(|s| &s.locks)
    }

    /// Openers currently registered on a file.
    pub fn openers(&self, fcb: ArenaHandle) -> usize {
        self.state(fcb).map_or(0, |s| s.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H1: HandleId = HandleId(1);
    const H2: HandleId = HandleId(2);

    #[test]
    fn share_everything_always_compatible() {
        let existing = vec![ShareEntry {
            access: AccessMode::ReadWrite,
            share: ShareMode::all(),
        }];
        assert!(share_compatible(
            &existing,
            AccessMode::ReadWrite,
            ShareMode::all()
        ));
    }

    #[test]
    fn exclusive_open_blocks_second_writer() {
        // First opener shares nothing.
        let exclusive = ShareEntry {
            access: AccessMode::Write,
            share: ShareMode::default(),
        };
        assert!(!share_compatible(
            &[exclusive],
            AccessMode::Read,
            ShareMode::all()
        ));
        // Reader sharing read only blocks writers.
        let reader = ShareEntry {
            access: AccessMode::Read,
            share: ShareMode {
                read: true,
                write: false,
                delete: false,
            },
        };
        assert!(share_compatible(
            &[reader],
            AccessMode::Read,
            ShareMode::all()
        ));
        assert!(!share_compatible(
            &[reader],
            AccessMode::Write,
            ShareMode::all()
        ));
    }

    #[test]
    fn newcomer_share_must_cover_existing_access() {
        let writer = ShareEntry {
            access: AccessMode::Write,
            share: ShareMode::all(),
        };
        // Newcomer refuses to share writes while a writer exists.
        assert!(!share_compatible(
            &[writer],
            AccessMode::Read,
            ShareMode {
                read: true,
                write: false,
                delete: true,
            }
        ));
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = ShareRegistry::new();
        let fcb = ArenaHandle::from_parts(9, 1);
        assert!(reg.try_open(
            fcb,
            H1,
            AccessMode::Read,
            ShareMode {
                read: true,
                write: false,
                delete: false
            }
        ));
        assert!(!reg.try_open(fcb, H2, AccessMode::Write, ShareMode::all()));
        assert_eq!(reg.openers(fcb), 1);
        reg.close(fcb, H1);
        assert!(reg.try_open(fcb, H2, AccessMode::Write, ShareMode::all()));
    }

    #[test]
    fn stale_slot_generation_reads_as_empty() {
        let mut reg = ShareRegistry::new();
        let old = ArenaHandle::from_parts(3, 1);
        assert!(reg.try_open(old, H1, AccessMode::Read, ShareMode::all()));
        reg.close(old, H1);
        // The slot is reused by a different file (generation bumped).
        let new = ArenaHandle::from_parts(3, 2);
        assert!(reg.compatible(new, AccessMode::Write, ShareMode::default()));
        assert_eq!(reg.openers(new), 0);
        assert!(reg.locks(new).is_none());
        assert!(reg.try_open(new, H2, AccessMode::Write, ShareMode::default()));
        // The old handle's view is dead too.
        assert_eq!(reg.openers(old), 0);
    }

    #[test]
    fn byte_range_locks() {
        let mut t = LockTable::new();
        assert!(t.lock(H1, 0, 100, false), "shared lock");
        assert!(t.lock(H2, 50, 100, false), "shared locks coexist");
        assert!(!t.lock(H2, 0, 10, true), "exclusive conflicts with shared");
        assert!(t.lock(H2, 200, 50, true), "non-overlapping exclusive ok");
        assert!(!t.lock(H1, 210, 5, false), "shared blocked by exclusive");
        assert!(t.read_allowed(H1, 0, 100));
        assert!(
            !t.read_allowed(H1, 200, 10),
            "other's exclusive blocks read"
        );
        assert!(!t.write_allowed(H1, 60, 10), "other's shared blocks write");
        assert!(t.write_allowed(H2, 200, 50), "own exclusive allows write");
        assert!(t.unlock(H2, 200, 50));
        assert!(!t.unlock(H2, 200, 50), "double unlock fails");
        assert_eq!(t.unlock_all(H1), 1);
        assert_eq!(t.len(), 1, "H2's shared lock remains");
    }

    #[test]
    fn zero_length_lock_rejected() {
        let mut t = LockTable::new();
        assert!(!t.lock(H1, 5, 0, true));
    }
}
