//! The layered driver stack every request descends.
//!
//! §3.2 of the paper: "in Windows NT each I/O request is encapsulated
//! into an I/O request packet (IRP) which the I/O manager hands to the
//! highest driver in the stack; each driver may complete the request,
//! pass it down, or do work on both the way down and — via a completion
//! routine — the way back up." The study's tracer was exactly such a
//! layer: a filter driver attached above the FSD.
//!
//! [`DriverStack`] reifies that chain. Every IRP the machine dispatches
//! descends the attached [`FilterDriver`]s in order (`IoCallDriver`
//! style): each layer's [`FilterDriver::pre`] may complete the request
//! short of the FSD, adjust the frame (e.g. add latency, as a virus
//! scanner does), or pass it down; every layer the packet passed sees
//! the completed reply on the way back up through
//! [`FilterDriver::post`]. The FSD plus cache-manager/VM fast path sits
//! at the bottom, below the deepest filter.
//!
//! The FastIO path never descends the stack — it is procedural (§10) —
//! but each layer exposes a [`FastIoDispatch`] table, and the stack's
//! effective table is their intersection: one layer opting a routine out
//! forces the documented IRP fallback for the whole machine.

use std::any::Any;

use nt_sim::SimTime;

use crate::fastio::FastIoDispatch;
use crate::machine::OpReply;
use crate::observer::FileObjectInfo;
use crate::request::{IoEvent, MajorFunction};
use crate::types::{HandleId, ProcessId};

/// The request packet a filter sees on the way down.
///
/// Filters may push [`IrpFrame::now`] forward in [`FilterDriver::pre`]
/// to model per-layer service time (the FSD then runs at the delayed
/// time, so the added latency is visible in the trace's timestamps), but
/// must not move it backward.
#[derive(Clone, Copy, Debug)]
pub struct IrpFrame {
    /// The packet's major function. `None` for composite background
    /// drives (image load, section fault, lazy-writer tick) that issue
    /// several packets internally.
    pub major: Option<MajorFunction>,
    /// Stable label for span instrumentation ("read", "close", …).
    pub label: &'static str,
    /// Target handle, when the request has one.
    pub handle: Option<HandleId>,
    /// Requesting process, when known at dispatch time.
    pub process: Option<ProcessId>,
    /// Request byte offset (data ops), 0 otherwise.
    pub offset: u64,
    /// Requested length in bytes (data ops), 0 otherwise.
    pub length: u64,
    /// Arrival time at the current layer.
    pub now: SimTime,
}

/// What a filter decided to do with a descending packet.
pub enum FilterAction {
    /// Hand the packet to the next layer down (or the FSD).
    Pass,
    /// Complete the request here; lower layers never see the packet and
    /// only the layers it already passed observe the completion.
    Complete(OpReply),
}

/// One layer in the driver stack.
///
/// All methods have pass-through defaults, so a filter implements only
/// what it cares about: an observer overrides [`FilterDriver::event`], a
/// latency-adding layer overrides [`FilterDriver::pre`], a FastIO veto
/// overrides [`FilterDriver::fastio`]. Filters that override `pre`/`post`
/// must also return `true` from [`FilterDriver::intercepts`]; the stack
/// skips the whole descent when no attached layer intercepts, keeping an
/// observation-only stack off the dispatch hot path.
pub trait FilterDriver: 'static {
    /// Display name (layer diagrams, runtime profile, examples).
    fn name(&self) -> &'static str;

    /// Sees the packet on the way down.
    fn pre(&mut self, frame: &mut IrpFrame) -> FilterAction {
        let _ = frame;
        FilterAction::Pass
    }

    /// Sees the completed reply on the way back up (only for packets
    /// this layer passed down).
    fn post(&mut self, frame: &IrpFrame, reply: &mut OpReply) {
        let _ = (frame, reply);
    }

    /// This layer's FastIO method table. Defaults to the full table —
    /// attaching the filter changes nothing on the procedural path.
    fn fastio(&self) -> FastIoDispatch {
        FastIoDispatch::full()
    }

    /// Whether `pre`/`post` do anything. The stack caches the OR of all
    /// layers and bypasses the descent entirely when false.
    fn intercepts(&self) -> bool {
        false
    }

    /// Whether this layer consumes trace records. When no attached layer
    /// does, the machine skips building [`IoEvent`] values entirely.
    fn wants_events(&self) -> bool {
        false
    }

    /// A completed request's trace record (both paths, §3.2).
    fn event(&mut self, event: &IoEvent) {
        let _ = event;
    }

    /// The auxiliary record mapping a new file object to its name.
    fn file_object(&mut self, info: &FileObjectInfo) {
        let _ = info;
    }

    /// Downcast support for [`DriverStack::find`].
    fn as_any(&self) -> &dyn Any;

    /// Downcast support for [`DriverStack::find_mut`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Where a request was completed, per layer (examples' per-layer view).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayerCounters {
    /// Packets this layer completed itself (short-circuits).
    pub completed: u64,
    /// Packets this layer passed down the stack.
    pub passed: u64,
}

/// The machine's driver chain, top layer first.
///
/// Index 0 is the highest attached filter — the first to see a
/// descending packet and the last to see its completion.
pub struct DriverStack {
    filters: Vec<Box<dyn FilterDriver>>,
    counters: Vec<LayerCounters>,
    /// Packets that reached the FSD at the bottom.
    fsd_completed: u64,
    /// Cached OR of `wants_events` over the layers.
    events_wanted: bool,
    /// Cached OR of `intercepts` over the layers.
    intercepting: bool,
    /// Cached intersection of the layers' FastIO tables (the FSD's own
    /// table is full).
    fastio: FastIoDispatch,
    /// Pooled per-layer frame records — the stack's `IO_STACK_LOCATION`
    /// array. The descent pushes the packet as each layer passed it down;
    /// the ascent hands every layer back its own view. Mark/truncate
    /// discipline keeps nested dispatches (image load issuing a create)
    /// correct, and the Vec's capacity survives across requests, so the
    /// warm dispatch path allocates nothing.
    frames: Vec<IrpFrame>,
}

impl DriverStack {
    /// An empty stack: the I/O manager talks straight to the FSD.
    pub fn new() -> Self {
        DriverStack {
            filters: Vec::new(),
            counters: Vec::new(),
            fsd_completed: 0,
            events_wanted: false,
            intercepting: false,
            fastio: FastIoDispatch::full(),
            frames: Vec::new(),
        }
    }

    /// Attaches `filter` at the top of the stack (above every layer
    /// already present), as `IoAttachDevice` does.
    pub fn attach(&mut self, filter: Box<dyn FilterDriver>) {
        self.filters.insert(0, filter);
        self.counters.insert(0, LayerCounters::default());
        self.refresh();
    }

    /// Recomputes the cached aggregate views of the layers.
    fn refresh(&mut self) {
        self.events_wanted = self.filters.iter().any(|f| f.wants_events());
        self.intercepting = self.filters.iter().any(|f| f.intercepts());
        self.fastio = self
            .filters
            .iter()
            .fold(FastIoDispatch::full(), |t, f| t.intersect(f.fastio()));
    }

    /// Number of attached layers (the FSD below them is not counted).
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// True when no filter is attached.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// True when some layer consumes trace records.
    #[inline]
    pub fn events_wanted(&self) -> bool {
        self.events_wanted
    }

    /// True when some layer intercepts packets (pre/post).
    #[inline]
    pub fn intercepting(&self) -> bool {
        self.intercepting
    }

    /// The stack's effective FastIO table.
    pub fn fastio(&self) -> FastIoDispatch {
        self.fastio
    }

    /// Whether a FastIO call of `kind` goes through, or falls back to
    /// its IRP (§10's per-entry opt-out rule).
    #[inline]
    pub fn fastio_supported(&self, kind: crate::request::FastIoKind) -> bool {
        self.fastio.supports(kind)
    }

    /// Broadcasts a trace record to every layer that wants one.
    #[inline]
    pub fn event(&mut self, event: &IoEvent) {
        for f in &mut self.filters {
            if f.wants_events() {
                f.event(event);
            }
        }
    }

    /// Broadcasts a file-object name record.
    pub fn file_object(&mut self, info: &FileObjectInfo) {
        for f in &mut self.filters {
            if f.wants_events() {
                f.file_object(info);
            }
        }
    }

    /// Runs layer `i`'s pre hook, recording where the packet went.
    pub(crate) fn pre(&mut self, i: usize, frame: &mut IrpFrame) -> FilterAction {
        let action = self.filters[i].pre(frame);
        match action {
            FilterAction::Pass => self.counters[i].passed += 1,
            FilterAction::Complete(_) => self.counters[i].completed += 1,
        }
        action
    }

    /// Runs layer `i`'s completion hook.
    pub(crate) fn post(&mut self, i: usize, frame: &IrpFrame, reply: &mut OpReply) {
        self.filters[i].post(frame, reply);
    }

    /// Start of this dispatch's frame records in the pooled array.
    pub(crate) fn frames_mark(&self) -> usize {
        self.frames.len()
    }

    /// Records the packet as one layer passed it down.
    pub(crate) fn push_frame(&mut self, frame: IrpFrame) {
        self.frames.push(frame);
    }

    /// The recorded frame at absolute position `at`.
    pub(crate) fn frame_at(&self, at: usize) -> IrpFrame {
        self.frames[at]
    }

    /// Releases this dispatch's frame records back to the pool.
    pub(crate) fn truncate_frames(&mut self, mark: usize) {
        self.frames.truncate(mark);
    }

    /// Records a packet that the FSD completed.
    pub(crate) fn note_fsd_completion(&mut self) {
        self.fsd_completed += 1;
    }

    /// Packets completed by the FSD at the bottom of the stack.
    pub fn fsd_completed(&self) -> u64 {
        self.fsd_completed
    }

    /// The attached layers' names and completion counters, top first.
    pub fn layers(&self) -> Vec<(&'static str, LayerCounters)> {
        self.filters
            .iter()
            .zip(&self.counters)
            .map(|(f, c)| (f.name(), *c))
            .collect()
    }

    /// The first attached layer of concrete type `T`, top-down.
    pub fn find<T: FilterDriver>(&self) -> Option<&T> {
        self.filters.iter().find_map(|f| f.as_any().downcast_ref())
    }

    /// Mutable access to the first layer of concrete type `T`.
    pub fn find_mut<T: FilterDriver>(&mut self) -> Option<&mut T> {
        self.filters
            .iter_mut()
            .find_map(|f| f.as_any_mut().downcast_mut())
    }
}

impl Default for DriverStack {
    fn default() -> Self {
        DriverStack::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastio::FastIoDispatch;
    use crate::request::FastIoKind;
    use crate::status::NtStatus;

    struct Completer;
    impl FilterDriver for Completer {
        fn name(&self) -> &'static str {
            "completer"
        }
        fn pre(&mut self, frame: &mut IrpFrame) -> FilterAction {
            FilterAction::Complete(OpReply {
                status: NtStatus::AccessDenied,
                transferred: 0,
                end: frame.now,
            })
        }
        fn intercepts(&self) -> bool {
            true
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Veto;
    impl FilterDriver for Veto {
        fn name(&self) -> &'static str {
            "veto"
        }
        fn fastio(&self) -> FastIoDispatch {
            FastIoDispatch::full().without(FastIoKind::Read)
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn attach_puts_the_new_layer_on_top_and_refreshes_caches() {
        let mut s = DriverStack::new();
        assert!(s.is_empty());
        assert!(!s.intercepting());
        s.attach(Box::new(Veto));
        assert!(!s.intercepting(), "a table-only filter never intercepts");
        assert!(!s.fastio_supported(FastIoKind::Read));
        assert!(s.fastio_supported(FastIoKind::Write));
        s.attach(Box::new(Completer));
        assert!(s.intercepting());
        assert_eq!(s.layers()[0].0, "completer", "last attached is on top");
        assert!(s.find::<Veto>().is_some());
        assert!(s.find_mut::<Completer>().is_some());
    }

    #[test]
    fn counters_track_where_packets_complete() {
        let mut s = DriverStack::new();
        s.attach(Box::new(Completer));
        let mut frame = IrpFrame {
            major: Some(MajorFunction::Read),
            label: "read",
            handle: None,
            process: None,
            offset: 0,
            length: 0,
            now: SimTime::ZERO,
        };
        match s.pre(0, &mut frame) {
            FilterAction::Complete(reply) => assert_eq!(reply.status, NtStatus::AccessDenied),
            FilterAction::Pass => panic!("completer completes"),
        }
        assert_eq!(s.layers()[0].1.completed, 1);
        assert_eq!(s.fsd_completed(), 0);
    }
}
