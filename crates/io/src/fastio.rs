//! The per-layer FastIO dispatch table and the documented IRP fallback.
//!
//! §10 of the paper: the FastIO path is procedural — the I/O manager
//! calls through a per-driver method table straight toward the cache
//! manager. A filter driver that leaves an entry out of its table removes
//! that entry for the whole stack: the I/O manager falls back to building
//! an IRP and sending it down the packet path instead. [`FastIoDispatch`]
//! models one driver's table; [`DriverStack`](crate::stack::DriverStack)
//! intersects the tables of every attached filter, and the machine asks
//! the intersection which [`EventKind`](crate::request::EventKind) a
//! would-be FastIO call actually rides.

use crate::request::{FastIoKind, MajorFunction};

/// One driver's FastIO method table: a bit per dispatch routine.
///
/// The FSD at the bottom of the stack implements everything
/// ([`FastIoDispatch::full`]); a filter that does not care about FastIO
/// exposes the full table too, so attaching it changes nothing. Opting a
/// routine out ([`FastIoDispatch::without`]) forces the documented IRP
/// fallback for every request that would have used it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FastIoDispatch(u32);

impl FastIoDispatch {
    /// A table implementing all 26 routines.
    pub const fn full() -> Self {
        FastIoDispatch((1 << FastIoKind::ALL.len()) - 1)
    }

    /// A table implementing none of them — every FastIO request the
    /// stack would have short-circuited becomes an IRP.
    pub const fn empty() -> Self {
        FastIoDispatch(0)
    }

    /// Whether this table implements `kind`.
    pub const fn supports(self, kind: FastIoKind) -> bool {
        self.0 & (1 << kind as u32) != 0
    }

    /// This table with `kind` opted out.
    #[must_use]
    pub const fn without(self, kind: FastIoKind) -> Self {
        FastIoDispatch(self.0 & !(1 << kind as u32))
    }

    /// This table with `kind` opted (back) in.
    #[must_use]
    pub const fn with(self, kind: FastIoKind) -> Self {
        FastIoDispatch(self.0 | (1 << kind as u32))
    }

    /// The effective table of two stacked drivers: a routine exists for
    /// the stack only if every layer implements it.
    #[must_use]
    pub const fn intersect(self, other: Self) -> Self {
        FastIoDispatch(self.0 & other.0)
    }

    /// How many routines this table implements.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True when no routine is implemented.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl Default for FastIoDispatch {
    fn default() -> Self {
        FastIoDispatch::full()
    }
}

/// The IRP major function a FastIO routine falls back to when some layer
/// opts out of it (the packet that the I/O manager builds instead).
pub const fn irp_fallback(kind: FastIoKind) -> MajorFunction {
    match kind {
        // Data copies and the zero-copy MDL variants become plain
        // read/write packets.
        FastIoKind::Read
        | FastIoKind::ReadCompressed
        | FastIoKind::MdlRead
        | FastIoKind::MdlReadComplete
        | FastIoKind::MdlReadCompleteCompressed => MajorFunction::Read,
        FastIoKind::Write
        | FastIoKind::WriteCompressed
        | FastIoKind::PrepareMdlWrite
        | FastIoKind::MdlWriteComplete
        | FastIoKind::MdlWriteCompleteCompressed => MajorFunction::Write,
        // Metadata queries ride the query-information packet.
        FastIoKind::QueryBasicInfo
        | FastIoKind::QueryStandardInfo
        | FastIoKind::QueryNetworkOpenInfo
        | FastIoKind::QueryOpen => MajorFunction::QueryInformation,
        // Byte-range locking has its own major.
        FastIoKind::Lock
        | FastIoKind::UnlockSingle
        | FastIoKind::UnlockAll
        | FastIoKind::UnlockAllByKey => MajorFunction::LockControl,
        FastIoKind::DeviceControl => MajorFunction::DeviceControl,
        // Section/flush synchronisation calls have no packet form of
        // their own; they surface as file-system control requests.
        FastIoKind::CheckIfPossible
        | FastIoKind::AcquireFileForNtCreateSection
        | FastIoKind::ReleaseFileForNtCreateSection
        | FastIoKind::AcquireForModWrite
        | FastIoKind::ReleaseForModWrite
        | FastIoKind::AcquireForCcFlush
        | FastIoKind::ReleaseForCcFlush => MajorFunction::FileSystemControl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_table_supports_everything() {
        let t = FastIoDispatch::full();
        assert_eq!(t.len(), 26);
        for k in FastIoKind::ALL {
            assert!(t.supports(k));
        }
        assert!(FastIoDispatch::empty().is_empty());
    }

    #[test]
    fn opt_out_is_per_entry_and_reversible() {
        let t = FastIoDispatch::full().without(FastIoKind::Read);
        assert!(!t.supports(FastIoKind::Read));
        assert!(t.supports(FastIoKind::Write));
        assert_eq!(t.len(), 25);
        assert!(t.with(FastIoKind::Read).supports(FastIoKind::Read));
    }

    #[test]
    fn intersection_models_the_stack() {
        let a = FastIoDispatch::full().without(FastIoKind::Read);
        let b = FastIoDispatch::full().without(FastIoKind::Lock);
        let eff = a.intersect(b);
        assert!(!eff.supports(FastIoKind::Read));
        assert!(!eff.supports(FastIoKind::Lock));
        assert_eq!(eff.len(), 24);
    }

    #[test]
    fn every_routine_has_a_fallback() {
        // The mapping is total and lands on plausible packet types; the
        // data routines must fall back to the data majors (the §10 path
        // split depends on it).
        for k in FastIoKind::ALL {
            let _ = irp_fallback(k);
        }
        assert_eq!(irp_fallback(FastIoKind::Read), MajorFunction::Read);
        assert_eq!(
            irp_fallback(FastIoKind::ReadCompressed),
            MajorFunction::Read
        );
        assert_eq!(irp_fallback(FastIoKind::Write), MajorFunction::Write);
        assert_eq!(
            irp_fallback(FastIoKind::WriteCompressed),
            MajorFunction::Write
        );
        assert_eq!(irp_fallback(FastIoKind::Lock), MajorFunction::LockControl);
        assert_eq!(
            irp_fallback(FastIoKind::QueryBasicInfo),
            MajorFunction::QueryInformation
        );
    }
}
