//! NTSTATUS result codes (the subset the study's trace records carry).

use nt_fs::FsError;
use std::fmt;

/// Completion status of an I/O request, as recorded in each trace record.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NtStatus {
    /// STATUS_SUCCESS.
    Success,
    /// STATUS_OBJECT_NAME_NOT_FOUND — §8.4: 52 % of failed opens.
    ObjectNameNotFound,
    /// STATUS_OBJECT_PATH_NOT_FOUND — a missing intermediate directory.
    ObjectPathNotFound,
    /// STATUS_OBJECT_NAME_COLLISION — §8.4: 31 % of failed opens.
    ObjectNameCollision,
    /// STATUS_END_OF_FILE — §8.4: the only read error seen (0.2 %).
    EndOfFile,
    /// STATUS_DISK_FULL.
    DiskFull,
    /// STATUS_ACCESS_DENIED.
    AccessDenied,
    /// STATUS_SHARING_VIOLATION.
    SharingViolation,
    /// STATUS_DELETE_PENDING.
    DeletePending,
    /// STATUS_DIRECTORY_NOT_EMPTY.
    DirectoryNotEmpty,
    /// STATUS_NOT_A_DIRECTORY.
    NotADirectory,
    /// STATUS_FILE_IS_A_DIRECTORY.
    FileIsADirectory,
    /// STATUS_INVALID_PARAMETER — failed control operations (§8.4).
    InvalidParameter,
    /// STATUS_INVALID_HANDLE.
    InvalidHandle,
    /// STATUS_NO_MORE_FILES — directory enumeration exhausted.
    NoMoreFiles,
    /// STATUS_INVALID_DEVICE_REQUEST — unsupported control code.
    InvalidDeviceRequest,
    /// STATUS_FILE_LOCK_CONFLICT — a byte-range lock blocks the request.
    FileLockConflict,
    /// STATUS_NETWORK_UNREACHABLE — a remote volume behind a partitioned
    /// network link (the fault-injection layer's partition windows).
    NetworkUnreachable,
}

impl NtStatus {
    /// True for STATUS_SUCCESS and informational terminators that are not
    /// failures (NoMoreFiles ends an enumeration normally).
    pub fn is_success(self) -> bool {
        matches!(self, NtStatus::Success | NtStatus::NoMoreFiles)
    }

    /// True for genuine failures (what §8.4 counts as errors).
    pub fn is_error(self) -> bool {
        !self.is_success()
    }
}

impl From<FsError> for NtStatus {
    fn from(e: FsError) -> NtStatus {
        match e {
            FsError::NotFound => NtStatus::ObjectNameNotFound,
            FsError::AlreadyExists => NtStatus::ObjectNameCollision,
            FsError::NotADirectory => NtStatus::NotADirectory,
            FsError::IsADirectory => NtStatus::FileIsADirectory,
            FsError::DirectoryNotEmpty => NtStatus::DirectoryNotEmpty,
            FsError::VolumeFull => NtStatus::DiskFull,
            FsError::StaleNode => NtStatus::InvalidHandle,
            FsError::InvalidOperation => NtStatus::InvalidParameter,
        }
    }
}

impl fmt::Display for NtStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_classification() {
        assert!(NtStatus::Success.is_success());
        assert!(NtStatus::NoMoreFiles.is_success());
        assert!(NtStatus::EndOfFile.is_error());
        assert!(NtStatus::ObjectNameNotFound.is_error());
    }

    #[test]
    fn fs_error_mapping() {
        assert_eq!(
            NtStatus::from(FsError::NotFound),
            NtStatus::ObjectNameNotFound
        );
        assert_eq!(
            NtStatus::from(FsError::AlreadyExists),
            NtStatus::ObjectNameCollision
        );
        assert_eq!(NtStatus::from(FsError::VolumeFull), NtStatus::DiskFull);
    }
}
