//! The Windows NT I/O subsystem model.
//!
//! §3.2 of the paper describes the two access paths every file-system
//! request takes: the packet-based **IRP** path, in which the I/O manager
//! hands an I/O request packet down a chain of layered drivers, and the
//! undocumented procedural **FastIO** path, in which the I/O manager
//! invokes a method table that leads straight to the cache manager (§10).
//! The study's tracer was a *filter driver* inserted into those chains.
//!
//! This crate assembles the whole stack the paper instruments:
//!
//! * [`Machine`] — one traced workstation: volumes (`nt-fs`), the cache
//!   manager (`nt-cache`), the VM manager (`nt-vm`), FCB and handle
//!   tables, per-volume disk models, and the I/O manager dispatch logic
//!   (FastIO attempt, IRP fallback, paging I/O, two-stage close).
//! * [`IoObserver`] — the filter-driver attachment point: every IRP and
//!   FastIO call is reported with dual 100 ns timestamps, exactly the
//!   payload of the study's trace records (§3.2).
//! * [`LatencyModel`] — service-time model for cache copies, IRP
//!   overhead, local IDE/SCSI disks and redirector round-trips, producing
//!   the figure-13 latency split between the four major request types.
//!
//! The crate is deliberately synchronous: each operation computes its
//! completion time and returns it, while background work (read-ahead
//! completions, lazy-writer bursts, deferred closes) is tracked internally
//! and applied by an explicit [`Machine::pump`] at the next operation or
//! lazy-writer tick.

pub mod fcb;
pub mod latency;
pub mod machine;
pub mod observer;
pub mod request;
pub mod sharing;
pub mod status;
pub mod types;

pub use fcb::{Fcb, FcbTable};
pub use latency::{DiskParams, LatencyModel, LatencyParams};
pub use machine::{IoMetrics, Machine, MachineConfig, OpReply};
pub use observer::{IoObserver, NullObserver};
pub use request::{EventKind, FastIoKind, IoEvent, MajorFunction, SetInfoKind};
pub use sharing::{LockTable, ShareRegistry};
pub use status::NtStatus;
pub use types::{
    AccessMode, CreateOptions, Disposition, FcbId, FileObjectId, HandleId, ProcessId, ShareMode,
};
