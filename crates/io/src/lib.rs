//! The Windows NT I/O subsystem model.
//!
//! §3.2 of the paper describes the two access paths every file-system
//! request takes: the packet-based **IRP** path, in which the I/O manager
//! hands an I/O request packet down a chain of layered drivers, and the
//! undocumented procedural **FastIO** path, in which the I/O manager
//! invokes a method table that leads straight to the cache manager (§10).
//! The study's tracer was a *filter driver* inserted into those chains.
//!
//! This crate assembles the whole stack the paper instruments:
//!
//! * [`Machine`] — one traced workstation: volumes (`nt-fs`), the cache
//!   manager (`nt-cache`), the VM manager (`nt-vm`), FCB and handle
//!   tables, per-volume disk models, and the I/O manager dispatch logic
//!   (FastIO attempt, IRP fallback, paging I/O, two-stage close).
//! * [`DriverStack`] / [`FilterDriver`] — the layered driver chain
//!   itself: every request descends the stack `IoCallDriver`-style, each
//!   layer may complete, modify or pass it, and each layer's
//!   [`FastIoDispatch`] table can opt individual FastIO routines out,
//!   forcing the documented IRP fallback (§10).
//! * [`IoObserver`] — the study's instrument: every IRP and FastIO call
//!   is reported with dual 100 ns timestamps, exactly the payload of the
//!   trace records (§3.2). It attaches to the stack as a filter driver
//!   ([`ObserverFilter`]), alongside the span layer ([`SpanFilter`]) and
//!   the example third-party scanner ([`AntivirusFilter`]).
//! * [`LatencyModel`] — service-time model for cache copies, IRP
//!   overhead, local IDE/SCSI disks and redirector round-trips, producing
//!   the figure-13 latency split between the four major request types.
//!
//! The crate is deliberately synchronous: each operation computes its
//! completion time and returns it, while background work (read-ahead
//! completions, lazy-writer bursts, deferred closes) is tracked internally
//! and applied by an explicit [`Machine::pump`] at the next operation or
//! lazy-writer tick.

pub mod arena;
pub mod fastio;
pub mod fcb;
pub mod filters;
pub mod latency;
pub mod machine;
pub mod observer;
pub mod ops;
pub mod request;
pub mod sharing;
pub mod stack;
pub mod status;
pub mod types;

pub use arena::{Arena, ArenaHandle};
pub use fastio::{irp_fallback, FastIoDispatch};
pub use fcb::{Fcb, FcbTable};
pub use filters::{AntivirusFilter, FastIoVeto, ObserverFilter, SpanFilter};
pub use latency::{DiskParams, LatencyModel, LatencyParams};
pub use machine::{IoMetrics, Machine, MachineConfig, OpReply};
pub use observer::{FileObjectInfo, IoObserver, NullObserver, VecObserver};
pub use request::{EventKind, FastIoKind, IoEvent, MajorFunction, SetInfoKind};
pub use sharing::{LockTable, ShareRegistry};
pub use stack::{DriverStack, FilterAction, FilterDriver, IrpFrame, LayerCounters};
pub use status::NtStatus;
pub use types::{
    AccessMode, CreateOptions, Disposition, FcbId, FileObjectId, HandleId, ProcessId, ShareMode,
};
