//! Generational slab arena for the dispatch hot path.
//!
//! The study's filter driver had to add negligible overhead to every
//! request on live machines (§3.2); our dispatch path owes the same. The
//! kernel structures a request touches — open handles, FCBs, pending IRP
//! completions — used to live in u64-keyed `HashMap`s, which cost a
//! SipHash probe per lookup and an allocation per resize. This arena
//! replaces them with a slab: O(1) index lookups, slots recycled through
//! a free list, and a per-slot **generation** so a stale handle (freed
//! and its slot reused) can never resolve to the new occupant — the
//! classic ABA hazard of raw slab indices.
//!
//! Generations start at 1 and bump on every free, so a packed handle is
//! never 0 and a handle minted before a slot's reuse always mismatches
//! the slot's current generation. Iteration order is slot order —
//! deterministic, unlike `HashMap`'s per-instance random state.

/// A typed handle into an [`Arena`]: slot index plus the generation the
/// slot had when the value was inserted.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ArenaHandle {
    index: u32,
    generation: u32,
}

impl ArenaHandle {
    /// Builds a handle from raw parts (tests, external registries).
    pub fn from_parts(index: u32, generation: u32) -> Self {
        ArenaHandle { index, generation }
    }

    /// Rebuilds a handle from its [`ArenaHandle::pack`]ed form.
    pub fn unpack(raw: u64) -> Self {
        ArenaHandle {
            index: raw as u32,
            generation: (raw >> 32) as u32,
        }
    }

    /// The handle as one u64 (generation in the high half). Because
    /// generations start at 1, a packed handle is never 0.
    pub fn pack(self) -> u64 {
        ((self.generation as u64) << 32) | self.index as u64
    }

    /// Slot index (stable for the value's lifetime).
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Generation stamped at insertion.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

#[derive(Debug)]
enum Slot<T> {
    Occupied {
        generation: u32,
        value: T,
    },
    Free {
        generation: u32,
        next_free: Option<u32>,
    },
}

/// A generational slab: O(1) insert/lookup/remove, free-list slot reuse,
/// deterministic slot-order iteration.
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free_head: Option<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// An empty arena with room for `capacity` values before growing.
    pub fn with_capacity(capacity: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(capacity),
            free_head: None,
            len: 0,
        }
    }

    /// Live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no value is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, reusing a freed slot when one is available.
    pub fn insert(&mut self, value: T) -> ArenaHandle {
        self.len += 1;
        match self.free_head {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                let generation = match *slot {
                    Slot::Free {
                        generation,
                        next_free,
                    } => {
                        self.free_head = next_free;
                        generation
                    }
                    Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
                };
                *slot = Slot::Occupied { generation, value };
                ArenaHandle { index, generation }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("arena slot count fits u32");
                self.slots.push(Slot::Occupied {
                    generation: 1,
                    value,
                });
                ArenaHandle {
                    index,
                    generation: 1,
                }
            }
        }
    }

    /// The value for `handle`, or `None` when freed or stale.
    pub fn get(&self, handle: ArenaHandle) -> Option<&T> {
        match self.slots.get(handle.index()) {
            Some(Slot::Occupied { generation, value }) if *generation == handle.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the value for `handle`.
    pub fn get_mut(&mut self, handle: ArenaHandle) -> Option<&mut T> {
        match self.slots.get_mut(handle.index()) {
            Some(Slot::Occupied { generation, value }) if *generation == handle.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// True when `handle` still resolves.
    pub fn contains(&self, handle: ArenaHandle) -> bool {
        self.get(handle).is_some()
    }

    /// Removes and returns the value for `handle`. The slot's generation
    /// bumps, so the handle (and any copy of it) is dead from here on.
    pub fn remove(&mut self, handle: ArenaHandle) -> Option<T> {
        let slot = self.slots.get_mut(handle.index())?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == handle.generation => {
                // Skip 0 on wrap so packed handles stay non-zero.
                let next_gen = match generation.wrapping_add(1) {
                    0 => 1,
                    g => g,
                };
                let old = std::mem::replace(
                    slot,
                    Slot::Free {
                        generation: next_gen,
                        next_free: self.free_head,
                    },
                );
                self.free_head = Some(handle.index);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Free { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// [`Arena::get`] keyed by a packed handle.
    pub fn get_raw(&self, raw: u64) -> Option<&T> {
        self.get(ArenaHandle::unpack(raw))
    }

    /// [`Arena::get_mut`] keyed by a packed handle.
    pub fn get_raw_mut(&mut self, raw: u64) -> Option<&mut T> {
        self.get_mut(ArenaHandle::unpack(raw))
    }

    /// [`Arena::remove`] keyed by a packed handle.
    pub fn remove_raw(&mut self, raw: u64) -> Option<T> {
        self.remove(ArenaHandle::unpack(raw))
    }

    /// [`Arena::contains`] keyed by a packed handle.
    pub fn contains_raw(&self, raw: u64) -> bool {
        self.get_raw(raw).is_some()
    }

    /// Live `(handle, value)` pairs in slot order — deterministic, so it
    /// is safe to feed events and metrics.
    pub fn iter(&self) -> impl Iterator<Item = (ArenaHandle, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| match slot {
                Slot::Occupied { generation, value } => Some((
                    ArenaHandle {
                        index: index as u32,
                        generation: *generation,
                    },
                    value,
                )),
                Slot::Free { .. } => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = Arena::new();
        let a = arena.insert("alpha");
        let b = arena.insert("beta");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), Some(&"alpha"));
        assert_eq!(arena.get(b), Some(&"beta"));
        assert_eq!(arena.remove(a), Some("alpha"));
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn freed_slot_is_reused_with_bumped_generation() {
        let mut arena = Arena::new();
        let a = arena.insert(1u32);
        arena.remove(a);
        let b = arena.insert(2u32);
        assert_eq!(b.index(), a.index(), "free list reuses the slot");
        assert_ne!(b.generation(), a.generation());
        assert_eq!(
            arena.get(a),
            None,
            "stale handle never sees the new occupant"
        );
        assert_eq!(arena.get(b), Some(&2));
    }

    #[test]
    fn stale_handle_rejected_by_every_accessor() {
        let mut arena = Arena::new();
        let a = arena.insert(10u32);
        arena.remove(a);
        let _b = arena.insert(20u32);
        assert!(!arena.contains(a));
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.get_mut(a), None);
        assert_eq!(arena.remove(a), None);
        assert!(!arena.contains_raw(a.pack()));
        assert_eq!(arena.get_raw(a.pack()), None);
    }

    #[test]
    fn packed_handles_roundtrip_and_are_nonzero() {
        let mut arena = Arena::new();
        for i in 0..100u64 {
            let h = arena.insert(i);
            assert_ne!(h.pack(), 0);
            assert_eq!(ArenaHandle::unpack(h.pack()), h);
        }
    }

    #[test]
    fn iteration_is_slot_ordered() {
        let mut arena = Arena::new();
        let handles: Vec<_> = (0..5u32).map(|i| arena.insert(i)).collect();
        arena.remove(handles[2]);
        let seen: Vec<u32> = arena.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec![0, 1, 3, 4]);
    }

    #[test]
    fn generation_wrap_skips_zero() {
        let mut arena: Arena<u8> = Arena::new();
        let h = arena.insert(0);
        arena.remove(h);
        // Force the slot's stored generation to the wrap point.
        if let Slot::Free { generation, .. } = &mut arena.slots[0] {
            *generation = u32::MAX;
        }
        let h2 = arena.insert(1);
        assert_eq!(h2.generation(), u32::MAX);
        arena.remove(h2);
        let h3 = arena.insert(2);
        assert_eq!(h3.generation(), 1, "wrap skips generation 0");
        assert_ne!(h3.pack(), 0);
    }
}
