//! Request taxonomy and the trace-event payload.
//!
//! The study's filter driver "records 54 IRP and FastIO events, which
//! represent all major I/O request operations" (§3.2). The taxonomy here
//! is the complete NT 4.0 set: the 28 IRP major function codes and the 26
//! per-file FastIO dispatch routines, 54 event kinds in total. The
//! simulated machine emits the subset that production NT workloads
//! exercise, but the trace format covers them all.

use nt_sim::SimTime;

use crate::status::NtStatus;
use crate::types::{AccessMode, CreateOptions, Disposition, FcbId, FileObjectId, ProcessId};

/// IRP major function codes (IRP_MJ_*), the packet-based request path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[repr(u8)]
pub enum MajorFunction {
    Create = 0x00,
    CreateNamedPipe = 0x01,
    Close = 0x02,
    Read = 0x03,
    Write = 0x04,
    QueryInformation = 0x05,
    SetInformation = 0x06,
    QueryEa = 0x07,
    SetEa = 0x08,
    FlushBuffers = 0x09,
    QueryVolumeInformation = 0x0a,
    SetVolumeInformation = 0x0b,
    DirectoryControl = 0x0c,
    FileSystemControl = 0x0d,
    DeviceControl = 0x0e,
    InternalDeviceControl = 0x0f,
    Shutdown = 0x10,
    LockControl = 0x11,
    Cleanup = 0x12,
    CreateMailslot = 0x13,
    QuerySecurity = 0x14,
    SetSecurity = 0x15,
    Power = 0x16,
    SystemControl = 0x17,
    DeviceChange = 0x18,
    QueryQuota = 0x19,
    SetQuota = 0x1a,
    Pnp = 0x1b,
}

impl MajorFunction {
    /// Every IRP major function code, in numeric order.
    pub const ALL: [MajorFunction; 28] = [
        MajorFunction::Create,
        MajorFunction::CreateNamedPipe,
        MajorFunction::Close,
        MajorFunction::Read,
        MajorFunction::Write,
        MajorFunction::QueryInformation,
        MajorFunction::SetInformation,
        MajorFunction::QueryEa,
        MajorFunction::SetEa,
        MajorFunction::FlushBuffers,
        MajorFunction::QueryVolumeInformation,
        MajorFunction::SetVolumeInformation,
        MajorFunction::DirectoryControl,
        MajorFunction::FileSystemControl,
        MajorFunction::DeviceControl,
        MajorFunction::InternalDeviceControl,
        MajorFunction::Shutdown,
        MajorFunction::LockControl,
        MajorFunction::Cleanup,
        MajorFunction::CreateMailslot,
        MajorFunction::QuerySecurity,
        MajorFunction::SetSecurity,
        MajorFunction::Power,
        MajorFunction::SystemControl,
        MajorFunction::DeviceChange,
        MajorFunction::QueryQuota,
        MajorFunction::SetQuota,
        MajorFunction::Pnp,
    ];

    /// True for the data-path majors (read/write).
    pub fn is_data(self) -> bool {
        matches!(self, MajorFunction::Read | MajorFunction::Write)
    }
}

/// The per-file FastIO dispatch routines of NT 4.0 (§10).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[repr(u8)]
pub enum FastIoKind {
    CheckIfPossible = 0,
    Read = 1,
    Write = 2,
    QueryBasicInfo = 3,
    QueryStandardInfo = 4,
    Lock = 5,
    UnlockSingle = 6,
    UnlockAll = 7,
    UnlockAllByKey = 8,
    DeviceControl = 9,
    AcquireFileForNtCreateSection = 10,
    ReleaseFileForNtCreateSection = 11,
    QueryNetworkOpenInfo = 12,
    AcquireForModWrite = 13,
    MdlRead = 14,
    MdlReadComplete = 15,
    PrepareMdlWrite = 16,
    MdlWriteComplete = 17,
    ReadCompressed = 18,
    WriteCompressed = 19,
    MdlReadCompleteCompressed = 20,
    MdlWriteCompleteCompressed = 21,
    QueryOpen = 22,
    ReleaseForModWrite = 23,
    AcquireForCcFlush = 24,
    ReleaseForCcFlush = 25,
}

impl FastIoKind {
    /// Every FastIO routine, in dispatch-table order.
    pub const ALL: [FastIoKind; 26] = [
        FastIoKind::CheckIfPossible,
        FastIoKind::Read,
        FastIoKind::Write,
        FastIoKind::QueryBasicInfo,
        FastIoKind::QueryStandardInfo,
        FastIoKind::Lock,
        FastIoKind::UnlockSingle,
        FastIoKind::UnlockAll,
        FastIoKind::UnlockAllByKey,
        FastIoKind::DeviceControl,
        FastIoKind::AcquireFileForNtCreateSection,
        FastIoKind::ReleaseFileForNtCreateSection,
        FastIoKind::QueryNetworkOpenInfo,
        FastIoKind::AcquireForModWrite,
        FastIoKind::MdlRead,
        FastIoKind::MdlReadComplete,
        FastIoKind::PrepareMdlWrite,
        FastIoKind::MdlWriteComplete,
        FastIoKind::ReadCompressed,
        FastIoKind::WriteCompressed,
        FastIoKind::MdlReadCompleteCompressed,
        FastIoKind::MdlWriteCompleteCompressed,
        FastIoKind::QueryOpen,
        FastIoKind::ReleaseForModWrite,
        FastIoKind::AcquireForCcFlush,
        FastIoKind::ReleaseForCcFlush,
    ];
}

/// One of the 54 event kinds a trace record can carry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventKind {
    /// A packet-path request.
    Irp(MajorFunction),
    /// A procedural-path request.
    FastIo(FastIoKind),
}

impl EventKind {
    /// The full 54-kind taxonomy, IRPs first.
    pub fn all() -> Vec<EventKind> {
        MajorFunction::ALL
            .iter()
            .map(|&m| EventKind::Irp(m))
            .chain(FastIoKind::ALL.iter().map(|&f| EventKind::FastIo(f)))
            .collect()
    }

    /// A stable small integer for record encoding: IRPs 0–27, FastIO 28–53.
    pub fn code(self) -> u8 {
        match self {
            EventKind::Irp(m) => m as u8,
            EventKind::FastIo(f) => 28 + f as u8,
        }
    }

    /// Inverse of [`EventKind::code`].
    pub fn from_code(code: u8) -> Option<EventKind> {
        if code < 28 {
            Some(EventKind::Irp(MajorFunction::ALL[code as usize]))
        } else if code < 54 {
            Some(EventKind::FastIo(FastIoKind::ALL[(code - 28) as usize]))
        } else {
            None
        }
    }

    /// True for read requests on either path.
    pub fn is_read(self) -> bool {
        matches!(
            self,
            EventKind::Irp(MajorFunction::Read) | EventKind::FastIo(FastIoKind::Read)
        )
    }

    /// True for write requests on either path.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            EventKind::Irp(MajorFunction::Write) | EventKind::FastIo(FastIoKind::Write)
        )
    }

    /// True for the FastIO path.
    pub fn is_fastio(self) -> bool {
        matches!(self, EventKind::FastIo(_))
    }
}

/// IRP_MJ_SET_INFORMATION sub-operations the machine performs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SetInfoKind {
    /// FileEndOfFileInformation — §8.3: the cache manager always issues
    /// this before closing a written file.
    EndOfFile,
    /// FileDispositionInformation — mark delete-on-close (§6.3's explicit
    /// delete path goes through here).
    Disposition,
    /// FileRenameInformation.
    Rename,
    /// FileBasicInformation — timestamps and attribute writes.
    Basic,
    /// FileAllocationInformation.
    Allocation,
}

/// The payload of one trace record, as handed to the filter driver.
///
/// Field set follows §3.2: "each record contains at least a reference to
/// the file object, IRP, File and Header Flags, the requesting process,
/// the current byte offset and file size, and the result status", plus the
/// two 100 ns timestamps and per-operation extras (offset/length/returned
/// bytes for reads and writes, options and access for creates).
#[derive(Clone, Copy, Debug)]
pub struct IoEvent {
    /// Which of the 54 request kinds this is.
    pub kind: EventKind,
    /// The file object the request targets.
    pub file_object: FileObjectId,
    /// The stream control block (shared across opens of the same file).
    pub fcb: FcbId,
    /// The requesting process.
    pub process: ProcessId,
    /// The volume index within the machine's namespace.
    pub volume: u32,
    /// True when the volume is local (vs a redirector share).
    pub local: bool,
    /// The PagingIO header bit (§3.3).
    pub paging_io: bool,
    /// True when this paging read was speculative read-ahead.
    pub readahead: bool,
    /// Request byte offset (reads/writes), 0 otherwise.
    pub offset: u64,
    /// Requested length in bytes.
    pub length: u64,
    /// Bytes actually transferred.
    pub transferred: u64,
    /// File size at request time.
    pub file_size: u64,
    /// The file object's current byte offset at request time.
    pub byte_offset: u64,
    /// Completion status.
    pub status: NtStatus,
    /// Request arrival timestamp (100 ns).
    pub start: SimTime,
    /// Completion timestamp (100 ns).
    pub end: SimTime,
    /// Create-only: requested access.
    pub access: Option<AccessMode>,
    /// Create-only: disposition.
    pub disposition: Option<Disposition>,
    /// Create-only: options.
    pub options: Option<CreateOptions>,
    /// SetInformation-only: which information class.
    pub set_info: Option<SetInfoKind>,
    /// Create-only: true when the open brought a new file into existence
    /// (needed by the §6.3 lifetime analysis to date births).
    pub created: bool,
}

impl IoEvent {
    /// Service period of the request.
    pub fn latency(&self) -> nt_sim::SimDuration {
        self.end.saturating_since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_has_54_kinds() {
        let all = EventKind::all();
        assert_eq!(all.len(), 54, "§3.2: 54 IRP and FastIO events");
        // Codes are a bijection onto 0..54.
        let mut seen = [false; 54];
        for k in &all {
            let c = k.code() as usize;
            assert!(!seen[c], "duplicate code {c}");
            seen[c] = true;
            assert_eq!(EventKind::from_code(k.code()), Some(*k));
        }
        assert_eq!(EventKind::from_code(54), None);
    }

    #[test]
    fn kind_classification() {
        assert!(EventKind::Irp(MajorFunction::Read).is_read());
        assert!(EventKind::FastIo(FastIoKind::Read).is_read());
        assert!(!EventKind::Irp(MajorFunction::Read).is_write());
        assert!(EventKind::FastIo(FastIoKind::Write).is_fastio());
        assert!(MajorFunction::Write.is_data());
        assert!(!MajorFunction::Cleanup.is_data());
    }
}
