//! The file control block table.
//!
//! Every open of the same on-disk file shares one FCB; the cache manager
//! and VM manager key their per-file state by [`FcbId`]. The table also
//! tracks handle counts so the machine knows when the last cleanup has
//! happened and delete-pending files can actually disappear (§8.1).

use std::collections::HashMap;

use nt_fs::{NodeId, VolumeId};

use crate::types::FcbId;

/// Per-FCB bookkeeping.
#[derive(Clone, Debug)]
pub struct Fcb {
    /// The file's identity.
    pub volume: VolumeId,
    /// The namespace node.
    pub node: NodeId,
    /// Open handles (post-cleanup handles excluded).
    pub handle_count: u32,
    /// File objects not yet closed (cleanup done, close IRP pending).
    pub object_count: u32,
    /// Delete requested; takes effect when the last handle cleans up.
    pub delete_pending: bool,
    /// Any handle ever wrote through this FCB.
    pub written: bool,
}

/// The FCB table of one machine.
#[derive(Default)]
pub struct FcbTable {
    by_file: HashMap<(VolumeId, NodeId), FcbId>,
    fcbs: HashMap<FcbId, Fcb>,
    next: u64,
}

impl FcbTable {
    /// An empty table.
    pub fn new() -> Self {
        FcbTable::default()
    }

    /// Number of live FCBs.
    pub fn len(&self) -> usize {
        self.fcbs.len()
    }

    /// True when no FCBs are live.
    pub fn is_empty(&self) -> bool {
        self.fcbs.is_empty()
    }

    /// Returns the FCB for a file, creating one on first open.
    pub fn open(&mut self, volume: VolumeId, node: NodeId) -> FcbId {
        let key = (volume, node);
        if let Some(&id) = self.by_file.get(&key) {
            let fcb = self.fcbs.get_mut(&id).expect("indexed FCB exists");
            fcb.handle_count += 1;
            fcb.object_count += 1;
            return id;
        }
        let id = FcbId(self.next);
        self.next += 1;
        self.by_file.insert(key, id);
        self.fcbs.insert(
            id,
            Fcb {
                volume,
                node,
                handle_count: 1,
                object_count: 1,
                delete_pending: false,
                written: false,
            },
        );
        id
    }

    /// Looks up a live FCB.
    pub fn get(&self, id: FcbId) -> Option<&Fcb> {
        self.fcbs.get(&id)
    }

    /// Mutable access to a live FCB.
    pub fn get_mut(&mut self, id: FcbId) -> Option<&mut Fcb> {
        self.fcbs.get_mut(&id)
    }

    /// Finds the FCB currently associated with a file, if any.
    pub fn find(&self, volume: VolumeId, node: NodeId) -> Option<FcbId> {
        self.by_file.get(&(volume, node)).copied()
    }

    /// Handle cleanup: decrements the handle count. Returns `true` when
    /// this was the last handle (the point where delete-pending files are
    /// removed and the cache starts tearing down).
    pub fn cleanup(&mut self, id: FcbId) -> bool {
        let fcb = self.fcbs.get_mut(&id).expect("cleanup of a live FCB");
        debug_assert!(fcb.handle_count > 0);
        fcb.handle_count -= 1;
        fcb.handle_count == 0
    }

    /// Final close of one file object. When the last object goes away the
    /// FCB is reclaimed; returns `true` in that case.
    pub fn close(&mut self, id: FcbId) -> bool {
        let Some(fcb) = self.fcbs.get_mut(&id) else {
            return false;
        };
        debug_assert!(fcb.object_count > 0);
        fcb.object_count -= 1;
        if fcb.object_count == 0 && fcb.handle_count == 0 {
            let key = (fcb.volume, fcb.node);
            self.fcbs.remove(&id);
            self.by_file.remove(&key);
            true
        } else {
            false
        }
    }

    /// Forcibly drops an FCB (file deleted underneath).
    pub fn drop_fcb(&mut self, id: FcbId) {
        if let Some(fcb) = self.fcbs.remove(&id) {
            self.by_file.remove(&(fcb.volume, fcb.node));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_fs::{Volume, VolumeConfig};
    use nt_sim::SimTime;

    fn some_node() -> (VolumeId, NodeId) {
        let mut v = Volume::new(VolumeConfig::local_ntfs(1 << 20));
        let n = v.create_file(v.root(), "f", SimTime::ZERO).unwrap();
        (VolumeId(0), n)
    }

    #[test]
    fn opens_of_same_file_share_an_fcb() {
        let (vol, node) = some_node();
        let mut t = FcbTable::new();
        let a = t.open(vol, node);
        let b = t.open(vol, node);
        assert_eq!(a, b);
        assert_eq!(t.get(a).unwrap().handle_count, 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lifecycle_cleanup_then_close() {
        let (vol, node) = some_node();
        let mut t = FcbTable::new();
        let id = t.open(vol, node);
        assert!(t.cleanup(id), "last handle");
        assert!(t.get(id).is_some(), "FCB survives until close");
        assert!(t.close(id), "last object reclaims the FCB");
        assert!(t.get(id).is_none());
        assert!(t.find(vol, node).is_none());
    }

    #[test]
    fn two_handles_interleaved() {
        let (vol, node) = some_node();
        let mut t = FcbTable::new();
        let id = t.open(vol, node);
        t.open(vol, node);
        assert!(!t.cleanup(id), "one handle remains");
        assert!(!t.close(id));
        assert!(t.cleanup(id));
        assert!(t.close(id), "now the FCB dies");
    }

    #[test]
    fn new_fcb_after_reclaim() {
        let (vol, node) = some_node();
        let mut t = FcbTable::new();
        let a = t.open(vol, node);
        t.cleanup(a);
        t.close(a);
        let b = t.open(vol, node);
        assert_ne!(a, b, "a reopened file gets a fresh FCB id");
    }
}
