//! The file control block table.
//!
//! Every open of the same on-disk file shares one FCB; the cache manager
//! and VM manager key their per-file state by [`FcbId`]. The table also
//! tracks handle counts so the machine knows when the last cleanup has
//! happened and delete-pending files can actually disappear (§8.1).
//!
//! Storage is a generational [`Arena`]: the dispatch path resolves FCBs
//! by slot handle in O(1) with no hashing, while the public [`FcbId`]
//! stays a monotonic counter — trace records carry it, and the analysis
//! digests depend on the exact id sequence a run produces.

use std::collections::BTreeMap;

use nt_fs::{NodeId, VolumeId};

use crate::arena::{Arena, ArenaHandle};
use crate::types::FcbId;

/// Per-FCB bookkeeping.
#[derive(Clone, Debug)]
pub struct Fcb {
    /// The monotonic trace-visible identity (§3.2's FCB field).
    pub id: FcbId,
    /// The file's identity.
    pub volume: VolumeId,
    /// The namespace node.
    pub node: NodeId,
    /// Open handles (post-cleanup handles excluded).
    pub handle_count: u32,
    /// File objects not yet closed (cleanup done, close IRP pending).
    pub object_count: u32,
    /// Delete requested; takes effect when the last handle cleans up.
    pub delete_pending: bool,
    /// Any handle ever wrote through this FCB.
    pub written: bool,
}

/// The FCB table of one machine. Slots are [`ArenaHandle`]s; stale
/// handles (FCB reclaimed, slot reused) never resolve.
#[derive(Default)]
pub struct FcbTable {
    by_file: BTreeMap<(VolumeId, NodeId), ArenaHandle>,
    fcbs: Arena<Fcb>,
    next: u64,
}

impl FcbTable {
    /// An empty table.
    pub fn new() -> Self {
        FcbTable::default()
    }

    /// Number of live FCBs.
    pub fn len(&self) -> usize {
        self.fcbs.len()
    }

    /// True when no FCBs are live.
    pub fn is_empty(&self) -> bool {
        self.fcbs.is_empty()
    }

    /// Returns the FCB for a file — slot and trace id — creating one on
    /// first open.
    pub fn open(&mut self, volume: VolumeId, node: NodeId) -> (ArenaHandle, FcbId) {
        let key = (volume, node);
        if let Some(&slot) = self.by_file.get(&key) {
            let fcb = self.fcbs.get_mut(slot).expect("indexed FCB exists");
            fcb.handle_count += 1;
            fcb.object_count += 1;
            return (slot, fcb.id);
        }
        let id = FcbId(self.next);
        self.next += 1;
        let slot = self.fcbs.insert(Fcb {
            id,
            volume,
            node,
            handle_count: 1,
            object_count: 1,
            delete_pending: false,
            written: false,
        });
        self.by_file.insert(key, slot);
        (slot, id)
    }

    /// Looks up a live FCB.
    pub fn get(&self, slot: ArenaHandle) -> Option<&Fcb> {
        self.fcbs.get(slot)
    }

    /// Mutable access to a live FCB.
    pub fn get_mut(&mut self, slot: ArenaHandle) -> Option<&mut Fcb> {
        self.fcbs.get_mut(slot)
    }

    /// Finds the FCB currently associated with a file, if any.
    pub fn find(&self, volume: VolumeId, node: NodeId) -> Option<ArenaHandle> {
        self.by_file.get(&(volume, node)).copied()
    }

    /// Handle cleanup: decrements the handle count. Returns `true` when
    /// this was the last handle (the point where delete-pending files are
    /// removed and the cache starts tearing down).
    pub fn cleanup(&mut self, slot: ArenaHandle) -> bool {
        let fcb = self.fcbs.get_mut(slot).expect("cleanup of a live FCB");
        debug_assert!(fcb.handle_count > 0);
        fcb.handle_count -= 1;
        fcb.handle_count == 0
    }

    /// Final close of one file object. When the last object goes away the
    /// FCB is reclaimed (its slot generation bumps); returns `true` in
    /// that case.
    pub fn close(&mut self, slot: ArenaHandle) -> bool {
        let Some(fcb) = self.fcbs.get_mut(slot) else {
            return false;
        };
        debug_assert!(fcb.object_count > 0);
        fcb.object_count -= 1;
        if fcb.object_count == 0 && fcb.handle_count == 0 {
            let key = (fcb.volume, fcb.node);
            self.fcbs.remove(slot);
            self.by_file.remove(&key);
            true
        } else {
            false
        }
    }

    /// Forcibly drops an FCB (file deleted underneath).
    pub fn drop_fcb(&mut self, slot: ArenaHandle) {
        if let Some(fcb) = self.fcbs.remove(slot) {
            self.by_file.remove(&(fcb.volume, fcb.node));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_fs::{Volume, VolumeConfig};
    use nt_sim::SimTime;

    fn some_node() -> (VolumeId, NodeId) {
        let mut v = Volume::new(VolumeConfig::local_ntfs(1 << 20));
        let n = v.create_file(v.root(), "f", SimTime::ZERO).unwrap();
        (VolumeId(0), n)
    }

    #[test]
    fn opens_of_same_file_share_an_fcb() {
        let (vol, node) = some_node();
        let mut t = FcbTable::new();
        let (a, aid) = t.open(vol, node);
        let (b, bid) = t.open(vol, node);
        assert_eq!(a, b);
        assert_eq!(aid, bid);
        assert_eq!(t.get(a).unwrap().handle_count, 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lifecycle_cleanup_then_close() {
        let (vol, node) = some_node();
        let mut t = FcbTable::new();
        let (slot, _) = t.open(vol, node);
        assert!(t.cleanup(slot), "last handle");
        assert!(t.get(slot).is_some(), "FCB survives until close");
        assert!(t.close(slot), "last object reclaims the FCB");
        assert!(t.get(slot).is_none());
        assert!(t.find(vol, node).is_none());
    }

    #[test]
    fn two_handles_interleaved() {
        let (vol, node) = some_node();
        let mut t = FcbTable::new();
        let (slot, _) = t.open(vol, node);
        t.open(vol, node);
        assert!(!t.cleanup(slot), "one handle remains");
        assert!(!t.close(slot));
        assert!(t.cleanup(slot));
        assert!(t.close(slot), "now the FCB dies");
    }

    #[test]
    fn new_fcb_after_reclaim() {
        let (vol, node) = some_node();
        let mut t = FcbTable::new();
        let (a, aid) = t.open(vol, node);
        t.cleanup(a);
        t.close(a);
        let (b, bid) = t.open(vol, node);
        assert_ne!(aid, bid, "a reopened file gets a fresh FCB id");
        assert!(t.get(a).is_none(), "the stale slot handle is dead");
        assert!(t.get(b).is_some());
    }
}
