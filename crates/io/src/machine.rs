//! One traced workstation: volumes, cache, VM, FCBs, handles and the I/O
//! manager's dispatch engine.
//!
//! Requests enter through Win32-level methods ([`Machine::create`],
//! [`Machine::read`], … — implemented in the [`crate::ops`] modules).
//! Each builds an [`IrpFrame`] and hands it to `Machine::dispatch`,
//! which walks the attached [`DriverStack`] `IoCallDriver`-style: every
//! filter sees the packet on the way down (and may complete it, adjust
//! its clock, or pass it on) and the completed reply on the way back up.
//! The FSD plus cache-manager/VM fast path at the bottom computes the
//! completion time through the latency model and reports every IRP and
//! FastIO call — including the paging I/O triggered by the cache and VM
//! managers — to the stack, where the study's filter driver
//! ([`crate::filters::ObserverFilter`]) consumes the records.
//!
//! Background activity (read-ahead completions, the deferred second stage
//! of the two-stage close) is queued internally with its due time and
//! applied by [`Machine::pump`], which every public operation calls first.
//! The lazy writer is driven externally by calling [`Machine::lazy_tick`]
//! once per second of virtual time, mirroring the real scan cadence (§9.2).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::marker::PhantomData;

use nt_cache::{CacheConfig, CacheManager, CacheOpenHints};
use nt_fs::{FileAttributes, Namespace, NodeId, VolumeConfig, VolumeId};
use nt_obs::Telemetry;
use nt_sim::SimTime;
use nt_vm::{VmConfig, VmManager};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::arena::{Arena, ArenaHandle};
use crate::fastio::irp_fallback;
use crate::fcb::FcbTable;
use crate::filters::ObserverFilter;
use crate::latency::{DiskParams, LatencyModel, LatencyParams};
use crate::observer::IoObserver;
use crate::request::{EventKind, FastIoKind, IoEvent, MajorFunction};
use crate::stack::{DriverStack, FilterAction, FilterDriver, IrpFrame};
use crate::status::NtStatus;
use crate::types::{AccessMode, CreateOptions, FcbId, FileObjectId, HandleId, ProcessId};

/// Stable identity of a file for cache/VM keying: sections and cache maps
/// outlive FCBs (image pages survive process exit, §3.3).
pub type FileKey = (VolumeId, NodeId);

/// One pended change-notification: `(handle, file object, fcb, process,
/// registration time)`.
pub(crate) type WatchEntry = (HandleId, FileObjectId, FcbId, ProcessId, SimTime);

/// Hands one trace event to the driver stack, counting it either way.
///
/// The `IoEvent` expression is only evaluated when some attached layer
/// consumes records ([`DriverStack::events_wanted`]): a machine whose
/// observer is `NullObserver` skips the whole struct construction on its
/// request hot path. The counter still advances so the conservation
/// ledger's TRACE_EVENTS debit stays identical whether or not anyone is
/// listening.
macro_rules! emit_event {
    ($self:ident, $ev:expr) => {{
        $self.metrics.events_emitted += 1;
        if $self.stack.events_wanted() {
            let ev = $ev;
            $self.stack.event(&ev);
        }
    }};
}
pub(crate) use emit_event;

/// Result of one I/O operation.
#[derive(Clone, Copy, Debug)]
pub struct OpReply {
    /// Completion status.
    pub status: NtStatus,
    /// Bytes transferred (reads/writes), entries returned (directory).
    pub transferred: u64,
    /// Completion timestamp; the caller resumes no earlier than this.
    pub end: SimTime,
}

impl OpReply {
    pub(crate) fn at(status: NtStatus, end: SimTime) -> Self {
        OpReply {
            status,
            transferred: 0,
            end,
        }
    }
}

/// Machine-wide request counters (the §8/§10 denominators).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoMetrics {
    /// Successful opens.
    pub opens: u64,
    /// Failed opens (§8.4: 12 %).
    pub open_failures: u64,
    /// Data reads served on the FastIO path.
    pub fastio_reads: u64,
    /// Data reads served on the IRP path (non-paging).
    pub irp_reads: u64,
    /// Data writes on the FastIO path.
    pub fastio_writes: u64,
    /// Data writes on the IRP path (non-paging).
    pub irp_writes: u64,
    /// Paging reads (PagingIO bit set).
    pub paging_reads: u64,
    /// Paging writes.
    pub paging_writes: u64,
    /// Read errors (end-of-file), §8.4's 0.2 %.
    pub read_errors: u64,
    /// Control / query / directory operations.
    pub control_ops: u64,
    /// Failed control operations (§8.4: 8 %).
    pub control_failures: u64,
    /// Cleanup IRPs issued.
    pub cleanups: u64,
    /// Close IRPs issued.
    pub closes: u64,
    /// Bytes read by applications (either path).
    pub bytes_read: u64,
    /// Bytes written by applications.
    pub bytes_written: u64,
    /// Files deleted via explicit disposition.
    pub explicit_deletes: u64,
    /// Files destroyed by truncating dispositions.
    pub overwrite_truncates: u64,
    /// Files deleted through the temporary-attribute/delete-on-close path.
    pub delete_on_close: u64,
    /// Opens denied by share-mode arbitration.
    pub sharing_violations: u64,
    /// Byte-range lock requests granted.
    pub locks_granted: u64,
    /// Byte-range lock requests denied (lock conflicts).
    pub lock_conflicts: u64,
    /// Requests against remote volumes refused because the network link
    /// was partitioned (fault injection).
    pub network_failures: u64,
    /// Data-read requests accepted by the dispatcher (valid handle with
    /// read access). Conservation: every one lands in exactly one of
    /// `fastio_reads`, `irp_reads`, `read_lock_conflicts` or
    /// `read_stat_failures`.
    pub read_dispatches: u64,
    /// Data-write requests accepted by the dispatcher; same identity
    /// against the write buckets.
    pub write_dispatches: u64,
    /// Data reads refused by byte-range lock arbitration.
    pub read_lock_conflicts: u64,
    /// Data writes refused by byte-range lock arbitration.
    pub write_lock_conflicts: u64,
    /// Data reads aborted because the size query failed.
    pub read_stat_failures: u64,
    /// Data writes aborted because the size update failed.
    pub write_stat_failures: u64,
    /// Bytes moved by paging reads (cache misses, read-ahead and VM
    /// section faults). Conservation: equals the cache's
    /// `demand_read_bytes + readahead_bytes` plus the VM's
    /// `paged_in_bytes`.
    pub paging_read_bytes: u64,
    /// Bytes moved by paging writes (lazy writer, flushes, write-through).
    pub paging_write_bytes: u64,
    /// Bytes requested by copy-reads that went through the cache manager
    /// (mirror of the cache's `requested_read_bytes`).
    pub cached_read_requested_bytes: u64,
    /// Trace events handed to the observer — the debit side of the
    /// records-traced ledger.
    pub events_emitted: u64,
}

impl IoMetrics {
    /// Posts the I/O layer's side of the conservation accounts.
    ///
    /// The dispatcher originates (debits) everything it accepted — read and
    /// write requests, paging traffic, cache-bound request bytes, trace
    /// events — and credits the §10 path split it performed itself. The
    /// cache, VM, and trace layers credit the rest; a balanced ledger means
    /// no request was double-counted or silently dropped between layers.
    pub fn post_conservation(&self, ledger: &mut nt_audit::Ledger) {
        use nt_audit::accounts::*;
        ledger.debit(READ_DISPATCH, self.read_dispatches);
        ledger.credit(
            READ_DISPATCH,
            self.fastio_reads + self.irp_reads + self.read_lock_conflicts + self.read_stat_failures,
        );
        ledger.debit(WRITE_DISPATCH, self.write_dispatches);
        ledger.credit(
            WRITE_DISPATCH,
            self.fastio_writes
                + self.irp_writes
                + self.write_lock_conflicts
                + self.write_stat_failures,
        );
        ledger.debit(PAGING_READ_IOS, self.paging_reads);
        ledger.debit(PAGING_READ_BYTES, self.paging_read_bytes);
        ledger.debit(PAGING_WRITE_IOS, self.paging_writes);
        ledger.debit(PAGING_WRITE_BYTES, self.paging_write_bytes);
        ledger.debit(CACHE_REQUEST_BYTES, self.cached_read_requested_bytes);
        ledger.debit(TRACE_EVENTS, self.events_emitted);
    }
}

/// Static configuration of a machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Seed for the machine's service-time randomness.
    pub seed: u64,
    /// CPU-side latency parameters.
    pub latency: LatencyParams,
    /// Cache-manager tunables.
    pub cache: CacheConfig,
    /// VM tunables.
    pub vm: VmConfig,
    /// Budget for clean resident cache data before cold maps are trimmed.
    pub cache_budget_bytes: u64,
    /// Ablation: remove the FastIO dispatch table, forcing every data
    /// request down the IRP path (what a filter driver that fails to
    /// implement the FastIO methods does to a system, §10). Unlike a
    /// [`crate::filters::FastIoVeto`] — which relabels the call but keeps
    /// the cache-copy service time — this ablation also charges the IRP
    /// path's latency.
    pub disable_fastio: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            seed: 0,
            latency: LatencyParams::default(),
            cache: CacheConfig::default(),
            vm: VmConfig::default(),
            cache_budget_bytes: 1 << 20,
            disable_fastio: false,
        }
    }
}

pub(crate) struct OpenHandle {
    pub(crate) fo: FileObjectId,
    pub(crate) fcb: FcbId,
    pub(crate) fcb_slot: ArenaHandle,
    pub(crate) volume: VolumeId,
    pub(crate) node: NodeId,
    pub(crate) process: ProcessId,
    pub(crate) access: AccessMode,
    pub(crate) options: CreateOptions,
    pub(crate) byte_offset: u64,
    pub(crate) dir_cursor: usize,
    pub(crate) mapped: bool,
}

pub(crate) enum Pending {
    RaComplete {
        key: FileKey,
        offset: u64,
        len: u64,
    },
    CloseIrp {
        fo: FileObjectId,
        fcb: FcbId,
        fcb_slot: ArenaHandle,
        volume: VolumeId,
        node: NodeId,
        process: ProcessId,
    },
}

/// One simulated workstation.
///
/// The type parameter is the machine's primary observer — the trace
/// agent, a test vector, or [`crate::observer::NullObserver`] — which
/// [`Machine::new`] wraps in an [`ObserverFilter`] at the bottom of the
/// driver stack. Further layers attach above it through
/// [`Machine::attach_filter`].
pub struct Machine<O: IoObserver> {
    pub(crate) ns: Namespace,
    pub(crate) fcbs: FcbTable,
    pub(crate) cache: CacheManager<FileKey>,
    pub(crate) vm: VmManager<FileKey>,
    pub(crate) latency: LatencyModel,
    pub(crate) stack: DriverStack,
    pub(crate) rng: SmallRng,
    pub(crate) handles: Arena<OpenHandle>,
    pub(crate) next_fo: u64,
    /// Scheduled background actions in a slab; the heap carries each
    /// action's due time, a FIFO tie-break sequence and its packed slot.
    pub(crate) pending: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    pub(crate) pending_actions: Arena<Pending>,
    pub(crate) pending_seq: u64,
    /// File objects whose deferred close waits for the lazy writer to
    /// drain; several opens of the same file can be queued at once. The
    /// stored time is each cleanup's completion, which its close IRP
    /// must not precede. BTreeMap: iteration feeds events, so the order
    /// must be deterministic.
    #[allow(clippy::type_complexity)]
    pub(crate) deferred_close:
        BTreeMap<FileKey, Vec<(FileObjectId, FcbId, ArenaHandle, ProcessId, SimTime)>>,
    /// Pending change-notification IRPs per watched directory. The IRP
    /// stays pended from registration until a change in the directory
    /// completes it (FindFirstChangeNotification). BTreeMap for the same
    /// reason as `deferred_close`.
    pub(crate) watches: BTreeMap<FileKey, Vec<WatchEntry>>,
    /// Share-mode arbitration and byte-range locks, keyed by file.
    pub(crate) shares: crate::sharing::ShareRegistry,
    pub(crate) metrics: IoMetrics,
    pub(crate) config: MachineConfig,
    /// False while the network link to the file servers is partitioned;
    /// requests against redirector volumes then fail with
    /// [`NtStatus::NetworkUnreachable`].
    pub(crate) network_up: bool,
    _observer: PhantomData<O>,
}

impl<O: IoObserver> Machine<O> {
    /// Creates a machine with no volumes, its observer attached as the
    /// lowest filter in the driver stack.
    pub fn new(config: MachineConfig, observer: O) -> Self {
        let mut stack = DriverStack::new();
        stack.attach(Box::new(ObserverFilter::new(observer)));
        Machine {
            ns: Namespace::new(),
            fcbs: FcbTable::new(),
            cache: CacheManager::new(config.cache.clone()),
            vm: VmManager::new(config.vm.clone()),
            latency: LatencyModel::new(config.latency.clone(), Vec::new()),
            stack,
            rng: SmallRng::seed_from_u64(config.seed),
            handles: Arena::new(),
            next_fo: 1,
            pending: BinaryHeap::new(),
            pending_actions: Arena::new(),
            pending_seq: 0,
            deferred_close: BTreeMap::new(),
            watches: BTreeMap::new(),
            shares: crate::sharing::ShareRegistry::new(),
            metrics: IoMetrics::default(),
            config,
            network_up: true,
            _observer: PhantomData,
        }
    }

    /// Attaches a telemetry handle, sharing it with the cache and VM
    /// managers so their spans nest under the dispatch spans a
    /// [`crate::filters::SpanFilter`] opens.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.cache.set_telemetry(telemetry.clone());
        self.vm.set_telemetry(telemetry);
    }

    /// True when the link to the file servers is up.
    pub fn network_available(&self) -> bool {
        self.network_up
    }

    /// Partitions (`false`) or heals (`true`) the network link. While
    /// partitioned, opens, reads and writes on remote volumes fail with
    /// [`NtStatus::NetworkUnreachable`]; local volumes are unaffected.
    pub fn set_network_available(&mut self, up: bool) {
        self.network_up = up;
    }

    /// Adds a local volume with its disk model.
    pub fn add_local_volume(
        &mut self,
        drive: char,
        config: VolumeConfig,
        disk: DiskParams,
    ) -> VolumeId {
        let id = self.ns.mount_local(drive, config);
        self.latency.add_volume(disk);
        id
    }

    /// Connects a redirector share.
    pub fn add_share(
        &mut self,
        server: &str,
        share: &str,
        config: VolumeConfig,
        disk: DiskParams,
    ) -> VolumeId {
        let id = self.ns.mount_share(server, share, config);
        self.latency.add_volume(disk);
        id
    }

    /// The machine's namespace (for workload setup and snapshots).
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// Mutable namespace access (initial content population).
    pub fn namespace_mut(&mut self) -> &mut Namespace {
        &mut self.ns
    }

    /// The driver stack the machine dispatches through.
    pub fn stack(&self) -> &DriverStack {
        &self.stack
    }

    /// Mutable stack access (inspection, [`DriverStack::find_mut`]).
    pub fn stack_mut(&mut self) -> &mut DriverStack {
        &mut self.stack
    }

    /// Attaches `filter` at the top of the driver stack, above every
    /// layer already present (including the machine's own observer).
    pub fn attach_filter(&mut self, filter: Box<dyn FilterDriver>) {
        self.stack.attach(filter);
    }

    /// The machine's primary observer (the one [`Machine::new`] wrapped).
    pub fn observer(&self) -> &O {
        self.stack
            .find::<ObserverFilter<O>>()
            .expect("Machine::new attaches the observer filter")
            .inner()
    }

    /// Mutable observer access (e.g. to drain collected records).
    pub fn observer_mut(&mut self) -> &mut O {
        self.stack
            .find_mut::<ObserverFilter<O>>()
            .expect("Machine::new attaches the observer filter")
            .inner_mut()
    }

    /// Request counters.
    pub fn metrics(&self) -> IoMetrics {
        self.metrics
    }

    /// Cache-manager counters (§9 analysis).
    pub fn cache_metrics(&self) -> nt_cache::CacheMetrics {
        self.cache.metrics()
    }

    /// VM counters (§3.3 analysis).
    pub fn vm_metrics(&self) -> nt_vm::VmMetrics {
        self.vm.metrics()
    }

    /// Cumulative disk service ticks across the machine's volumes — the
    /// what-if latency-model axis (§9 simulation studies).
    pub fn disk_busy_ticks(&self) -> u64 {
        self.latency.disk_busy_ticks()
    }

    /// Dirty cached bytes that have not reached the disk (yet). At end of
    /// run this is the residual term of the dirty-byte conservation
    /// ledger: bytes dirtied = lazy + flush + purged + residual.
    pub fn residual_dirty_bytes(&self) -> u64 {
        self.cache.dirty_bytes()
    }

    /// Number of open handles.
    pub fn open_handles(&self) -> usize {
        self.handles.len()
    }

    /// Bytes currently resident in the cache manager (sampler gauge).
    pub fn cache_resident_bytes(&self) -> u64 {
        self.cache.resident_bytes()
    }

    /// Number of files whose close is still waiting on the lazy writer.
    pub fn deferred_closes(&self) -> usize {
        self.deferred_close.len()
    }

    // ------------------------------------------------------------------
    // IRP dispatch through the driver stack
    // ------------------------------------------------------------------

    /// Sends `frame` down the driver stack and, if no filter completes
    /// it, into the FSD closure; the reply ascends back through every
    /// layer the packet passed.
    ///
    /// When no attached filter intercepts packets the descent is skipped
    /// outright, so an observation-only stack costs dispatch nothing —
    /// the <3 % overhead budget of the streaming bench gate.
    pub(crate) fn dispatch_with<R: Default>(
        &mut self,
        mut frame: IrpFrame,
        fsd: impl FnOnce(&mut Self, &IrpFrame) -> (OpReply, R),
    ) -> (OpReply, R) {
        if !self.stack.intercepting() {
            let out = fsd(self, &frame);
            self.stack.note_fsd_completion();
            return out;
        }
        let layers = self.stack.len();
        let mark = self.stack.frames_mark();
        let mut depth = layers;
        let mut short_circuit = None;
        for i in 0..layers {
            match self.stack.pre(i, &mut frame) {
                FilterAction::Pass => self.stack.push_frame(frame),
                FilterAction::Complete(reply) => {
                    depth = i;
                    short_circuit = Some(reply);
                    break;
                }
            }
        }
        let (mut reply, value) = match short_circuit {
            Some(reply) => (reply, R::default()),
            None => {
                let out = fsd(self, &frame);
                self.stack.note_fsd_completion();
                out
            }
        };
        // Ascend: each layer completes against its own recorded stack
        // location, the packet exactly as it passed it down.
        for i in (0..depth).rev() {
            let layer_frame = self.stack.frame_at(mark + i);
            self.stack.post(i, &layer_frame, &mut reply);
        }
        self.stack.truncate_frames(mark);
        (reply, value)
    }

    /// [`Machine::dispatch_with`] for operations with no extra result.
    pub(crate) fn dispatch(
        &mut self,
        frame: IrpFrame,
        fsd: impl FnOnce(&mut Self, &IrpFrame) -> OpReply,
    ) -> OpReply {
        self.dispatch_with(frame, |m, f| (fsd(m, f), ())).0
    }

    /// The event kind a FastIO call of `kind` actually rides: the
    /// procedural path when every layer's table implements it, or the
    /// documented IRP fallback when some layer opted out (§10).
    pub(crate) fn fastio_event_kind(&self, kind: FastIoKind) -> EventKind {
        if self.stack.fastio_supported(kind) {
            EventKind::FastIo(kind)
        } else {
            EventKind::Irp(irp_fallback(kind))
        }
    }

    // ------------------------------------------------------------------
    // Background completions
    // ------------------------------------------------------------------

    pub(crate) fn schedule(&mut self, due: SimTime, action: Pending) {
        let seq = self.pending_seq;
        self.pending_seq += 1;
        let slot = self.pending_actions.insert(action);
        self.pending.push(Reverse((due, seq, slot.pack())));
    }

    /// Applies background completions due at or before `now`.
    pub fn pump(&mut self, now: SimTime) {
        while let Some(&Reverse((due, _, slot))) = self.pending.peek() {
            if due > now {
                break;
            }
            self.pending.pop();
            let Some(action) = self.pending_actions.remove_raw(slot) else {
                continue;
            };
            match action {
                Pending::RaComplete { key, offset, len } => {
                    self.cache.complete_paging_read(&key, offset, len);
                }
                Pending::CloseIrp {
                    fo,
                    fcb,
                    fcb_slot,
                    volume,
                    node,
                    process,
                } => {
                    self.emit_close_irp(fo, fcb, fcb_slot, volume, node, process, due);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit_close_irp(
        &mut self,
        fo: FileObjectId,
        fcb: FcbId,
        fcb_slot: ArenaHandle,
        volume: VolumeId,
        node: NodeId,
        process: ProcessId,
        now: SimTime,
    ) {
        let end = now + self.latency.fastio_metadata();
        let file_size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::Irp(MajorFunction::Close),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local: self.ns.is_local(volume),
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size,
                byte_offset: 0,
                status: NtStatus::Success,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        self.metrics.closes += 1;
        self.fcbs.close(fcb_slot);
    }

    /// Completes any deferred closes queued on `key` — the cache map is
    /// about to be purged (delete/overwrite), so the lazy writer will
    /// never signal the drain.
    pub(crate) fn release_deferred(&mut self, key: FileKey, now: SimTime) {
        if let Some(waiters) = self.deferred_close.remove(&key) {
            let (volume, node) = key;
            for (fo, fcb, fcb_slot, process, cleaned) in waiters {
                let at = now.max(cleaned + self.config.cache.clean_close_delay);
                self.emit_close_irp(fo, fcb, fcb_slot, volume, node, process, at);
            }
        }
    }

    pub(crate) fn next_file_object(&mut self) -> FileObjectId {
        let id = FileObjectId(self.next_fo);
        self.next_fo += 1;
        id
    }

    pub(crate) fn parent_of(&self, volume: VolumeId, node: NodeId) -> Option<NodeId> {
        self.ns
            .volume(volume)
            .ok()
            .and_then(|v| v.node(node).ok())
            .and_then(|n| n.parent)
    }

    pub(crate) fn is_compressed(&self, volume: VolumeId, node: NodeId) -> bool {
        self.ns
            .volume(volume)
            .ok()
            .and_then(|v| v.node(node).ok())
            .and_then(|n| n.file().map(|f| f.attributes))
            .map(|a| a.contains(FileAttributes::COMPRESSED))
            .unwrap_or(false)
    }

    pub(crate) fn hints_for(options: CreateOptions) -> CacheOpenHints {
        CacheOpenHints {
            sequential_only: options.sequential_only,
            write_through: options.write_through,
            temporary: options.temporary,
        }
    }

    pub(crate) fn advance_offset(&mut self, handle: HandleId, new_offset: u64) {
        if let Some(h) = self.handles.get_raw_mut(handle.0) {
            h.byte_offset = new_offset;
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit_read_event(
        &mut self,
        kind: EventKind,
        fo: FileObjectId,
        fcb: FcbId,
        process: ProcessId,
        volume: VolumeId,
        local: bool,
        paging: bool,
        readahead: bool,
        offset: u64,
        length: u64,
        transferred: u64,
        file_size: u64,
        byte_offset: u64,
        start: SimTime,
        end: SimTime,
    ) {
        emit_event!(
            self,
            IoEvent {
                kind,
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: paging,
                readahead,
                offset,
                length,
                transferred,
                file_size,
                byte_offset,
                status: NtStatus::Success,
                start,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit_write_event(
        &mut self,
        kind: EventKind,
        fo: FileObjectId,
        fcb: FcbId,
        process: ProcessId,
        volume: VolumeId,
        local: bool,
        paging: bool,
        offset: u64,
        length: u64,
        file_size: u64,
        byte_offset: u64,
        start: SimTime,
        end: SimTime,
    ) {
        emit_event!(
            self,
            IoEvent {
                kind,
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: paging,
                readahead: false,
                offset,
                length,
                transferred: length,
                file_size,
                byte_offset,
                status: NtStatus::Success,
                start,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
    }
}
