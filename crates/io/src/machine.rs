//! One traced workstation: volumes, cache, VM, FCBs, handles and the I/O
//! manager dispatch logic.
//!
//! Requests enter through Win32-level methods ([`Machine::create`],
//! [`Machine::read`], …). Each computes its completion time through the
//! latency model and reports every IRP and FastIO call — including the
//! paging I/O triggered by the cache and VM managers — to the attached
//! [`IoObserver`], which is where the study's filter driver sits.
//!
//! Background activity (read-ahead completions, the deferred second stage
//! of the two-stage close) is queued internally with its due time and
//! applied by [`Machine::pump`], which every public operation calls first.
//! The lazy writer is driven externally by calling [`Machine::lazy_tick`]
//! once per second of virtual time, mirroring the real scan cadence (§9.2).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use nt_cache::{CacheConfig, CacheManager, CacheOpenHints};
use nt_fs::{
    FileAttributes, FileTimes, FsError, Namespace, NodeId, NtPath, VolumeConfig, VolumeId,
};
use nt_obs::{Phase, Telemetry};
use nt_sim::{SimDuration, SimTime};
use nt_vm::{SectionKind, VmConfig, VmManager};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::fcb::FcbTable;
use crate::latency::{DiskParams, LatencyModel, LatencyParams};
use crate::observer::{FileObjectInfo, IoObserver};
use crate::request::{EventKind, FastIoKind, IoEvent, MajorFunction, SetInfoKind};
use crate::status::NtStatus;
use crate::types::{
    AccessMode, CreateOptions, Disposition, FcbId, FileObjectId, HandleId, ProcessId,
};

/// Stable identity of a file for cache/VM keying: sections and cache maps
/// outlive FCBs (image pages survive process exit, §3.3).
pub type FileKey = (VolumeId, NodeId);

/// One pended change-notification: `(handle, file object, fcb, process,
/// registration time)`.
type WatchEntry = (HandleId, FileObjectId, FcbId, ProcessId, SimTime);

/// Hands one trace event to the observer, counting it either way.
///
/// The `IoEvent` expression is only evaluated when the observer consumes
/// records (`O::ENABLED`): a machine running with `NullObserver` skips
/// the whole struct construction on its request hot path. The counter
/// still advances so the conservation ledger's TRACE_EVENTS debit stays
/// identical whether or not anyone is listening.
macro_rules! emit_event {
    ($self:ident, $ev:expr) => {{
        $self.metrics.events_emitted += 1;
        if O::ENABLED {
            let ev = $ev;
            $self.observer.event(&ev);
        }
    }};
}

/// Result of one I/O operation.
#[derive(Clone, Copy, Debug)]
pub struct OpReply {
    /// Completion status.
    pub status: NtStatus,
    /// Bytes transferred (reads/writes), entries returned (directory).
    pub transferred: u64,
    /// Completion timestamp; the caller resumes no earlier than this.
    pub end: SimTime,
}

impl OpReply {
    fn at(status: NtStatus, end: SimTime) -> Self {
        OpReply {
            status,
            transferred: 0,
            end,
        }
    }
}

/// Machine-wide request counters (the §8/§10 denominators).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoMetrics {
    /// Successful opens.
    pub opens: u64,
    /// Failed opens (§8.4: 12 %).
    pub open_failures: u64,
    /// Data reads served on the FastIO path.
    pub fastio_reads: u64,
    /// Data reads served on the IRP path (non-paging).
    pub irp_reads: u64,
    /// Data writes on the FastIO path.
    pub fastio_writes: u64,
    /// Data writes on the IRP path (non-paging).
    pub irp_writes: u64,
    /// Paging reads (PagingIO bit set).
    pub paging_reads: u64,
    /// Paging writes.
    pub paging_writes: u64,
    /// Read errors (end-of-file), §8.4's 0.2 %.
    pub read_errors: u64,
    /// Control / query / directory operations.
    pub control_ops: u64,
    /// Failed control operations (§8.4: 8 %).
    pub control_failures: u64,
    /// Cleanup IRPs issued.
    pub cleanups: u64,
    /// Close IRPs issued.
    pub closes: u64,
    /// Bytes read by applications (either path).
    pub bytes_read: u64,
    /// Bytes written by applications.
    pub bytes_written: u64,
    /// Files deleted via explicit disposition.
    pub explicit_deletes: u64,
    /// Files destroyed by truncating dispositions.
    pub overwrite_truncates: u64,
    /// Files deleted through the temporary-attribute/delete-on-close path.
    pub delete_on_close: u64,
    /// Opens denied by share-mode arbitration.
    pub sharing_violations: u64,
    /// Byte-range lock requests granted.
    pub locks_granted: u64,
    /// Byte-range lock requests denied (lock conflicts).
    pub lock_conflicts: u64,
    /// Requests against remote volumes refused because the network link
    /// was partitioned (fault injection).
    pub network_failures: u64,
    /// Data-read requests accepted by the dispatcher (valid handle with
    /// read access). Conservation: every one lands in exactly one of
    /// `fastio_reads`, `irp_reads`, `read_lock_conflicts` or
    /// `read_stat_failures`.
    pub read_dispatches: u64,
    /// Data-write requests accepted by the dispatcher; same identity
    /// against the write buckets.
    pub write_dispatches: u64,
    /// Data reads refused by byte-range lock arbitration.
    pub read_lock_conflicts: u64,
    /// Data writes refused by byte-range lock arbitration.
    pub write_lock_conflicts: u64,
    /// Data reads aborted because the size query failed.
    pub read_stat_failures: u64,
    /// Data writes aborted because the size update failed.
    pub write_stat_failures: u64,
    /// Bytes moved by paging reads (cache misses, read-ahead and VM
    /// section faults). Conservation: equals the cache's
    /// `demand_read_bytes + readahead_bytes` plus the VM's
    /// `paged_in_bytes`.
    pub paging_read_bytes: u64,
    /// Bytes moved by paging writes (lazy writer, flushes, write-through).
    pub paging_write_bytes: u64,
    /// Bytes requested by copy-reads that went through the cache manager
    /// (mirror of the cache's `requested_read_bytes`).
    pub cached_read_requested_bytes: u64,
    /// Trace events handed to the observer — the debit side of the
    /// records-traced ledger.
    pub events_emitted: u64,
}

impl IoMetrics {
    /// Posts the I/O layer's side of the conservation accounts.
    ///
    /// The dispatcher originates (debits) everything it accepted — read and
    /// write requests, paging traffic, cache-bound request bytes, trace
    /// events — and credits the §10 path split it performed itself. The
    /// cache, VM, and trace layers credit the rest; a balanced ledger means
    /// no request was double-counted or silently dropped between layers.
    pub fn post_conservation(&self, ledger: &mut nt_audit::Ledger) {
        use nt_audit::accounts::*;
        ledger.debit(READ_DISPATCH, self.read_dispatches);
        ledger.credit(
            READ_DISPATCH,
            self.fastio_reads + self.irp_reads + self.read_lock_conflicts + self.read_stat_failures,
        );
        ledger.debit(WRITE_DISPATCH, self.write_dispatches);
        ledger.credit(
            WRITE_DISPATCH,
            self.fastio_writes
                + self.irp_writes
                + self.write_lock_conflicts
                + self.write_stat_failures,
        );
        ledger.debit(PAGING_READ_IOS, self.paging_reads);
        ledger.debit(PAGING_READ_BYTES, self.paging_read_bytes);
        ledger.debit(PAGING_WRITE_IOS, self.paging_writes);
        ledger.debit(PAGING_WRITE_BYTES, self.paging_write_bytes);
        ledger.debit(CACHE_REQUEST_BYTES, self.cached_read_requested_bytes);
        ledger.debit(TRACE_EVENTS, self.events_emitted);
    }
}

/// Static configuration of a machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Seed for the machine's service-time randomness.
    pub seed: u64,
    /// CPU-side latency parameters.
    pub latency: LatencyParams,
    /// Cache-manager tunables.
    pub cache: CacheConfig,
    /// VM tunables.
    pub vm: VmConfig,
    /// Budget for clean resident cache data before cold maps are trimmed.
    pub cache_budget_bytes: u64,
    /// Ablation: remove the FastIO dispatch table, forcing every data
    /// request down the IRP path (what a filter driver that fails to
    /// implement the FastIO methods does to a system, §10).
    pub disable_fastio: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            seed: 0,
            latency: LatencyParams::default(),
            cache: CacheConfig::default(),
            vm: VmConfig::default(),
            cache_budget_bytes: 1 << 20,
            disable_fastio: false,
        }
    }
}

struct OpenHandle {
    fo: FileObjectId,
    fcb: FcbId,
    volume: VolumeId,
    node: NodeId,
    process: ProcessId,
    access: AccessMode,
    options: CreateOptions,
    byte_offset: u64,
    dir_cursor: usize,
    mapped: bool,
}

enum Pending {
    RaComplete {
        key: FileKey,
        offset: u64,
        len: u64,
    },
    CloseIrp {
        fo: FileObjectId,
        fcb: FcbId,
        volume: VolumeId,
        node: NodeId,
        process: ProcessId,
    },
}

/// One simulated workstation.
pub struct Machine<O: IoObserver> {
    ns: Namespace,
    fcbs: FcbTable,
    cache: CacheManager<FileKey>,
    vm: VmManager<FileKey>,
    latency: LatencyModel,
    observer: O,
    rng: SmallRng,
    handles: HashMap<u64, OpenHandle>,
    next_fo: u64,
    next_handle: u64,
    pending: BinaryHeap<Reverse<(SimTime, u64)>>,
    pending_actions: HashMap<u64, Pending>,
    pending_seq: u64,
    /// File objects whose deferred close waits for the lazy writer to
    /// drain; several opens of the same file can be queued at once. The
    /// stored time is each cleanup's completion, which its close IRP
    /// must not precede.
    deferred_close: HashMap<FileKey, Vec<(FileObjectId, FcbId, ProcessId, SimTime)>>,
    /// Pending change-notification IRPs per watched directory. The IRP
    /// stays pended from registration until a change in the directory
    /// completes it (FindFirstChangeNotification).
    watches: HashMap<FileKey, Vec<WatchEntry>>,
    /// Share-mode arbitration and byte-range locks, keyed by file.
    shares: crate::sharing::ShareRegistry,
    metrics: IoMetrics,
    telemetry: Telemetry,
    config: MachineConfig,
    /// False while the network link to the file servers is partitioned;
    /// requests against redirector volumes then fail with
    /// [`NtStatus::NetworkUnreachable`].
    network_up: bool,
}

impl<O: IoObserver> Machine<O> {
    /// Creates a machine with no volumes.
    pub fn new(config: MachineConfig, observer: O) -> Self {
        Machine {
            ns: Namespace::new(),
            fcbs: FcbTable::new(),
            cache: CacheManager::new(config.cache.clone()),
            vm: VmManager::new(config.vm.clone()),
            latency: LatencyModel::new(config.latency.clone(), Vec::new()),
            observer,
            rng: SmallRng::seed_from_u64(config.seed),
            handles: HashMap::new(),
            next_fo: 1,
            next_handle: 1,
            pending: BinaryHeap::new(),
            pending_actions: HashMap::new(),
            pending_seq: 0,
            deferred_close: HashMap::new(),
            watches: HashMap::new(),
            shares: crate::sharing::ShareRegistry::new(),
            metrics: IoMetrics::default(),
            telemetry: Telemetry::off(),
            config,
            network_up: true,
        }
    }

    /// Attaches a telemetry handle, sharing it with the cache and VM
    /// managers so their spans nest under this machine's dispatch spans.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.cache.set_telemetry(telemetry.clone());
        self.vm.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// True when the link to the file servers is up.
    pub fn network_available(&self) -> bool {
        self.network_up
    }

    /// Partitions (`false`) or heals (`true`) the network link. While
    /// partitioned, opens, reads and writes on remote volumes fail with
    /// [`NtStatus::NetworkUnreachable`]; local volumes are unaffected.
    pub fn set_network_available(&mut self, up: bool) {
        self.network_up = up;
    }

    fn share_key(volume: VolumeId, node: NodeId) -> u64 {
        ((volume.0 as u64) << 32) | node.index() as u64
    }

    /// Adds a local volume with its disk model.
    pub fn add_local_volume(
        &mut self,
        drive: char,
        config: VolumeConfig,
        disk: DiskParams,
    ) -> VolumeId {
        let id = self.ns.mount_local(drive, config);
        self.latency.add_volume(disk);
        id
    }

    /// Connects a redirector share.
    pub fn add_share(
        &mut self,
        server: &str,
        share: &str,
        config: VolumeConfig,
        disk: DiskParams,
    ) -> VolumeId {
        let id = self.ns.mount_share(server, share, config);
        self.latency.add_volume(disk);
        id
    }

    /// The machine's namespace (for workload setup and snapshots).
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// Mutable namespace access (initial content population).
    pub fn namespace_mut(&mut self) -> &mut Namespace {
        &mut self.ns
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable observer access (e.g. to drain collected records).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Request counters.
    pub fn metrics(&self) -> IoMetrics {
        self.metrics
    }

    /// Cache-manager counters (§9 analysis).
    pub fn cache_metrics(&self) -> nt_cache::CacheMetrics {
        self.cache.metrics()
    }

    /// VM counters (§3.3 analysis).
    pub fn vm_metrics(&self) -> nt_vm::VmMetrics {
        self.vm.metrics()
    }

    /// Dirty cached bytes that have not reached the disk (yet). At end of
    /// run this is the residual term of the dirty-byte conservation
    /// ledger: bytes dirtied = lazy + flush + purged + residual.
    pub fn residual_dirty_bytes(&self) -> u64 {
        self.cache.dirty_bytes()
    }

    /// Number of open handles.
    pub fn open_handles(&self) -> usize {
        self.handles.len()
    }

    /// Bytes currently resident in the cache manager (sampler gauge).
    pub fn cache_resident_bytes(&self) -> u64 {
        self.cache.resident_bytes()
    }

    fn schedule(&mut self, due: SimTime, action: Pending) {
        let seq = self.pending_seq;
        self.pending_seq += 1;
        self.pending.push(Reverse((due, seq)));
        self.pending_actions.insert(seq, action);
    }

    /// Applies background completions due at or before `now`.
    pub fn pump(&mut self, now: SimTime) {
        while let Some(&Reverse((due, seq))) = self.pending.peek() {
            if due > now {
                break;
            }
            self.pending.pop();
            let Some(action) = self.pending_actions.remove(&seq) else {
                continue;
            };
            match action {
                Pending::RaComplete { key, offset, len } => {
                    self.cache.complete_paging_read(&key, offset, len);
                }
                Pending::CloseIrp {
                    fo,
                    fcb,
                    volume,
                    node,
                    process,
                } => {
                    self.emit_close_irp(fo, fcb, volume, node, process, due);
                }
            }
        }
    }

    fn emit_close_irp(
        &mut self,
        fo: FileObjectId,
        fcb: FcbId,
        volume: VolumeId,
        node: NodeId,
        process: ProcessId,
        now: SimTime,
    ) {
        let end = now + self.latency.fastio_metadata();
        let file_size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::Irp(MajorFunction::Close),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local: self.ns.is_local(volume),
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size,
                byte_offset: 0,
                status: NtStatus::Success,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        self.metrics.closes += 1;
        self.fcbs.close(fcb);
    }

    /// Completes any deferred closes queued on `key` — the cache map is
    /// about to be purged (delete/overwrite), so the lazy writer will
    /// never signal the drain.
    fn release_deferred(&mut self, key: FileKey, now: SimTime) {
        if let Some(waiters) = self.deferred_close.remove(&key) {
            let (volume, node) = key;
            for (fo, fcb, process, cleaned) in waiters {
                let at = now.max(cleaned + self.config.cache.clean_close_delay);
                self.emit_close_irp(fo, fcb, volume, node, process, at);
            }
        }
    }

    fn next_file_object(&mut self) -> FileObjectId {
        let id = FileObjectId(self.next_fo);
        self.next_fo += 1;
        id
    }

    fn parent_of(&self, volume: VolumeId, node: NodeId) -> Option<NodeId> {
        self.ns
            .volume(volume)
            .ok()
            .and_then(|v| v.node(node).ok())
            .and_then(|n| n.parent)
    }

    fn is_compressed(&self, volume: VolumeId, node: NodeId) -> bool {
        self.ns
            .volume(volume)
            .ok()
            .and_then(|v| v.node(node).ok())
            .and_then(|n| n.file().map(|f| f.attributes))
            .map(|a| a.contains(FileAttributes::COMPRESSED))
            .unwrap_or(false)
    }

    fn hints_for(options: CreateOptions) -> CacheOpenHints {
        CacheOpenHints {
            sequential_only: options.sequential_only,
            write_through: options.write_through,
            temporary: options.temporary,
        }
    }

    // ------------------------------------------------------------------
    // Create / open
    // ------------------------------------------------------------------

    /// Opens or creates a file (IRP_MJ_CREATE).
    ///
    /// Returns the reply and, on success, a handle. Failed opens emit the
    /// create IRP with its failure status, which is how the §8.4 error
    /// rates enter the trace.
    // NtCreateFile takes this many parameters; mirroring it is clearer
    // than bundling.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &mut self,
        process: ProcessId,
        volume: VolumeId,
        path: &NtPath,
        access: AccessMode,
        disposition: Disposition,
        options: CreateOptions,
        now: SimTime,
    ) -> (OpReply, Option<HandleId>) {
        self.pump(now);
        let _span = self.telemetry.span(Phase::Dispatch, "create", now);
        let fo = self.next_file_object();
        // The name record (and its path copy) only exists for a real
        // observer; an untraced machine never builds it.
        if O::ENABLED {
            self.observer.file_object(&FileObjectInfo {
                id: fo,
                volume: volume.0,
                path: path.to_string(),
                process,
                at: now,
            });
        }
        let local = self.ns.is_local(volume);

        // A partitioned network link fails the open before the redirector
        // reaches the server; nothing on the remote volume changes.
        if !local && !self.network_up {
            let end = now + self.latency.metadata_op();
            self.metrics.open_failures += 1;
            self.metrics.network_failures += 1;
            emit_event!(
                self,
                IoEvent {
                    kind: EventKind::Irp(MajorFunction::Create),
                    file_object: fo,
                    fcb: FcbId(u64::MAX),
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset: 0,
                    length: 0,
                    transferred: 0,
                    file_size: 0,
                    byte_offset: 0,
                    status: NtStatus::NetworkUnreachable,
                    start: now,
                    end,
                    access: Some(access),
                    disposition: Some(disposition),
                    options: Some(options),
                    set_info: None,
                    created: false,
                }
            );
            return (OpReply::at(NtStatus::NetworkUnreachable, end), None);
        }

        // Share-mode arbitration happens before any side effect of the
        // open (in particular before a truncating disposition destroys
        // data).
        if let Ok(node) = self.ns.volume(volume).and_then(|v| v.lookup(path)) {
            let share_key = Self::share_key(volume, node);
            if !self.shares.compatible(share_key, access, options.share) {
                let end = now + self.latency.metadata_op();
                self.metrics.open_failures += 1;
                self.metrics.sharing_violations += 1;
                emit_event!(
                    self,
                    IoEvent {
                        kind: EventKind::Irp(MajorFunction::Create),
                        file_object: fo,
                        fcb: FcbId(u64::MAX),
                        process,
                        volume: volume.0,
                        local,
                        paging_io: false,
                        readahead: false,
                        offset: 0,
                        length: 0,
                        transferred: 0,
                        file_size: 0,
                        byte_offset: 0,
                        status: NtStatus::SharingViolation,
                        start: now,
                        end,
                        access: Some(access),
                        disposition: Some(disposition),
                        options: Some(options),
                        set_info: None,
                        created: false,
                    }
                );
                return (OpReply::at(NtStatus::SharingViolation, end), None);
            }
        }
        let resolved = self.resolve_create(volume, path, disposition, options, now);
        let end = now + self.latency.metadata_op();
        match resolved {
            Err(status) => {
                self.metrics.open_failures += 1;
                emit_event!(
                    self,
                    IoEvent {
                        kind: EventKind::Irp(MajorFunction::Create),
                        file_object: fo,
                        fcb: FcbId(u64::MAX),
                        process,
                        volume: volume.0,
                        local,
                        paging_io: false,
                        readahead: false,
                        offset: 0,
                        length: 0,
                        transferred: 0,
                        file_size: 0,
                        byte_offset: 0,
                        status,
                        start: now,
                        end,
                        access: Some(access),
                        disposition: Some(disposition),
                        options: Some(options),
                        set_info: None,
                        created: false,
                    }
                );
                (OpReply::at(status, end), None)
            }
            Ok((node, truncated, created)) => {
                let fcb = self.fcbs.open(volume, node);
                if truncated {
                    // §6.3: an overwrite may find unwritten dirty pages in
                    // the cache; they are purged, never written — and any
                    // close still waiting on the old data completes now.
                    self.release_deferred((volume, node), now);
                    self.cache.purge(&(volume, node));
                    self.vm.purge(&(volume, node));
                    self.metrics.overwrite_truncates += 1;
                }
                if options.temporary {
                    let _ = self.ns.volume_mut(volume).and_then(|v| {
                        let attrs = v
                            .node(node)
                            .ok()
                            .and_then(|n| n.file().map(|f| f.attributes))
                            .unwrap_or_default();
                        v.set_attributes(node, attrs | FileAttributes::TEMPORARY)
                    });
                }
                let file_size = self
                    .ns
                    .volume(volume)
                    .ok()
                    .and_then(|v| v.file_size(node).ok())
                    .unwrap_or(0);
                if created || truncated {
                    if let Some(parent) = self.parent_of(volume, node) {
                        self.fire_watches(volume, parent, now);
                    }
                }
                let handle = HandleId(self.next_handle);
                self.next_handle += 1;
                let registered = self.shares.try_open(
                    Self::share_key(volume, node),
                    handle,
                    access,
                    options.share,
                );
                debug_assert!(registered, "compatibility was checked above");
                self.handles.insert(
                    handle.0,
                    OpenHandle {
                        fo,
                        fcb,
                        volume,
                        node,
                        process,
                        access,
                        options,
                        byte_offset: 0,
                        dir_cursor: 0,
                        mapped: false,
                    },
                );
                self.metrics.opens += 1;
                emit_event!(
                    self,
                    IoEvent {
                        kind: EventKind::Irp(MajorFunction::Create),
                        file_object: fo,
                        fcb,
                        process,
                        volume: volume.0,
                        local,
                        paging_io: false,
                        readahead: false,
                        offset: 0,
                        length: 0,
                        transferred: 0,
                        file_size,
                        byte_offset: 0,
                        status: NtStatus::Success,
                        start: now,
                        end,
                        access: Some(access),
                        disposition: Some(disposition),
                        options: Some(options),
                        set_info: None,
                        created,
                    }
                );
                (
                    OpReply {
                        status: NtStatus::Success,
                        transferred: 0,
                        end,
                    },
                    Some(handle),
                )
            }
        }
    }

    fn resolve_create(
        &mut self,
        volume: VolumeId,
        path: &NtPath,
        disposition: Disposition,
        options: CreateOptions,
        now: SimTime,
    ) -> Result<(NodeId, bool, bool), NtStatus> {
        let vol = self.ns.volume_mut(volume).map_err(NtStatus::from)?;
        match vol.lookup(path) {
            Ok(node) => {
                let is_dir = vol
                    .node(node)
                    .map(|n| n.kind.is_directory())
                    .unwrap_or(false);
                if is_dir && !options.directory {
                    // Opening a directory as a file is allowed for control
                    // access in NT; only data access fails. We allow it.
                }
                if !is_dir && options.directory {
                    return Err(NtStatus::NotADirectory);
                }
                match disposition {
                    Disposition::Create => Err(NtStatus::ObjectNameCollision),
                    Disposition::Open | Disposition::OpenIf => Ok((node, false, false)),
                    Disposition::Overwrite | Disposition::OverwriteIf | Disposition::Supersede => {
                        if is_dir {
                            return Err(NtStatus::FileIsADirectory);
                        }
                        vol.overwrite(node, now).map_err(NtStatus::from)?;
                        Ok((node, true, false))
                    }
                }
            }
            Err(FsError::NotFound) => {
                if !disposition.may_create() {
                    return Err(NtStatus::ObjectNameNotFound);
                }
                let parent_path = path.parent();
                let parent = vol
                    .lookup(&parent_path)
                    .map_err(|_| NtStatus::ObjectPathNotFound)?;
                let name = path.file_name().ok_or(NtStatus::InvalidParameter)?;
                let node = if options.directory {
                    vol.mkdir(parent, name, now).map_err(NtStatus::from)?
                } else {
                    vol.create_file(parent, name, now).map_err(NtStatus::from)?
                };
                Ok((node, false, true))
            }
            Err(e) => Err(NtStatus::from(e)),
        }
    }

    // ------------------------------------------------------------------
    // Read / write
    // ------------------------------------------------------------------

    /// Reads `len` bytes at `offset` (or the current byte offset).
    pub fn read(
        &mut self,
        handle: HandleId,
        offset: Option<u64>,
        len: u64,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let _span = self.telemetry.span(Phase::Dispatch, "read", now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        if !h.access.can_read() {
            return OpReply::at(NtStatus::AccessDenied, now);
        }
        let (fo, fcb, volume, node, process, options) =
            (h.fo, h.fcb, h.volume, h.node, h.process, h.options);
        let byte_offset = h.byte_offset;
        let offset = offset.unwrap_or(byte_offset);
        let local = self.ns.is_local(volume);
        let key: FileKey = (volume, node);
        self.metrics.read_dispatches += 1;

        if !local && !self.network_up {
            let end = now + self.latency.irp_cached(0);
            self.metrics.network_failures += 1;
            self.metrics.irp_reads += 1;
            emit_event!(
                self,
                IoEvent {
                    kind: EventKind::Irp(MajorFunction::Read),
                    file_object: fo,
                    fcb,
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset,
                    length: len,
                    transferred: 0,
                    file_size: 0,
                    byte_offset,
                    status: NtStatus::NetworkUnreachable,
                    start: now,
                    end,
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: None,
                    created: false,
                }
            );
            return OpReply::at(NtStatus::NetworkUnreachable, end);
        }

        let file_size = match self.ns.volume(volume).and_then(|v| v.file_size(node)) {
            Ok(s) => s,
            Err(e) => {
                self.metrics.read_stat_failures += 1;
                return OpReply::at(NtStatus::from(e), now);
            }
        };

        if offset >= file_size {
            // §8.4: reads past end-of-file are the only read errors seen.
            let end = now + self.latency.irp_cached(0);
            self.metrics.read_errors += 1;
            self.metrics.irp_reads += 1;
            emit_event!(
                self,
                IoEvent {
                    kind: EventKind::Irp(MajorFunction::Read),
                    file_object: fo,
                    fcb,
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset,
                    length: len,
                    transferred: 0,
                    file_size,
                    byte_offset,
                    status: NtStatus::EndOfFile,
                    start: now,
                    end,
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: None,
                    created: false,
                }
            );
            return OpReply::at(NtStatus::EndOfFile, end);
        }

        // Byte-range locks: another handle's exclusive lock blocks reads.
        let share_key = Self::share_key(volume, node);
        if let Some(t) = self.shares.locks(share_key) {
            if !t.read_allowed(handle, offset, len) {
                self.metrics.lock_conflicts += 1;
                self.metrics.read_lock_conflicts += 1;
                let end = now + self.latency.irp_cached(0);
                return OpReply::at(NtStatus::FileLockConflict, end);
            }
        }
        let transferred = len.min(file_size - offset);
        let _ = self
            .ns
            .volume_mut(volume)
            .and_then(|v| v.note_read(node, now));

        if options.no_intermediate_buffering {
            // §9: caching disabled at open; everything takes the IRP path
            // straight to the disk.
            let end = self
                .latency
                .disk_io(volume.0 as usize, transferred, now, &mut self.rng);
            self.metrics.irp_reads += 1;
            self.metrics.bytes_read += transferred;
            self.emit_read_event(
                EventKind::Irp(MajorFunction::Read),
                fo,
                fcb,
                process,
                volume,
                local,
                false,
                false,
                offset,
                len,
                transferred,
                file_size,
                byte_offset,
                now,
                end,
            );
            self.advance_offset(handle, offset + transferred);
            return OpReply {
                status: NtStatus::Success,
                transferred,
                end,
            };
        }

        let was_cached = self.cache.is_cached(&key);
        let outcome = self
            .cache
            .read(&key, offset, len, file_size, Self::hints_for(options));
        self.metrics.cached_read_requested_bytes += transferred;

        // NTFS compression: half the bytes move on the disk, and every
        // cache copy pays a decompression penalty (the follow-up traces
        // the paper mentions looked at exactly these reads).
        let compressed = self.is_compressed(volume, node);

        // Issue background read-ahead regardless of path.
        let mut demand_done = now;
        for io in &outcome.ios {
            let disk_bytes = if compressed { io.len / 2 } else { io.len };
            let done = self
                .latency
                .disk_io(volume.0 as usize, disk_bytes, now, &mut self.rng);
            self.metrics.paging_reads += 1;
            self.metrics.paging_read_bytes += io.len;
            self.emit_read_event(
                EventKind::Irp(MajorFunction::Read),
                fo,
                fcb,
                process,
                volume,
                local,
                true,
                io.readahead,
                io.offset,
                io.len,
                io.len,
                file_size,
                byte_offset,
                now,
                done,
            );
            if io.readahead && was_cached {
                // Run-length-triggered read-ahead streams in the
                // background; pages appear when the disk delivers them.
                self.schedule(
                    done,
                    Pending::RaComplete {
                        key,
                        offset: io.offset,
                        len: io.len,
                    },
                );
            } else {
                // Demand misses, and the caching-initiation prefetch: the
                // first IRP read blocks until the read-ahead unit is in
                // the cache (§9.1's "single prefetch" behaviour).
                self.cache.complete_paging_read(&key, io.offset, io.len);
                demand_done = demand_done.max(done);
            }
        }

        let (kind, end) = if was_cached && outcome.hit && !self.config.disable_fastio {
            // §10: data directly from the cache through the FastIO path;
            // compressed files ride the ReadCompressed entry point and
            // pay the decompression cost.
            self.metrics.fastio_reads += 1;
            if compressed {
                (
                    EventKind::FastIo(FastIoKind::ReadCompressed),
                    now + self.latency.fastio_copy(transferred) * 2,
                )
            } else {
                (
                    EventKind::FastIo(FastIoKind::Read),
                    now + self.latency.fastio_copy(transferred),
                )
            }
        } else {
            // First read (caching initiation) or a miss the FastIO attempt
            // bounced back to the IRP path.
            self.metrics.irp_reads += 1;
            let end = if outcome.hit {
                now + self.latency.irp_cached(transferred)
            } else {
                demand_done + self.latency.fastio_copy(transferred)
            };
            (EventKind::Irp(MajorFunction::Read), end)
        };
        self.metrics.bytes_read += transferred;
        self.emit_read_event(
            kind,
            fo,
            fcb,
            process,
            volume,
            local,
            false,
            false,
            offset,
            len,
            transferred,
            file_size,
            byte_offset,
            now,
            end,
        );
        self.advance_offset(handle, offset + transferred);
        OpReply {
            status: NtStatus::Success,
            transferred,
            end,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_read_event(
        &mut self,
        kind: EventKind,
        fo: FileObjectId,
        fcb: FcbId,
        process: ProcessId,
        volume: VolumeId,
        local: bool,
        paging: bool,
        readahead: bool,
        offset: u64,
        length: u64,
        transferred: u64,
        file_size: u64,
        byte_offset: u64,
        start: SimTime,
        end: SimTime,
    ) {
        emit_event!(
            self,
            IoEvent {
                kind,
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: paging,
                readahead,
                offset,
                length,
                transferred,
                file_size,
                byte_offset,
                status: NtStatus::Success,
                start,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
    }

    fn advance_offset(&mut self, handle: HandleId, new_offset: u64) {
        if let Some(h) = self.handles.get_mut(&handle.0) {
            h.byte_offset = new_offset;
        }
    }

    /// Writes `len` bytes at `offset` (or the current byte offset).
    pub fn write(
        &mut self,
        handle: HandleId,
        offset: Option<u64>,
        len: u64,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let _span = self.telemetry.span(Phase::Dispatch, "write", now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        if !h.access.can_write() {
            return OpReply::at(NtStatus::AccessDenied, now);
        }
        let (fo, fcb, volume, node, process, options) =
            (h.fo, h.fcb, h.volume, h.node, h.process, h.options);
        let byte_offset = h.byte_offset;
        let offset = offset.unwrap_or(byte_offset);
        let local = self.ns.is_local(volume);
        let key: FileKey = (volume, node);
        self.metrics.write_dispatches += 1;

        if !local && !self.network_up {
            let end = now + self.latency.irp_cached(0);
            self.metrics.network_failures += 1;
            self.metrics.irp_writes += 1;
            emit_event!(
                self,
                IoEvent {
                    kind: EventKind::Irp(MajorFunction::Write),
                    file_object: fo,
                    fcb,
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset,
                    length: len,
                    transferred: 0,
                    file_size: 0,
                    byte_offset,
                    status: NtStatus::NetworkUnreachable,
                    start: now,
                    end,
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: None,
                    created: false,
                }
            );
            return OpReply::at(NtStatus::NetworkUnreachable, end);
        }

        // Byte-range locks: any other handle's overlapping lock blocks
        // writes.
        let share_key = Self::share_key(volume, node);
        if let Some(t) = self.shares.locks(share_key) {
            if !t.write_allowed(handle, offset, len) {
                self.metrics.lock_conflicts += 1;
                self.metrics.write_lock_conflicts += 1;
                let end = now + self.latency.irp_cached(0);
                return OpReply::at(NtStatus::FileLockConflict, end);
            }
        }
        // Extend the file; disk-full is the only write failure mode and
        // the study saw none (workloads stay within capacity).
        if let Err(e) = self
            .ns
            .volume_mut(volume)
            .and_then(|v| v.note_write(node, offset, len, now))
        {
            self.metrics.write_stat_failures += 1;
            let end = now + self.latency.irp_cached(0);
            return OpReply::at(NtStatus::from(e), end);
        }
        if let Some(fcb_entry) = self.fcbs.get_mut(fcb) {
            fcb_entry.written = true;
        }
        let file_size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);

        if options.no_intermediate_buffering {
            let end = self
                .latency
                .disk_io(volume.0 as usize, len, now, &mut self.rng);
            self.metrics.irp_writes += 1;
            self.metrics.bytes_written += len;
            self.emit_write_event(
                EventKind::Irp(MajorFunction::Write),
                fo,
                fcb,
                process,
                volume,
                local,
                false,
                offset,
                len,
                file_size,
                byte_offset,
                now,
                end,
            );
            self.advance_offset(handle, offset + len);
            return OpReply {
                status: NtStatus::Success,
                transferred: len,
                end,
            };
        }

        let was_cached = self.cache.is_cached(&key);
        let outcome = self
            .cache
            .write(&key, offset, len, file_size, Self::hints_for(options));

        // Write-through paging writes go to disk now; the request waits.
        let mut forced_done = now;
        for io in &outcome.ios {
            let done = self
                .latency
                .disk_io(volume.0 as usize, io.len, now, &mut self.rng);
            forced_done = forced_done.max(done);
            self.metrics.paging_writes += 1;
            self.metrics.paging_write_bytes += io.len;
            self.emit_write_event(
                EventKind::Irp(MajorFunction::Write),
                fo,
                fcb,
                process,
                volume,
                local,
                true,
                io.offset,
                io.len,
                file_size,
                byte_offset,
                now,
                done,
            );
        }

        let compressed = self.is_compressed(volume, node);
        let (kind, end) = if was_cached && outcome.ios.is_empty() && !self.config.disable_fastio {
            // §10: 96 % of writes ride FastIO into the cache; compressed
            // files pay the compression cost on the WriteCompressed path.
            self.metrics.fastio_writes += 1;
            if compressed {
                (
                    EventKind::FastIo(FastIoKind::WriteCompressed),
                    now + self.latency.fastio_copy(len) * 2,
                )
            } else {
                (
                    EventKind::FastIo(FastIoKind::Write),
                    now + self.latency.fastio_copy(len),
                )
            }
        } else {
            self.metrics.irp_writes += 1;
            let end = if outcome.ios.is_empty() {
                now + self.latency.irp_cached(len)
            } else {
                forced_done
            };
            (EventKind::Irp(MajorFunction::Write), end)
        };
        self.metrics.bytes_written += len;
        self.emit_write_event(
            kind,
            fo,
            fcb,
            process,
            volume,
            local,
            false,
            offset,
            len,
            file_size,
            byte_offset,
            now,
            end,
        );
        self.advance_offset(handle, offset + len);
        OpReply {
            status: NtStatus::Success,
            transferred: len,
            end,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_write_event(
        &mut self,
        kind: EventKind,
        fo: FileObjectId,
        fcb: FcbId,
        process: ProcessId,
        volume: VolumeId,
        local: bool,
        paging: bool,
        offset: u64,
        length: u64,
        file_size: u64,
        byte_offset: u64,
        start: SimTime,
        end: SimTime,
    ) {
        emit_event!(
            self,
            IoEvent {
                kind,
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: paging,
                readahead: false,
                offset,
                length,
                transferred: length,
                file_size,
                byte_offset,
                status: NtStatus::Success,
                start,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
    }

    // ------------------------------------------------------------------
    // Control, query, directory
    // ------------------------------------------------------------------

    /// FlushFileBuffers: forces the file's dirty pages to disk (§9.2 — the
    /// dominant explicit strategy was flushing after every write).
    pub fn flush(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.pump(now);
        let _span = self.telemetry.span(Phase::Dispatch, "flush", now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (fo, fcb, volume, node, process) = (h.fo, h.fcb, h.volume, h.node, h.process);
        let local = self.ns.is_local(volume);
        let key: FileKey = (volume, node);
        let ios = self.cache.flush(&key);
        let mut end = now + self.latency.metadata_op();
        let file_size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);
        for io in &ios {
            let done = self
                .latency
                .disk_io(volume.0 as usize, io.len, now, &mut self.rng);
            end = end.max(done);
            self.metrics.paging_writes += 1;
            self.metrics.paging_write_bytes += io.len;
            self.emit_write_event(
                EventKind::Irp(MajorFunction::Write),
                fo,
                fcb,
                process,
                volume,
                local,
                true,
                io.offset,
                io.len,
                file_size,
                0,
                now,
                done,
            );
        }
        self.metrics.control_ops += 1;
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::Irp(MajorFunction::FlushBuffers),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size,
                byte_offset: 0,
                status: NtStatus::Success,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        OpReply::at(NtStatus::Success, end)
    }

    /// Generic metadata operation helper (query information, set basic
    /// information, volume queries, FSCTLs). `ok` decides the §8.4
    /// control-failure accounting.
    fn metadata_irp(
        &mut self,
        kind: EventKind,
        handle: Option<HandleId>,
        set_info: Option<SetInfoKind>,
        status: NtStatus,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let (fo, fcb, volume, process) = match handle.and_then(|h| self.handles.get(&h.0)) {
            Some(h) => (h.fo, h.fcb, h.volume, h.process),
            None => (FileObjectId(0), FcbId(u64::MAX), VolumeId(0), ProcessId(0)),
        };
        let local = self.ns.is_local(volume);
        let end = now + self.latency.metadata_op();
        self.metrics.control_ops += 1;
        if status.is_error() {
            self.metrics.control_failures += 1;
        }
        emit_event!(
            self,
            IoEvent {
                kind,
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size: 0,
                byte_offset: 0,
                status,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info,
                created: false,
            }
        );
        OpReply::at(status, end)
    }

    /// IRP_MJ_QUERY_INFORMATION on an open handle (attributes, sizes).
    pub fn query_information(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        let ok = self.handles.contains_key(&handle.0);
        self.metadata_irp(
            EventKind::Irp(MajorFunction::QueryInformation),
            ok.then_some(handle),
            None,
            if ok {
                NtStatus::Success
            } else {
                NtStatus::InvalidHandle
            },
            now,
        )
    }

    /// FastIO QueryBasicInfo — the procedural metadata path the Win32
    /// GetFileAttributes family rides when the file is already open.
    pub fn fast_query_basic(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.pump(now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (fo, fcb, volume, process) = (h.fo, h.fcb, h.volume, h.process);
        let local = self.ns.is_local(volume);
        let end = now + self.latency.fastio_metadata();
        self.metrics.control_ops += 1;
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::FastIo(FastIoKind::QueryBasicInfo),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size: 0,
                byte_offset: 0,
                status: NtStatus::Success,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        OpReply::at(NtStatus::Success, end)
    }

    /// The "is volume mounted" FSCTL — §8.3: issued by the Win32 runtime
    /// during name validation, up to 40 times a second on a busy system.
    pub fn is_volume_mounted(
        &mut self,
        process: ProcessId,
        volume: VolumeId,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let local = self.ns.is_local(volume);
        let end = now + self.latency.fastio_metadata();
        self.metrics.control_ops += 1;
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::Irp(MajorFunction::FileSystemControl),
                file_object: FileObjectId(0),
                fcb: FcbId(u64::MAX),
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size: 0,
                byte_offset: 0,
                status: NtStatus::Success,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        OpReply::at(NtStatus::Success, end)
    }

    /// IRP_MJ_QUERY_VOLUME_INFORMATION — the free-space check
    /// applications run before large writes.
    pub fn query_volume_information(
        &mut self,
        process: ProcessId,
        volume: VolumeId,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let status = match self.ns.volume(volume) {
            Ok(_) => NtStatus::Success,
            Err(e) => NtStatus::from(e),
        };
        let local = self.ns.is_local(volume);
        let end = now + self.latency.metadata_op();
        self.metrics.control_ops += 1;
        if status.is_error() {
            self.metrics.control_failures += 1;
        }
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::Irp(MajorFunction::QueryVolumeInformation),
                file_object: FileObjectId(0),
                fcb: FcbId(u64::MAX),
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size: 0,
                byte_offset: 0,
                status,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        OpReply::at(status, end)
    }

    /// The free bytes remaining on a volume (what the query reports).
    pub fn volume_free_bytes(&self, volume: VolumeId) -> u64 {
        self.ns
            .volume(volume)
            .map(|v| {
                let s = v.stats();
                s.capacity.saturating_sub(s.allocated_bytes)
            })
            .unwrap_or(0)
    }

    /// An unsupported device control — a §8.4 control failure.
    pub fn invalid_control(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.metadata_irp(
            EventKind::Irp(MajorFunction::DeviceControl),
            Some(handle),
            None,
            NtStatus::InvalidDeviceRequest,
            now,
        )
    }

    /// SetEndOfFile (IRP_MJ_SET_INFORMATION / FileEndOfFileInformation).
    pub fn set_end_of_file(&mut self, handle: HandleId, size: u64, now: SimTime) -> OpReply {
        self.pump(now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (volume, node) = (h.volume, h.node);
        let status = match self
            .ns
            .volume_mut(volume)
            .and_then(|v| v.set_file_size(node, size, now))
        {
            Ok(()) => NtStatus::Success,
            Err(e) => NtStatus::from(e),
        };
        self.metadata_irp(
            EventKind::Irp(MajorFunction::SetInformation),
            Some(handle),
            Some(SetInfoKind::EndOfFile),
            status,
            now,
        )
    }

    /// Marks the file delete-on-close (FileDispositionInformation) — the
    /// §6.3 explicit-delete path used by Win32 DeleteFile.
    pub fn set_delete_disposition(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.pump(now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (volume, node, fcb) = (h.volume, h.node, h.fcb);
        let status = match self
            .ns
            .volume_mut(volume)
            .and_then(|v| v.set_delete_pending(node, true))
        {
            Ok(()) => {
                if let Some(f) = self.fcbs.get_mut(fcb) {
                    f.delete_pending = true;
                }
                NtStatus::Success
            }
            Err(e) => NtStatus::from(e),
        };
        self.metadata_irp(
            EventKind::Irp(MajorFunction::SetInformation),
            Some(handle),
            Some(SetInfoKind::Disposition),
            status,
            now,
        )
    }

    /// Renames the file (FileRenameInformation).
    pub fn rename(&mut self, handle: HandleId, new_path: &NtPath, now: SimTime) -> OpReply {
        self.pump(now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (volume, node) = (h.volume, h.node);
        let old_parent = self.parent_of(volume, node);
        let mut new_parent = None;
        let status = (|| -> Result<(), NtStatus> {
            let vol = self.ns.volume_mut(volume).map_err(NtStatus::from)?;
            let parent = vol
                .lookup(&new_path.parent())
                .map_err(|_| NtStatus::ObjectPathNotFound)?;
            let name = new_path.file_name().ok_or(NtStatus::InvalidParameter)?;
            vol.rename(node, parent, name, now)
                .map_err(NtStatus::from)?;
            new_parent = Some(parent);
            Ok(())
        })()
        .err()
        .unwrap_or(NtStatus::Success);
        if status.is_success() {
            if let Some(p) = old_parent {
                self.fire_watches(volume, p, now);
            }
            if let Some(p) = new_parent.filter(|p| old_parent != Some(*p)) {
                self.fire_watches(volume, p, now);
            }
        }
        self.metadata_irp(
            EventKind::Irp(MajorFunction::SetInformation),
            Some(handle),
            Some(SetInfoKind::Rename),
            status,
            now,
        )
    }

    /// Sets timestamps/attributes (FileBasicInformation) — what installers
    /// use to back-date creation times (§5).
    pub fn set_basic_information(
        &mut self,
        handle: HandleId,
        times: FileTimes,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (volume, node) = (h.volume, h.node);
        let status = match self
            .ns
            .volume_mut(volume)
            .and_then(|v| v.set_times(node, times))
        {
            Ok(()) => NtStatus::Success,
            Err(e) => NtStatus::from(e),
        };
        self.metadata_irp(
            EventKind::Irp(MajorFunction::SetInformation),
            Some(handle),
            Some(SetInfoKind::Basic),
            status,
            now,
        )
    }

    /// Directory enumeration (IRP_MJ_DIRECTORY_CONTROL / QueryDirectory).
    /// Returns up to `batch` entries per call; NoMoreFiles terminates.
    pub fn query_directory(&mut self, handle: HandleId, batch: usize, now: SimTime) -> OpReply {
        self.pump(now);
        let _span = self.telemetry.span(Phase::Dispatch, "query_directory", now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (fo, fcb, volume, node, process, cursor) =
            (h.fo, h.fcb, h.volume, h.node, h.process, h.dir_cursor);
        let local = self.ns.is_local(volume);
        let entries = match self.ns.volume(volume).and_then(|v| v.read_dir(node)) {
            Ok(e) => e,
            Err(e) => {
                return self.metadata_irp(
                    EventKind::Irp(MajorFunction::DirectoryControl),
                    Some(handle),
                    None,
                    NtStatus::from(e),
                    now,
                )
            }
        };
        let remaining = entries.len().saturating_sub(cursor);
        let returned = remaining.min(batch.max(1));
        let status = if returned == 0 {
            NtStatus::NoMoreFiles
        } else {
            NtStatus::Success
        };
        if let Some(h) = self.handles.get_mut(&handle.0) {
            h.dir_cursor += returned;
        }
        let end = now + self.latency.metadata_op();
        self.metrics.control_ops += 1;
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::Irp(MajorFunction::DirectoryControl),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: cursor as u64,
                length: batch as u64,
                transferred: returned as u64,
                file_size: entries.len() as u64,
                byte_offset: 0,
                status,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        OpReply {
            status,
            transferred: returned as u64,
            end,
        }
    }

    // ------------------------------------------------------------------
    // Directory change notification
    // ------------------------------------------------------------------

    /// Registers a change-notification IRP on an open directory handle
    /// (FindFirstChangeNotification). The IRP stays pended; it completes
    /// — and appears in the trace with its full waiting time as latency —
    /// when something changes in the directory. One-shot: applications
    /// re-arm after each notification.
    pub fn watch_directory(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.pump(now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let is_dir = self
            .ns
            .volume(h.volume)
            .ok()
            .and_then(|v| v.node(h.node).ok())
            .map(|n| n.kind.is_directory())
            .unwrap_or(false);
        if !is_dir {
            return self.metadata_irp(
                EventKind::Irp(MajorFunction::DirectoryControl),
                Some(handle),
                None,
                NtStatus::NotADirectory,
                now,
            );
        }
        let key: FileKey = (h.volume, h.node);
        let entry = (handle, h.fo, h.fcb, h.process, now);
        let waiters = self.watches.entry(key).or_default();
        // Re-arming an already-pending watch is a no-op (the application
        // keeps one notification outstanding per handle).
        if !waiters.iter().any(|(wh, ..)| *wh == handle) {
            waiters.push(entry);
        }
        // The request pends: nothing completes yet, so the reply returns
        // control to the caller immediately.
        OpReply::at(NtStatus::Success, now + self.latency.fastio_metadata())
    }

    /// Completes any change-notification IRPs watching `dir`.
    fn fire_watches(&mut self, volume: VolumeId, dir: NodeId, now: SimTime) {
        let Some(waiters) = self.watches.remove(&(volume, dir)) else {
            return;
        };
        let local = self.ns.is_local(volume);
        for (_, fo, fcb, process, registered) in waiters {
            self.metrics.control_ops += 1;
            emit_event!(
                self,
                IoEvent {
                    kind: EventKind::Irp(MajorFunction::DirectoryControl),
                    file_object: fo,
                    fcb,
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset: 0,
                    length: 0,
                    transferred: 1,
                    file_size: 0,
                    byte_offset: 0,
                    status: NtStatus::Success,
                    start: registered,
                    end: now,
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: None,
                    created: false,
                }
            );
        }
    }

    /// Drops a handle's pending watches (handle cleanup).
    fn cancel_watches(&mut self, handle: HandleId) {
        for waiters in self.watches.values_mut() {
            waiters.retain(|(h, ..)| *h != handle);
        }
        self.watches.retain(|_, v| !v.is_empty());
    }

    // ------------------------------------------------------------------
    // Byte-range locks (FastIoLock / FastIoUnlockSingle)
    // ------------------------------------------------------------------

    fn lock_event(
        &mut self,
        kind: FastIoKind,
        handle: HandleId,
        offset: u64,
        len: u64,
        status: NtStatus,
        now: SimTime,
    ) -> OpReply {
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (fo, fcb, volume, process) = (h.fo, h.fcb, h.volume, h.process);
        let local = self.ns.is_local(volume);
        let end = now + self.latency.fastio_metadata();
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::FastIo(kind),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset,
                length: len,
                transferred: 0,
                file_size: 0,
                byte_offset: 0,
                status,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        OpReply::at(status, end)
    }

    /// Takes a byte-range lock on the current handle's file.
    pub fn lock(
        &mut self,
        handle: HandleId,
        offset: u64,
        len: u64,
        exclusive: bool,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let key = Self::share_key(h.volume, h.node);
        let granted = self
            .shares
            .locks_mut(key)
            .lock(handle, offset, len, exclusive);
        if granted {
            self.metrics.locks_granted += 1;
        } else {
            self.metrics.lock_conflicts += 1;
        }
        let status = if granted {
            NtStatus::Success
        } else {
            NtStatus::FileLockConflict
        };
        self.lock_event(FastIoKind::Lock, handle, offset, len, status, now)
    }

    /// Releases a byte-range lock.
    pub fn unlock(&mut self, handle: HandleId, offset: u64, len: u64, now: SimTime) -> OpReply {
        self.pump(now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let key = Self::share_key(h.volume, h.node);
        let ok = self.shares.locks_mut(key).unlock(handle, offset, len);
        let status = if ok {
            NtStatus::Success
        } else {
            NtStatus::InvalidParameter
        };
        self.lock_event(FastIoKind::UnlockSingle, handle, offset, len, status, now)
    }

    // ------------------------------------------------------------------
    // Memory-mapped access (§3.3)
    // ------------------------------------------------------------------

    /// Loads an executable image through a section: create, section
    /// acquire, paging reads (or a warm standby hit), handle close. The
    /// image stays resident after [`Machine::unload_image`] per §3.3.
    pub fn load_image(
        &mut self,
        process: ProcessId,
        volume: VolumeId,
        path: &NtPath,
        now: SimTime,
    ) -> OpReply {
        let _span = self.telemetry.span(Phase::Dispatch, "load_image", now);
        let (reply, handle) = self.create(
            process,
            volume,
            path,
            AccessMode::Read,
            Disposition::Open,
            CreateOptions::default(),
            now,
        );
        let Some(handle) = handle else {
            return reply;
        };
        let h = self.handles.get(&handle.0).expect("just created");
        let (fo, fcb, node) = (h.fo, h.fcb, h.node);
        let local = self.ns.is_local(volume);
        let key: FileKey = (volume, node);
        let size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);

        let t = reply.end;
        // Section acquisition rides FastIO.
        let acq_end = t + self.latency.fastio_metadata();
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::FastIo(FastIoKind::AcquireFileForNtCreateSection),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size: size,
                byte_offset: 0,
                status: NtStatus::Success,
                start: t,
                end: acq_end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        let reads = self.vm.load_image(&key, size, acq_end);
        let mut done = acq_end;
        for r in &reads {
            let fin = self
                .latency
                .disk_io(volume.0 as usize, r.len, acq_end, &mut self.rng);
            done = done.max(fin);
            self.metrics.paging_reads += 1;
            self.metrics.paging_read_bytes += r.len;
            self.emit_read_event(
                EventKind::Irp(MajorFunction::Read),
                fo,
                fcb,
                process,
                volume,
                local,
                true,
                false,
                r.offset,
                r.len,
                r.len,
                size,
                0,
                acq_end,
                fin,
            );
        }
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::FastIo(FastIoKind::ReleaseFileForNtCreateSection),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size: size,
                byte_offset: 0,
                status: NtStatus::Success,
                start: done,
                end: done + self.latency.fastio_metadata(),
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        let close = self.close(handle, done + self.latency.fastio_metadata());
        OpReply {
            status: NtStatus::Success,
            transferred: size,
            end: close.end,
        }
    }

    /// Releases a process's reference on an image section; the pages stay
    /// on the standby list.
    pub fn unload_image(&mut self, volume: VolumeId, path: &NtPath) {
        if let Ok(fr) = self.ns.resolve(volume, path) {
            self.vm.unmap(&(fr.volume, fr.node));
        }
    }

    /// Maps an open file as a data section (scientific codes, §6.1).
    pub fn map_file(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.pump(now);
        let Some(h) = self.handles.get_mut(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        h.mapped = true;
        let (volume, node) = (h.volume, h.node);
        let size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);
        self.vm.map(&(volume, node), SectionKind::Data, size, now);
        OpReply::at(NtStatus::Success, now + self.latency.fastio_metadata())
    }

    /// Touches a mapped range; page faults become paging reads (§3.3).
    pub fn mapped_read(
        &mut self,
        handle: HandleId,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> OpReply {
        self.pump(now);
        let _span = self.telemetry.span(Phase::Dispatch, "mapped_read", now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (fo, fcb, volume, node, process) = (h.fo, h.fcb, h.volume, h.node, h.process);
        let local = self.ns.is_local(volume);
        let key: FileKey = (volume, node);
        let size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);
        let reads = self.vm.fault(&key, offset, len, now);
        let mut end = now + SimDuration::from_micros(1);
        for r in &reads {
            let fin = self
                .latency
                .disk_io(volume.0 as usize, r.len, now, &mut self.rng);
            end = end.max(fin);
            self.metrics.paging_reads += 1;
            self.metrics.paging_read_bytes += r.len;
            self.emit_read_event(
                EventKind::Irp(MajorFunction::Read),
                fo,
                fcb,
                process,
                volume,
                local,
                true,
                false,
                r.offset,
                r.len,
                r.len,
                size,
                0,
                now,
                fin,
            );
        }
        self.metrics.bytes_read += len.min(size.saturating_sub(offset));
        OpReply {
            status: NtStatus::Success,
            transferred: len.min(size.saturating_sub(offset)),
            end,
        }
    }

    // ------------------------------------------------------------------
    // MDL (zero-copy) interface — §10's closing observation
    // ------------------------------------------------------------------

    /// An MDL read: the caller is handed a memory descriptor list over
    /// the cache pages instead of a copy. §10: "the cache manager has
    /// functionality to avoid a copy of the data through a direct memory
    /// interface … we observed that only kernel-based services use this
    /// functionality" — in this model, the CIFS server serving remote
    /// clients.
    pub fn mdl_read(&mut self, handle: HandleId, offset: u64, len: u64, now: SimTime) -> OpReply {
        self.pump(now);
        let _span = self.telemetry.span(Phase::Dispatch, "mdl_read", now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        if !h.access.can_read() {
            return OpReply::at(NtStatus::AccessDenied, now);
        }
        let (fo, fcb, volume, node, process, options) =
            (h.fo, h.fcb, h.volume, h.node, h.process, h.options);
        let local = self.ns.is_local(volume);
        let key: FileKey = (volume, node);
        let file_size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);
        if offset >= file_size {
            let end = now + self.latency.fastio_metadata();
            return OpReply::at(NtStatus::EndOfFile, end);
        }
        self.metrics.read_dispatches += 1;
        let transferred = len.min(file_size - offset);
        // The pages must be resident; misses page in like any read.
        let outcome = self
            .cache
            .read(&key, offset, len, file_size, Self::hints_for(options));
        self.metrics.cached_read_requested_bytes += transferred;
        let mut done = now;
        for io in &outcome.ios {
            let fin = self
                .latency
                .disk_io(volume.0 as usize, io.len, now, &mut self.rng);
            self.metrics.paging_reads += 1;
            self.metrics.paging_read_bytes += io.len;
            self.cache.complete_paging_read(&key, io.offset, io.len);
            done = done.max(fin);
            self.emit_read_event(
                EventKind::Irp(MajorFunction::Read),
                fo,
                fcb,
                process,
                volume,
                local,
                true,
                io.readahead,
                io.offset,
                io.len,
                io.len,
                file_size,
                0,
                now,
                fin,
            );
        }
        // No copy: only the descriptor setup cost.
        let end = done + self.latency.fastio_metadata();
        self.metrics.fastio_reads += 1;
        self.metrics.bytes_read += transferred;
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::FastIo(FastIoKind::MdlRead),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset,
                length: len,
                transferred,
                file_size,
                byte_offset: 0,
                status: NtStatus::Success,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        // The caller releases the MDL when done.
        let rel = end + self.latency.fastio_metadata();
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::FastIo(FastIoKind::MdlReadComplete),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset,
                length: len,
                transferred,
                file_size,
                byte_offset: 0,
                status: NtStatus::Success,
                start: end,
                end: rel,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );
        OpReply {
            status: NtStatus::Success,
            transferred,
            end: rel,
        }
    }

    /// An MDL write: the caller fills cache pages directly
    /// (PrepareMdlWrite / MdlWriteComplete).
    pub fn mdl_write(&mut self, handle: HandleId, offset: u64, len: u64, now: SimTime) -> OpReply {
        self.pump(now);
        let _span = self.telemetry.span(Phase::Dispatch, "mdl_write", now);
        let Some(h) = self.handles.get(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        if !h.access.can_write() {
            return OpReply::at(NtStatus::AccessDenied, now);
        }
        let (fo, fcb, volume, node, process, options) =
            (h.fo, h.fcb, h.volume, h.node, h.process, h.options);
        let local = self.ns.is_local(volume);
        let key: FileKey = (volume, node);
        if let Err(e) = self
            .ns
            .volume_mut(volume)
            .and_then(|v| v.note_write(node, offset, len, now))
        {
            return OpReply::at(NtStatus::from(e), now);
        }
        if let Some(f) = self.fcbs.get_mut(fcb) {
            f.written = true;
        }
        self.metrics.write_dispatches += 1;
        let file_size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);
        let outcome = self
            .cache
            .write(&key, offset, len, file_size, Self::hints_for(options));
        let mut done = now;
        for io in &outcome.ios {
            let fin = self
                .latency
                .disk_io(volume.0 as usize, io.len, now, &mut self.rng);
            self.metrics.paging_writes += 1;
            self.metrics.paging_write_bytes += io.len;
            done = done.max(fin);
            self.emit_write_event(
                EventKind::Irp(MajorFunction::Write),
                fo,
                fcb,
                process,
                volume,
                local,
                true,
                io.offset,
                io.len,
                file_size,
                0,
                now,
                fin,
            );
        }
        let end = done + self.latency.fastio_metadata();
        self.metrics.fastio_writes += 1;
        self.metrics.bytes_written += len;
        for (kind, s, e) in [
            (FastIoKind::PrepareMdlWrite, now, end),
            (
                FastIoKind::MdlWriteComplete,
                end,
                end + self.latency.fastio_metadata(),
            ),
        ] {
            emit_event!(
                self,
                IoEvent {
                    kind: EventKind::FastIo(kind),
                    file_object: fo,
                    fcb,
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset,
                    length: len,
                    transferred: len,
                    file_size,
                    byte_offset: 0,
                    status: NtStatus::Success,
                    start: s,
                    end: e,
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: None,
                    created: false,
                }
            );
        }
        OpReply {
            status: NtStatus::Success,
            transferred: len,
            end: end + self.latency.fastio_metadata(),
        }
    }

    // ------------------------------------------------------------------
    // Close (two-stage, §8.1)
    // ------------------------------------------------------------------

    /// Closes a handle: emits the cleanup IRP now; the close IRP follows
    /// 4–10 µs later for read-cached files, or after the lazy writer
    /// drains the dirty pages (1–4 s) for write-cached ones.
    pub fn close(&mut self, handle: HandleId, now: SimTime) -> OpReply {
        self.pump(now);
        let _span = self.telemetry.span(Phase::Dispatch, "close", now);
        let Some(h) = self.handles.remove(&handle.0) else {
            return OpReply::at(NtStatus::InvalidHandle, now);
        };
        let (fo, fcb, volume, node, process, options) =
            (h.fo, h.fcb, h.volume, h.node, h.process, h.options);
        if h.mapped {
            self.vm.unmap(&(volume, node));
        }
        self.cancel_watches(handle);
        let local = self.ns.is_local(volume);
        let key: FileKey = (volume, node);
        let file_size = self
            .ns
            .volume(volume)
            .ok()
            .and_then(|v| v.file_size(node).ok())
            .unwrap_or(0);

        let end = now + self.latency.metadata_op();
        self.metrics.cleanups += 1;
        emit_event!(
            self,
            IoEvent {
                kind: EventKind::Irp(MajorFunction::Cleanup),
                file_object: fo,
                fcb,
                process,
                volume: volume.0,
                local,
                paging_io: false,
                readahead: false,
                offset: 0,
                length: 0,
                transferred: 0,
                file_size,
                byte_offset: h.byte_offset,
                status: NtStatus::Success,
                start: now,
                end,
                access: None,
                disposition: None,
                options: None,
                set_info: None,
                created: false,
            }
        );

        // Release byte-range locks and the share registration with the
        // cleanup, as NT does; held locks produce an UnlockAll call.
        let share_key = Self::share_key(volume, node);
        let dropped = self.shares.locks_mut(share_key).unlock_all(handle);
        if dropped > 0 {
            emit_event!(
                self,
                IoEvent {
                    kind: EventKind::FastIo(FastIoKind::UnlockAll),
                    file_object: fo,
                    fcb,
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset: 0,
                    length: dropped as u64,
                    transferred: 0,
                    file_size,
                    byte_offset: 0,
                    status: NtStatus::Success,
                    start: now,
                    end: now + self.latency.fastio_metadata(),
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: None,
                    created: false,
                }
            );
        }
        self.shares.close(share_key, handle);

        let last_handle = self.fcbs.cleanup(fcb);
        if !last_handle {
            // Other handles remain: the file object closes quickly, the
            // FCB stays.
            self.schedule(
                end + self.config.cache.clean_close_delay,
                Pending::CloseIrp {
                    fo,
                    fcb,
                    volume,
                    node,
                    process,
                },
            );
            return OpReply::at(NtStatus::Success, end);
        }

        let deleting = options.delete_on_close
            || options.temporary
            || self
                .fcbs
                .get(fcb)
                .map(|f| f.delete_pending)
                .unwrap_or(false);

        if deleting {
            // §6.3: unwritten dirty pages may still be in the cache.
            self.release_deferred(key, end);
            self.cache.purge(&key);
            self.vm.purge(&key);
            let parent = self.parent_of(volume, node);
            let _ = self.ns.volume_mut(volume).and_then(|v| v.remove(node, now));
            if let Some(parent) = parent {
                self.fire_watches(volume, parent, now);
            }
            if options.temporary || options.delete_on_close {
                self.metrics.delete_on_close += 1;
            } else {
                self.metrics.explicit_deletes += 1;
            }
            self.schedule(
                end + self.config.cache.clean_close_delay,
                Pending::CloseIrp {
                    fo,
                    fcb,
                    volume,
                    node,
                    process,
                },
            );
            return OpReply::at(NtStatus::Success, end);
        }

        let outcome = self.cache.cleanup(&key, file_size);
        if outcome.set_end_of_file.is_some() {
            // §8.3: the cache manager trims page-granular lazy writes back
            // to the true end of file before close.
            let se = end + SimDuration::from_ticks(self.latency.params().metadata_ticks);
            emit_event!(
                self,
                IoEvent {
                    kind: EventKind::Irp(MajorFunction::SetInformation),
                    file_object: fo,
                    fcb,
                    process,
                    volume: volume.0,
                    local,
                    paging_io: false,
                    readahead: false,
                    offset: file_size,
                    length: 0,
                    transferred: 0,
                    file_size,
                    byte_offset: 0,
                    status: NtStatus::Success,
                    start: end,
                    end: se,
                    access: None,
                    disposition: None,
                    options: None,
                    set_info: Some(SetInfoKind::EndOfFile),
                    created: false,
                }
            );
            self.metrics.control_ops += 1;
        }
        match outcome.close_after {
            Some(delay) => {
                self.schedule(
                    end + delay,
                    Pending::CloseIrp {
                        fo,
                        fcb,
                        volume,
                        node,
                        process,
                    },
                );
            }
            None => {
                // Close follows the lazy-writer drain (§8.1: 1–4 s).
                self.deferred_close
                    .entry(key)
                    .or_default()
                    .push((fo, fcb, process, end));
            }
        }
        OpReply::at(NtStatus::Success, end)
    }

    // ------------------------------------------------------------------
    // Lazy writer
    // ------------------------------------------------------------------

    /// One lazy-writer scan; call once per second of virtual time.
    ///
    /// Issues the paging writes the cache manager selects, completes any
    /// deferred closes whose dirty data has drained, and trims cold cache
    /// maps back under the memory budget.
    pub fn lazy_tick(&mut self, now: SimTime) {
        self.pump(now);
        let _span = self.telemetry.span(Phase::Dispatch, "lazy_tick", now);
        let (actions, closable) = self.cache.lazy_scan(now);
        for action in actions {
            let (volume, node) = action.key;
            let local = self.ns.is_local(volume);
            let done = self
                .latency
                .disk_io(volume.0 as usize, action.io.len, now, &mut self.rng);
            self.metrics.paging_writes += 1;
            self.metrics.paging_write_bytes += action.io.len;
            let (fo, fcb, process, _) = self
                .deferred_close
                .get(&action.key)
                .and_then(|v| v.last().copied())
                .unwrap_or((FileObjectId(0), FcbId(u64::MAX), ProcessId(4), now));
            let file_size = self
                .ns
                .volume(volume)
                .ok()
                .and_then(|v| v.file_size(node).ok())
                .unwrap_or(0);
            self.emit_write_event(
                EventKind::Irp(MajorFunction::Write),
                fo,
                fcb,
                process,
                volume,
                local,
                true,
                action.io.offset,
                action.io.len,
                file_size,
                0,
                now,
                done,
            );
        }
        for key in closable {
            if let Some(waiters) = self.deferred_close.remove(&key) {
                let (volume, node) = key;
                for (fo, fcb, process, cleaned) in waiters {
                    // Catch-up scans may run with a timestamp before the
                    // cleanup that registered this close; the close IRP
                    // never precedes its cleanup.
                    let at = now.max(cleaned + self.config.cache.clean_close_delay);
                    self.emit_close_irp(fo, fcb, volume, node, process, at);
                }
            }
        }
        // Keep resident cache data within the machine's memory budget by
        // dropping the coldest clean maps (standby-list reclaim).
        self.cache.trim(self.config.cache_budget_bytes);
    }

    /// Number of files whose close is still waiting on the lazy writer.
    pub fn deferred_closes(&self) -> usize {
        self.deferred_close.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::VecObserver;
    use crate::types::ShareMode;

    fn machine() -> (Machine<VecObserver>, VolumeId) {
        let mut m = Machine::new(MachineConfig::default(), VecObserver::default());
        let vol = m.add_local_volume(
            'C',
            VolumeConfig::local_ntfs(1 << 30),
            DiskParams::local_ide(),
        );
        (m, vol)
    }

    const P: ProcessId = ProcessId(7);

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn open_new(m: &mut Machine<VecObserver>, vol: VolumeId, path: &str, at: SimTime) -> HandleId {
        let (reply, h) = m.create(
            P,
            vol,
            &NtPath::parse(path),
            AccessMode::ReadWrite,
            Disposition::OpenIf,
            CreateOptions::default(),
            at,
        );
        assert_eq!(reply.status, NtStatus::Success);
        h.expect("open succeeded")
    }

    #[test]
    fn open_missing_file_fails_not_found() {
        let (mut m, vol) = machine();
        let (reply, h) = m.create(
            P,
            vol,
            &NtPath::parse(r"\missing.txt"),
            AccessMode::Read,
            Disposition::Open,
            CreateOptions::default(),
            t(1),
        );
        assert_eq!(reply.status, NtStatus::ObjectNameNotFound);
        assert!(h.is_none());
        assert_eq!(m.metrics().open_failures, 1);
        let ev = &m.observer().events[0];
        assert_eq!(ev.kind, EventKind::Irp(MajorFunction::Create));
        assert_eq!(ev.status, NtStatus::ObjectNameNotFound);
    }

    #[test]
    fn create_collision_fails() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\a.txt", t(1));
        m.close(h, t(2));
        let (reply, _) = m.create(
            P,
            vol,
            &NtPath::parse(r"\a.txt"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions::default(),
            t(3),
        );
        assert_eq!(reply.status, NtStatus::ObjectNameCollision);
    }

    #[test]
    fn first_read_is_irp_subsequent_are_fastio() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\data.bin", t(1));
        m.write(h, Some(0), 20_000, t(1));
        m.close(h, t(2));
        // Drain the lazy writer so the close completes.
        for s in 3..10 {
            m.lazy_tick(t(s));
        }
        let h = open_new(&mut m, vol, r"\data.bin", t(20));
        let r1 = m.read(h, Some(0), 4_096, t(20));
        assert_eq!(r1.status, NtStatus::Success);
        assert_eq!(r1.transferred, 4_096);
        let r2 = m.read(h, None, 4_096, r1.end + SimDuration::from_millis(1));
        assert_eq!(r2.transferred, 4_096, "sequential read from byte offset");
        let reads: Vec<_> = m
            .observer()
            .events
            .iter()
            .filter(|e| e.kind.is_read() && !e.paging_io)
            .collect();
        assert!(reads.len() >= 2);
        // The cache was still warm from the writes, so even the first read
        // hits; what matters is the split exists and FastIO is used once
        // cached.
        assert!(m.metrics().fastio_reads >= 1, "metrics: {:?}", m.metrics());
    }

    #[test]
    fn cold_read_pays_disk_latency_then_hits() {
        let (mut m, vol) = machine();
        // Build the file directly in the namespace (pre-existing content).
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            let f = v.create_file(root, "big.dat", t(0)).unwrap();
            v.set_file_size(f, 200_000, t(0)).unwrap();
        }
        let h = open_new(&mut m, vol, r"\big.dat", t(1));
        let r1 = m.read(h, Some(0), 4_096, t(1));
        let lat1 = r1.end.saturating_since(t(1));
        assert!(
            lat1 >= SimDuration::from_millis(1),
            "cold read hits the disk, got {lat1}"
        );
        assert_eq!(m.metrics().irp_reads, 1);
        assert!(m.metrics().paging_reads >= 1, "demand paging read issued");
        let t2 = r1.end + SimDuration::from_millis(1);
        let r2 = m.read(h, None, 4_096, t2);
        let lat2 = r2.end.saturating_since(t2);
        assert!(
            lat2 < SimDuration::from_millis(1),
            "warm read is a cache copy, got {lat2}"
        );
        assert_eq!(m.metrics().fastio_reads, 1);
    }

    #[test]
    fn read_past_eof_is_the_only_read_error() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\f.txt", t(1));
        m.write(h, Some(0), 100, t(1));
        let r = m.read(h, Some(500), 100, t(2));
        assert_eq!(r.status, NtStatus::EndOfFile);
        assert_eq!(m.metrics().read_errors, 1);
    }

    #[test]
    fn writes_ride_fastio_once_cached() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\log.txt", t(1));
        m.write(h, Some(0), 512, t(1));
        for i in 1..20u64 {
            m.write(h, None, 512, t(1) + SimDuration::from_micros(100 * i));
        }
        let metrics = m.metrics();
        assert_eq!(metrics.irp_writes, 1, "only the initiating write is IRP");
        assert_eq!(metrics.fastio_writes, 19);
        assert!(
            metrics.fastio_writes as f64 / (metrics.fastio_writes + metrics.irp_writes) as f64
                > 0.9
        );
    }

    #[test]
    fn two_stage_close_clean_file() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\r.txt", t(1));
        m.close(h, t(2));
        m.pump(t(3));
        let kinds: Vec<EventKind> = m.observer().events.iter().map(|e| e.kind).collect();
        let cleanup = kinds
            .iter()
            .position(|k| *k == EventKind::Irp(MajorFunction::Cleanup))
            .expect("cleanup IRP");
        let close = kinds
            .iter()
            .position(|k| *k == EventKind::Irp(MajorFunction::Close))
            .expect("close IRP");
        assert!(close > cleanup);
        let cu = &m.observer().events[cleanup];
        let cl = &m.observer().events[close];
        let gap = cl.start.saturating_since(cu.end);
        assert!(
            gap < SimDuration::from_millis(1),
            "clean close is fast, got {gap}"
        );
    }

    #[test]
    fn dirty_file_close_waits_for_lazy_writer() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\w.dat", t(1));
        m.write(h, Some(0), 300_000, t(1));
        m.close(h, t(2));
        assert_eq!(m.deferred_closes(), 1);
        let mut s = 3;
        while m.deferred_closes() > 0 && s < 60 {
            m.lazy_tick(t(s));
            s += 1;
        }
        assert_eq!(m.deferred_closes(), 0, "drain completes the close");
        // SetEndOfFile was issued before the close (§8.3).
        assert!(m
            .observer()
            .events
            .iter()
            .any(|e| e.set_info == Some(SetInfoKind::EndOfFile)));
        // Lazy paging writes were emitted.
        assert!(m.metrics().paging_writes > 0);
    }

    #[test]
    fn delete_on_close_removes_the_file() {
        let (mut m, vol) = machine();
        let (_, h) = m.create(
            P,
            vol,
            &NtPath::parse(r"\tmp.del"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions {
                delete_on_close: true,
                ..CreateOptions::default()
            },
            t(1),
        );
        let h = h.unwrap();
        m.write(h, Some(0), 4_096, t(1));
        m.close(h, t(2));
        assert_eq!(m.metrics().delete_on_close, 1);
        let (reply, _) = m.create(
            P,
            vol,
            &NtPath::parse(r"\tmp.del"),
            AccessMode::Read,
            Disposition::Open,
            CreateOptions::default(),
            t(3),
        );
        assert_eq!(reply.status, NtStatus::ObjectNameNotFound);
        // The dirty page never reached the disk: purged at delete.
        assert!(m.cache_metrics().purged_dirty_bytes >= 4_096);
    }

    #[test]
    fn explicit_delete_via_disposition() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\doomed.txt", t(1));
        m.write(h, Some(0), 100, t(1));
        let r = m.set_delete_disposition(h, t(2));
        assert_eq!(r.status, NtStatus::Success);
        m.close(h, t(3));
        assert_eq!(m.metrics().explicit_deletes, 1);
        assert!(m
            .namespace()
            .volume(vol)
            .unwrap()
            .lookup(&NtPath::parse(r"\doomed.txt"))
            .is_err());
    }

    #[test]
    fn overwrite_disposition_truncates() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\o.txt", t(1));
        m.write(h, Some(0), 10_000, t(1));
        m.close(h, t(2));
        for s in 3..8 {
            m.lazy_tick(t(s));
        }
        let (reply, h2) = m.create(
            P,
            vol,
            &NtPath::parse(r"\o.txt"),
            AccessMode::Write,
            Disposition::OverwriteIf,
            CreateOptions::default(),
            t(10),
        );
        assert_eq!(reply.status, NtStatus::Success);
        assert_eq!(m.metrics().overwrite_truncates, 1);
        let v = m.namespace().volume(vol).unwrap();
        let node = v.lookup(&NtPath::parse(r"\o.txt")).unwrap();
        assert_eq!(v.file_size(node).unwrap(), 0);
        m.close(h2.unwrap(), t(11));
    }

    #[test]
    fn directory_enumeration_batches() {
        let (mut m, vol) = machine();
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            for i in 0..25 {
                v.create_file(root, &format!("f{i:02}"), t(0)).unwrap();
            }
        }
        let (_, h) = m.create(
            P,
            vol,
            &NtPath::root(),
            AccessMode::Control,
            Disposition::Open,
            CreateOptions {
                directory: true,
                ..CreateOptions::default()
            },
            t(1),
        );
        let h = h.unwrap();
        let mut total = 0;
        let mut calls = 0;
        loop {
            let r = m.query_directory(h, 10, t(2));
            calls += 1;
            if r.status == NtStatus::NoMoreFiles {
                break;
            }
            total += r.transferred;
            assert!(calls < 10);
        }
        assert_eq!(total, 25);
        assert_eq!(calls, 4, "3 batches + terminator");
    }

    #[test]
    fn image_loads_cold_then_warm() {
        let (mut m, vol) = machine();
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            let d = v.mkdir(root, "winnt", t(0)).unwrap();
            let f = v.create_file(d, "notepad.exe", t(0)).unwrap();
            v.set_file_size(f, 150_000, t(0)).unwrap();
        }
        let path = NtPath::parse(r"\winnt\notepad.exe");
        let r1 = m.load_image(P, vol, &path, t(1));
        assert_eq!(r1.status, NtStatus::Success);
        let cold_paging = m.metrics().paging_reads;
        assert!(cold_paging > 0);
        m.unload_image(vol, &path);
        let r2 = m.load_image(P, vol, &path, t(100));
        assert_eq!(r2.status, NtStatus::Success);
        assert_eq!(
            m.metrics().paging_reads,
            cold_paging,
            "§3.3: warm image load does no paging I/O"
        );
        assert_eq!(m.vm_metrics().warm_image_maps, 1);
    }

    #[test]
    fn mapped_reads_fault_pages_in() {
        let (mut m, vol) = machine();
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            let f = v.create_file(root, "sim.dat", t(0)).unwrap();
            v.set_file_size(f, 1 << 20, t(0)).unwrap();
        }
        let h = open_new(&mut m, vol, r"\sim.dat", t(1));
        m.map_file(h, t(1));
        let r = m.mapped_read(h, 0, 8_192, t(2));
        assert_eq!(r.transferred, 8_192);
        assert!(m.metrics().paging_reads >= 1);
        let again = m.mapped_read(h, 0, 8_192, t(3));
        assert_eq!(
            m.vm_metrics().soft_faults,
            1,
            "second touch is a soft fault"
        );
        assert!(again.end.saturating_since(t(3)) < SimDuration::from_millis(1));
        m.close(h, t(4));
    }

    #[test]
    fn control_failures_are_counted() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\x", t(1));
        let r = m.invalid_control(h, t(2));
        assert!(r.status.is_error());
        assert_eq!(m.metrics().control_failures, 1);
        assert!(m.metrics().control_ops >= 1);
    }

    #[test]
    fn volume_mounted_fsctl_emits_event() {
        let (mut m, vol) = machine();
        let r = m.is_volume_mounted(P, vol, t(1));
        assert!(r.status.is_success());
        assert!(m
            .observer()
            .events
            .iter()
            .any(|e| e.kind == EventKind::Irp(MajorFunction::FileSystemControl)));
    }

    #[test]
    fn access_mode_is_enforced() {
        let (mut m, vol) = machine();
        let (_, h) = m.create(
            P,
            vol,
            &NtPath::parse(r"\ro.txt"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions::default(),
            t(1),
        );
        let h = h.unwrap();
        m.write(h, Some(0), 100, t(1));
        assert_eq!(
            m.read(h, Some(0), 100, t(2)).status,
            NtStatus::AccessDenied,
            "write-only handle cannot read"
        );
        m.close(h, t(3));
        let (_, h) = m.create(
            P,
            vol,
            &NtPath::parse(r"\ro.txt"),
            AccessMode::Read,
            Disposition::Open,
            CreateOptions::default(),
            t(4),
        );
        let h = h.unwrap();
        assert_eq!(
            m.write(h, Some(0), 100, t(5)).status,
            NtStatus::AccessDenied,
            "read-only handle cannot write"
        );
        m.close(h, t(6));
    }

    #[test]
    fn sharing_violation_blocks_second_opener() {
        let (mut m, vol) = machine();
        // Open exclusively (share nothing).
        let (_, h1) = m.create(
            P,
            vol,
            &NtPath::parse(r"\locked.db"),
            AccessMode::ReadWrite,
            Disposition::OpenIf,
            CreateOptions {
                share: ShareMode::default(),
                ..CreateOptions::default()
            },
            t(1),
        );
        let h1 = h1.unwrap();
        let (reply, h2) = m.create(
            P,
            vol,
            &NtPath::parse(r"\locked.db"),
            AccessMode::Read,
            Disposition::Open,
            CreateOptions::default(),
            t(2),
        );
        assert_eq!(reply.status, NtStatus::SharingViolation);
        assert!(h2.is_none());
        assert_eq!(m.metrics().sharing_violations, 1);
        m.close(h1, t(3));
        // After the exclusive handle cleans up, the open succeeds.
        let (reply, h3) = m.create(
            P,
            vol,
            &NtPath::parse(r"\locked.db"),
            AccessMode::Read,
            Disposition::Open,
            CreateOptions::default(),
            t(4),
        );
        assert_eq!(reply.status, NtStatus::Success);
        m.close(h3.unwrap(), t(5));
    }

    #[test]
    fn byte_range_locks_gate_data_access() {
        let (mut m, vol) = machine();
        let h1 = open_new(&mut m, vol, r"\shared.db", t(1));
        m.write(h1, Some(0), 64_000, t(1));
        let h2 = open_new(&mut m, vol, r"\shared.db", t(2));
        // h1 takes an exclusive lock on the first 4 KB.
        let r = m.lock(h1, 0, 4_096, true, t(3));
        assert_eq!(r.status, NtStatus::Success);
        assert_eq!(m.metrics().locks_granted, 1);
        // h2 cannot read or write the locked range, but can elsewhere.
        assert_eq!(
            m.read(h2, Some(0), 512, t(4)).status,
            NtStatus::FileLockConflict
        );
        assert_eq!(
            m.write(h2, Some(1_000), 100, t(4)).status,
            NtStatus::FileLockConflict
        );
        assert_eq!(m.read(h2, Some(8_192), 512, t(4)).status, NtStatus::Success);
        // A conflicting lock request is denied.
        assert_eq!(
            m.lock(h2, 0, 100, false, t(5)).status,
            NtStatus::FileLockConflict
        );
        // Unlock, then h2 proceeds.
        assert_eq!(m.unlock(h1, 0, 4_096, t(6)).status, NtStatus::Success);
        assert_eq!(m.read(h2, Some(0), 512, t(7)).status, NtStatus::Success);
        m.close(h1, t(8));
        m.close(h2, t(8));
    }

    #[test]
    fn cleanup_releases_locks_with_unlock_all() {
        let (mut m, vol) = machine();
        let h1 = open_new(&mut m, vol, r"\pool.db", t(1));
        m.write(h1, Some(0), 10_000, t(1));
        m.lock(h1, 0, 100, true, t(2));
        m.lock(h1, 500, 100, true, t(2));
        let h2 = open_new(&mut m, vol, r"\pool.db", t(3));
        m.close(h1, t(4));
        // The UnlockAll call appears in the trace and h2 is free to go.
        assert!(m
            .observer()
            .events
            .iter()
            .any(|e| e.kind == EventKind::FastIo(FastIoKind::UnlockAll)));
        assert_eq!(m.read(h2, Some(0), 100, t(5)).status, NtStatus::Success);
        m.close(h2, t(6));
    }

    #[test]
    fn change_notification_pends_until_a_change() {
        let (mut m, vol) = machine();
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            v.mkdir(root, "watched", t(0)).unwrap();
        }
        let (_, dh) = m.create(
            P,
            vol,
            &NtPath::parse(r"\watched"),
            AccessMode::Control,
            Disposition::Open,
            CreateOptions {
                directory: true,
                ..CreateOptions::default()
            },
            t(1),
        );
        let dh = dh.unwrap();
        let r = m.watch_directory(dh, t(2));
        assert_eq!(r.status, NtStatus::Success);
        // No notification yet.
        let before = m
            .observer()
            .events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Irp(MajorFunction::DirectoryControl) && e.transferred == 1
            })
            .count();
        assert_eq!(before, 0);
        // Creating a file inside the directory completes the pended IRP,
        // whose recorded latency is the whole wait.
        let (_, fh) = m.create(
            P,
            vol,
            &NtPath::parse(r"\watched\new.txt"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions::default(),
            t(30),
        );
        let notify: Vec<_> = m
            .observer()
            .events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Irp(MajorFunction::DirectoryControl) && e.transferred == 1
            })
            .cloned()
            .collect();
        assert_eq!(notify.len(), 1);
        assert_eq!(notify[0].start, t(2), "pended at registration");
        assert!(notify[0].end >= t(30), "completed at the change");
        m.close(fh.unwrap(), t(31));
        // One-shot: a second change does not fire again.
        let (_, fh2) = m.create(
            P,
            vol,
            &NtPath::parse(r"\watched\second.txt"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions::default(),
            t(40),
        );
        m.close(fh2.unwrap(), t(41));
        let after = m
            .observer()
            .events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Irp(MajorFunction::DirectoryControl) && e.transferred == 1
            })
            .count();
        assert_eq!(after, 1, "watch is one-shot");
        // A cancelled watch (handle closed) never fires.
        m.watch_directory(dh, t(50));
        m.close(dh, t(51));
        let (_, fh3) = m.create(
            P,
            vol,
            &NtPath::parse(r"\watched\third.txt"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions::default(),
            t(60),
        );
        m.close(fh3.unwrap(), t(61));
        let final_count = m
            .observer()
            .events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Irp(MajorFunction::DirectoryControl) && e.transferred == 1
            })
            .count();
        assert_eq!(final_count, 1, "closed handle's watch was cancelled");
    }

    #[test]
    fn compressed_files_ride_the_compressed_fastio_entries() {
        let (mut m, vol) = machine();
        {
            let v = m.namespace_mut().volume_mut(vol).unwrap();
            let root = v.root();
            let f = v.create_file(root, "big.cab", t(0)).unwrap();
            v.set_file_size(f, 400_000, t(0)).unwrap();
            v.set_attributes(f, nt_fs::FileAttributes::COMPRESSED)
                .unwrap();
        }
        let h = open_new(&mut m, vol, r"\big.cab", t(1));
        let r1 = m.read(h, Some(0), 4_096, t(1));
        assert_eq!(r1.status, NtStatus::Success);
        let t2 = r1.end + SimDuration::from_millis(1);
        let r2 = m.read(h, Some(0), 4_096, t2);
        assert_eq!(r2.status, NtStatus::Success);
        m.write(h, Some(0), 4_096, r2.end + SimDuration::from_millis(1));
        let kinds: Vec<EventKind> = m.observer().events.iter().map(|e| e.kind).collect();
        assert!(
            kinds.contains(&EventKind::FastIo(FastIoKind::ReadCompressed)),
            "warm read decompresses: {kinds:?}"
        );
        assert!(kinds.contains(&EventKind::FastIo(FastIoKind::WriteCompressed)));
        // The decompression penalty makes the warm read slower than an
        // uncompressed copy would be, but still far from disk latency.
        let warm = r2.end.saturating_since(t2);
        assert!(warm < SimDuration::from_millis(1), "got {warm}");
        m.close(h, t(9));
    }

    #[test]
    fn mdl_interface_moves_data_without_copy_cost() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\served.dat", t(1));
        let w = m.mdl_write(h, 0, 65_536, t(1));
        assert_eq!(w.status, NtStatus::Success);
        assert_eq!(w.transferred, 65_536);
        let warm = m.mdl_read(h, 0, 65_536, t(2));
        assert_eq!(warm.status, NtStatus::Success);
        // Zero-copy: a 64 KB warm MDL read is as cheap as metadata, far
        // below the ~8 ms a 64 KB copy at memory speed would cost.
        assert!(
            warm.end.saturating_since(t(2)) < SimDuration::from_micros(50),
            "got {}",
            warm.end.saturating_since(t(2))
        );
        // The MDL call pairs appear in the trace.
        let kinds: Vec<EventKind> = m.observer().events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::FastIo(FastIoKind::MdlRead)));
        assert!(kinds.contains(&EventKind::FastIo(FastIoKind::MdlReadComplete)));
        assert!(kinds.contains(&EventKind::FastIo(FastIoKind::PrepareMdlWrite)));
        assert!(kinds.contains(&EventKind::FastIo(FastIoKind::MdlWriteComplete)));
        m.close(h, t(3));
    }

    #[test]
    fn invalid_handles_are_rejected() {
        let (mut m, _) = machine();
        let bogus = HandleId(999);
        assert_eq!(
            m.read(bogus, None, 10, t(1)).status,
            NtStatus::InvalidHandle
        );
        assert_eq!(
            m.write(bogus, None, 10, t(1)).status,
            NtStatus::InvalidHandle
        );
        assert_eq!(m.close(bogus, t(1)).status, NtStatus::InvalidHandle);
        assert_eq!(m.flush(bogus, t(1)).status, NtStatus::InvalidHandle);
    }

    #[test]
    fn file_objects_reported_to_observer() {
        let (mut m, vol) = machine();
        let h = open_new(&mut m, vol, r"\hello.txt", t(1));
        m.close(h, t(2));
        assert_eq!(m.observer().objects.len(), 1);
        assert_eq!(m.observer().objects[0].path, r"\hello.txt");
    }

    #[test]
    fn null_observer_keeps_metrics_parity() {
        // `NullObserver` skips building `IoEvent` values entirely
        // (`O::ENABLED`), but the machine's counters — `events_emitted`
        // in particular, which the conservation ledger debits — must
        // count exactly what a recording observer would have seen.
        fn drive<O: IoObserver>(mut m: Machine<O>) -> (IoMetrics, Machine<O>) {
            let vol = m.add_local_volume(
                'C',
                VolumeConfig::local_ntfs(1 << 30),
                DiskParams::local_ide(),
            );
            let (reply, h) = m.create(
                P,
                vol,
                &NtPath::parse(r"\parity.dat"),
                AccessMode::ReadWrite,
                Disposition::OpenIf,
                CreateOptions::default(),
                t(1),
            );
            assert_eq!(reply.status, NtStatus::Success);
            let h = h.expect("open succeeded");
            m.write(h, Some(0), 16_384, t(2));
            let mut at = t(3);
            for _ in 0..4 {
                at = m.read(h, Some(0), 4_096, at).end;
            }
            m.flush(h, at);
            m.close(h, at + SimDuration::from_secs(1));
            m.lazy_tick(at + SimDuration::from_secs(10));
            (m.metrics(), m)
        }

        let (null_metrics, _) = drive(Machine::new(
            MachineConfig {
                seed: 9,
                ..MachineConfig::default()
            },
            crate::observer::NullObserver,
        ));
        let (vec_metrics, watched) = drive(Machine::new(
            MachineConfig {
                seed: 9,
                ..MachineConfig::default()
            },
            VecObserver::default(),
        ));
        assert_eq!(null_metrics, vec_metrics);
        assert!(null_metrics.events_emitted > 0);
        assert_eq!(
            vec_metrics.events_emitted,
            watched.observer().events.len() as u64,
            "every counted emission reached the recording observer"
        );
    }

    #[test]
    fn ablation_disable_fastio_forces_irp() {
        let mut m = Machine::new(
            MachineConfig {
                disable_fastio: true,
                ..MachineConfig::default()
            },
            VecObserver::default(),
        );
        let vol = m.add_local_volume(
            'C',
            VolumeConfig::local_ntfs(1 << 30),
            DiskParams::local_ide(),
        );
        let h = open_new(&mut m, vol, r"\f.dat", t(1));
        m.write(h, Some(0), 20_000, t(1));
        let mut tt = t(2);
        for _ in 0..10 {
            tt = m.read(h, Some(0), 4_096, tt).end;
        }
        assert_eq!(m.metrics().fastio_reads, 0);
        assert_eq!(m.metrics().fastio_writes, 0);
        assert!(m.metrics().irp_reads >= 10);
        assert!(m
            .observer()
            .events
            .iter()
            .all(|e| !e.kind.is_fastio() || !e.kind.is_read()));
    }

    #[test]
    fn temporary_files_spare_the_disk() {
        let (mut m, vol) = machine();
        let (_, h) = m.create(
            P,
            vol,
            &NtPath::parse(r"\scratch.tmp"),
            AccessMode::Write,
            Disposition::Create,
            CreateOptions {
                temporary: true,
                delete_on_close: true,
                ..CreateOptions::default()
            },
            t(1),
        );
        let h = h.unwrap();
        m.write(h, Some(0), 100_000, t(1));
        m.lazy_tick(t(2));
        assert_eq!(
            m.metrics().paging_writes,
            0,
            "temporary data never hits the disk"
        );
        m.close(h, t(3));
        assert_eq!(m.metrics().delete_on_close, 1);
    }
}
