//! Deterministic fault scheduling for the collection pipeline.
//!
//! The study's §3 infrastructure was designed around failure: agents that
//! lose contact with the collection servers suspend local tracing, triple
//! buffers guard against shipping stalls, and remote volumes sit behind a
//! network that can partition. A [`FaultPlan`] describes how unreliable a
//! deployment should be; [`FaultSchedule::materialize`] expands it — from
//! the study seed, bit-for-bit reproducibly — into concrete
//! [`TickWindow`]s per machine and per collection server, which
//! [`crate::MachineRun::simulate_with_faults`] and the
//! [`nt_trace::CollectorPool`] then enact.
//!
//! Determinism is load-bearing: every draw comes from a dedicated fault
//! stream (`rng_for(seed, &[FAULT_STREAM, …])`), never from the machine
//! workload streams, so a zero-fault plan leaves the simulated traces
//! byte-identical to a run without the fault layer.

use nt_sim::{rng_for, SimDuration};
use nt_trace::TickWindow;
use rand::Rng;

use crate::config::StudyConfig;

/// Label separating the fault-schedule RNG stream from the per-machine
/// workload streams (which use the bare machine index).
const FAULT_STREAM: u64 = 0xFA17_5EED;

/// Label offset for the per-collector streams.
const COLLECTOR_STREAM: u64 = 1_000_000;

/// Cap on scheduled windows per machine; a guard against degenerate means.
const MAX_WINDOWS: usize = 512;

/// How unreliable the simulated deployment is. The default plan injects
/// nothing — the clean study the paper actually ran.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Mean time between agent connection losses (exponential gaps);
    /// `None` disables agent outages.
    pub agent_outage_mean: Option<SimDuration>,
    /// Uniform bounds, in seconds, on each agent outage's length.
    pub agent_outage_secs: (u64, u64),
    /// Probability that a machine's trace agent runs with squeezed
    /// storage buffers (an under-provisioned install).
    pub buffer_squeeze_probability: f64,
    /// Per-buffer record capacity on squeezed machines (§3.2's default
    /// is 3,000).
    pub squeezed_capacity: usize,
    /// Outage windows per collection server over the study period.
    pub collector_outages: u32,
    /// Uniform bounds, in seconds, on each collector outage's length.
    pub collector_outage_secs: (u64, u64),
    /// Mean time between network partitions cutting a machine off from
    /// its remote volumes; `None` disables partitions.
    pub partition_mean: Option<SimDuration>,
    /// Uniform bounds, in seconds, on each partition's length.
    pub partition_secs: (u64, u64),
}

impl FaultPlan {
    /// The clean deployment: no faults at all.
    pub fn none() -> Self {
        FaultPlan {
            agent_outage_mean: None,
            agent_outage_secs: (2, 20),
            buffer_squeeze_probability: 0.0,
            squeezed_capacity: 300,
            collector_outages: 0,
            collector_outage_secs: (30, 120),
            partition_mean: None,
            partition_secs: (5, 60),
        }
    }

    /// A visibly lossy deployment for tests and experiments: frequent
    /// agent drops, some squeezed buffers, server downtime, partitions.
    pub fn lossy() -> Self {
        FaultPlan {
            agent_outage_mean: Some(SimDuration::from_secs(60)),
            agent_outage_secs: (2, 20),
            buffer_squeeze_probability: 0.4,
            squeezed_capacity: 200,
            collector_outages: 2,
            collector_outage_secs: (20, 60),
            partition_mean: Some(SimDuration::from_secs(90)),
            partition_secs: (5, 30),
        }
    }

    /// True when the plan schedules nothing.
    pub fn is_none(&self) -> bool {
        self.agent_outage_mean.is_none()
            && self.buffer_squeeze_probability == 0.0
            && self.collector_outages == 0
            && self.partition_mean.is_none()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// The faults one machine will experience.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MachineFaults {
    /// Windows during which the agent is suspended (records are lost).
    pub agent_outages: Vec<TickWindow>,
    /// Windows during which the network link is partitioned (remote
    /// volumes unreachable).
    pub partitions: Vec<TickWindow>,
    /// Squeezed per-buffer capacity, when this machine drew the squeeze.
    pub buffer_capacity: Option<usize>,
}

/// A fully materialized fault schedule for one study run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// Per machine, indexed like `StudyConfig::machines`.
    pub machines: Vec<MachineFaults>,
    /// Downtime windows per collection server.
    pub collectors: Vec<Vec<TickWindow>>,
}

/// Exponential gap with the given mean, in ticks (at least one tick so
/// schedules always advance).
fn exp_gap_ticks(rng: &mut impl Rng, mean_ticks: u64) -> u64 {
    let u: f64 = rng.gen();
    ((-(1.0 - u).ln()) * mean_ticks as f64).max(1.0) as u64
}

/// Poisson-arrival windows: exponential gaps between starts, uniform
/// lengths in `[len_secs.0, len_secs.1]`, clamped to the study period.
fn poisson_windows(
    rng: &mut impl Rng,
    mean: SimDuration,
    len_secs: (u64, u64),
    duration_ticks: u64,
) -> Vec<TickWindow> {
    let mean_ticks = mean.ticks().max(1);
    let (lo, hi) = (len_secs.0.min(len_secs.1), len_secs.0.max(len_secs.1));
    let mut windows = Vec::new();
    let mut t = 0u64;
    while windows.len() < MAX_WINDOWS {
        t = t.saturating_add(exp_gap_ticks(rng, mean_ticks));
        if t >= duration_ticks {
            break;
        }
        let len = rng.gen_range(lo..=hi) * nt_sim::TICKS_PER_SEC;
        windows.push(TickWindow::new(t, (t + len).min(duration_ticks)));
        t = t.saturating_add(len);
    }
    windows
}

impl FaultSchedule {
    /// Expands a config's plan into concrete windows, deterministically
    /// from the study seed. `servers` is the collector-pool size.
    pub fn materialize(config: &StudyConfig, servers: usize) -> Self {
        let plan = &config.faults;
        let duration_ticks = config.duration.ticks();
        let mut machines = Vec::with_capacity(config.machines.len());
        for index in 0..config.machines.len() {
            let mut rng = rng_for(config.seed, &[FAULT_STREAM, index as u64]);
            let agent_outages = match plan.agent_outage_mean {
                Some(mean) => {
                    poisson_windows(&mut rng, mean, plan.agent_outage_secs, duration_ticks)
                }
                None => Vec::new(),
            };
            let partitions = match plan.partition_mean {
                Some(mean) => poisson_windows(&mut rng, mean, plan.partition_secs, duration_ticks),
                None => Vec::new(),
            };
            let buffer_capacity = if plan.buffer_squeeze_probability > 0.0
                && rng.gen_bool(plan.buffer_squeeze_probability)
            {
                Some(plan.squeezed_capacity.max(1))
            } else {
                None
            };
            machines.push(MachineFaults {
                agent_outages,
                partitions,
                buffer_capacity,
            });
        }

        // Collector outages: the study period is sliced evenly and each
        // slice holds at most one window, so a server's own windows never
        // overlap and downtime spreads across the run.
        let mut collectors = Vec::with_capacity(servers);
        for s in 0..servers {
            let mut windows = Vec::new();
            if plan.collector_outages > 0 && duration_ticks > 0 {
                let mut rng = rng_for(config.seed, &[FAULT_STREAM, COLLECTOR_STREAM + s as u64]);
                let slices = plan.collector_outages as u64;
                let slice = duration_ticks / slices;
                let (lo, hi) = (
                    plan.collector_outage_secs
                        .0
                        .min(plan.collector_outage_secs.1),
                    plan.collector_outage_secs
                        .0
                        .max(plan.collector_outage_secs.1),
                );
                for k in 0..slices {
                    let len =
                        (rng.gen_range(lo..=hi) * nt_sim::TICKS_PER_SEC).min(slice.max(1) - 1);
                    let slack = slice.saturating_sub(len);
                    let offset = if slack > 0 {
                        rng.gen_range(0..slack)
                    } else {
                        0
                    };
                    let start = k * slice + offset;
                    windows.push(TickWindow::new(start, (start + len).min(duration_ticks)));
                }
                windows.retain(|w| w.duration_ticks() > 0);
            }
            collectors.push(windows);
        }
        FaultSchedule {
            machines,
            collectors,
        }
    }

    /// The faults for one machine (default-clean past the end).
    pub fn for_machine(&self, index: usize) -> MachineFaults {
        self.machines.get(index).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;

    fn lossy_config(seed: u64) -> StudyConfig {
        let mut c = StudyConfig::smoke_test(seed);
        c.faults = FaultPlan::lossy();
        c
    }

    #[test]
    fn zero_plan_schedules_nothing() {
        let c = StudyConfig::smoke_test(11);
        assert!(c.faults.is_none());
        let s = FaultSchedule::materialize(&c, 3);
        assert!(s.machines.iter().all(|m| m == &MachineFaults::default()));
        assert!(s.collectors.iter().all(|w| w.is_empty()));
    }

    #[test]
    fn materialization_is_deterministic() {
        let c = lossy_config(5);
        let a = FaultSchedule::materialize(&c, 3);
        let b = FaultSchedule::materialize(&c, 3);
        assert_eq!(a, b);
        let mut c2 = lossy_config(6);
        c2.seed = 6;
        let d = FaultSchedule::materialize(&c2, 3);
        assert_ne!(a, d, "different seed, different schedule");
    }

    #[test]
    fn windows_stay_inside_the_study_period() {
        let c = lossy_config(7);
        let end = c.duration.ticks();
        let s = FaultSchedule::materialize(&c, 3);
        let all = s
            .machines
            .iter()
            .flat_map(|m| m.agent_outages.iter().chain(m.partitions.iter()))
            .chain(s.collectors.iter().flatten());
        for w in all {
            assert!(w.start_ticks < end, "window starts inside the run");
            assert!(w.end_ticks <= end, "window ends inside the run");
            assert!(w.duration_ticks() > 0);
        }
    }

    #[test]
    fn lossy_plan_actually_schedules_faults() {
        let c = lossy_config(3);
        let s = FaultSchedule::materialize(&c, 3);
        let outages: usize = s.machines.iter().map(|m| m.agent_outages.len()).sum();
        let partitions: usize = s.machines.iter().map(|m| m.partitions.len()).sum();
        assert!(outages > 0, "agent outages scheduled");
        assert!(partitions > 0, "partitions scheduled");
        assert!(
            s.machines.iter().any(|m| m.buffer_capacity.is_some()),
            "some machine drew the buffer squeeze"
        );
        assert!(s.collectors.iter().all(|w| w.len() == 2));
    }

    #[test]
    fn collector_windows_do_not_overlap() {
        let c = lossy_config(13);
        let s = FaultSchedule::materialize(&c, 3);
        for windows in &s.collectors {
            for pair in windows.windows(2) {
                assert!(pair[0].end_ticks <= pair[1].start_ticks);
            }
        }
    }
}
