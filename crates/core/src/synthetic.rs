//! Profile-driven synthetic benchmarking — closing the §1/§7 loop.
//!
//! §7's third engineering conclusion: "when constructing synthetic
//! workloads … we need to ensure that the infinite variance
//! characteristics are properly modeled in the file system test
//! patterns." [`SyntheticBench`] takes a [`WorkloadProfile`] fitted from
//! any trace (`nt_analysis::profile::fit_profile`) and generates traffic
//! with the same empirical distributions — inter-arrivals, session
//! shapes, request sizes, file sizes — against a fresh machine, so a
//! cache or disk change can be benchmarked under statistically faithful
//! load.

use nt_analysis::profile::WorkloadProfile;
use nt_fs::{NtPath, VolumeConfig, VolumeId};
use nt_io::{
    AccessMode, CreateOptions, DiskParams, Disposition, IoMetrics, Machine, MachineConfig,
    NullObserver, ProcessId,
};
use nt_sim::{SimDuration, SimRng, SimTime};
use rand::Rng;
use rand::SeedableRng;

/// The synthetic benchmark: one machine driven by a fitted profile.
pub struct SyntheticBench {
    machine: Machine<NullObserver>,
    volume: VolumeId,
    files: Vec<(NtPath, u64)>,
    profile: WorkloadProfile,
    rng: SimRng,
    /// Open timestamps generated so far (for shape validation).
    pub open_ticks: Vec<u64>,
    scratch_seq: u64,
}

impl SyntheticBench {
    /// Builds the bench: a machine populated with `file_count` files whose
    /// sizes are drawn from the profile's file-size distribution.
    pub fn new(
        profile: WorkloadProfile,
        machine_config: MachineConfig,
        file_count: usize,
        seed: u64,
    ) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut machine = Machine::new(machine_config, NullObserver);
        let volume = machine.add_local_volume(
            'C',
            VolumeConfig::local_ntfs(32 << 30),
            DiskParams::local_ide(),
        );
        let mut files = Vec::with_capacity(file_count);
        {
            let vol = machine
                .namespace_mut()
                .volume_mut(volume)
                .expect("volume just added");
            let root = vol.root();
            let dir = vol.mkdir(root, "bench", SimTime::ZERO).expect("fresh dir");
            for i in 0..file_count {
                let size = profile.file_sizes.sample(&mut rng).max(1.0) as u64;
                let name = format!("f{i:06}.dat");
                let node = vol
                    .create_file(dir, &name, SimTime::ZERO)
                    .expect("fresh file");
                let _ = vol.set_file_size(node, size, SimTime::ZERO);
                files.push((NtPath::parse(&format!(r"\bench\{name}")), size));
            }
        }
        SyntheticBench {
            machine,
            volume,
            files,
            profile,
            rng,
            open_ticks: Vec::new(),
            scratch_seq: 0,
        }
    }

    fn pick_file(&mut self) -> (NtPath, u64) {
        let i = self.rng.gen_range(0..self.files.len());
        self.files[i].clone()
    }

    /// Runs the generator for `duration` of virtual time and returns the
    /// machine's counters.
    pub fn run(&mut self, duration: SimDuration) -> IoMetrics {
        let end = SimTime::ZERO + duration;
        let mut now = SimTime::from_millis(1);
        let mut next_lazy = SimTime::from_secs(1);
        let process = ProcessId(1);
        while now < end {
            while next_lazy <= now {
                self.machine.lazy_tick(next_lazy);
                next_lazy += SimDuration::from_secs(1);
            }
            self.open_ticks.push(now.ticks());

            let u: f64 = self.rng.gen();
            if u < self.profile.open_failure_fraction {
                // A failed probe.
                let path = NtPath::parse(&format!(
                    r"\bench\missing{:06}",
                    self.rng.gen_range(0..1_000_000)
                ));
                let (r, _) = self.machine.create(
                    process,
                    self.volume,
                    &path,
                    AccessMode::Read,
                    Disposition::Open,
                    CreateOptions::default(),
                    now,
                );
                now = r.end;
            } else if u < self.profile.open_failure_fraction + self.profile.control_fraction {
                // A control-only session.
                let (path, _) = self.pick_file();
                let (r, h) = self.machine.create(
                    process,
                    self.volume,
                    &path,
                    AccessMode::Control,
                    Disposition::Open,
                    CreateOptions::default(),
                    now,
                );
                now = r.end;
                if let Some(h) = h {
                    now = self.machine.query_information(h, now).end;
                    now = self.machine.close(h, now).end;
                }
            } else {
                now = self.data_session(process, now);
            }

            let gap = self
                .profile
                .interarrival_ticks
                .sample(&mut self.rng)
                .max(1.0) as u64;
            now += SimDuration::from_ticks(gap);
        }
        // Drain.
        let mut s = 0;
        while (self.machine.deferred_closes() > 0 || s < 5) && s < 600 {
            s += 1;
            self.machine.lazy_tick(end + SimDuration::from_secs(s));
        }
        self.machine.pump(end + SimDuration::from_secs(s + 5));
        self.machine.metrics()
    }

    fn data_session(&mut self, process: ProcessId, start: SimTime) -> SimTime {
        let (ro, wo, _) = self.profile.class_shares;
        let u: f64 = self.rng.gen();
        let (path, size, access) = if u < ro {
            let (p, s) = self.pick_file();
            (p, s, AccessMode::Read)
        } else if u < ro + wo {
            self.scratch_seq += 1;
            (
                NtPath::parse(&format!(r"\bench\out{:06}.tmp", self.scratch_seq)),
                0,
                AccessMode::Write,
            )
        } else {
            let (p, s) = self.pick_file();
            (p, s, AccessMode::ReadWrite)
        };
        let disposition = if access == AccessMode::Read {
            Disposition::Open
        } else {
            Disposition::OpenIf
        };
        let (r, handle) = self.machine.create(
            process,
            self.volume,
            &path,
            access,
            disposition,
            CreateOptions::default(),
            start,
        );
        let mut now = r.end;
        let Some(h) = handle else {
            return now;
        };
        if access.can_read() {
            let n = self.profile.reads_per_session.sample(&mut self.rng).round() as u64;
            let sequential = self
                .rng
                .gen_bool(self.profile.sequential_read_fraction.clamp(0.0, 1.0));
            for _ in 0..n.clamp(1, 2_000) {
                let len = self.profile.read_sizes.sample(&mut self.rng).max(1.0) as u64;
                let offset = if sequential {
                    None
                } else {
                    Some(self.rng.gen_range(0..size.max(1)))
                };
                let r = self.machine.read(h, offset, len, now);
                now = r.end;
                if r.status.is_error() {
                    break;
                }
            }
        }
        if access.can_write() {
            let n = self
                .profile
                .writes_per_session
                .sample(&mut self.rng)
                .round() as u64;
            for _ in 0..n.clamp(1, 2_000) {
                let len = self.profile.write_sizes.sample(&mut self.rng).max(1.0) as u64;
                now = self.machine.write(h, None, len, now).end;
            }
        }
        self.machine.close(h, now).end
    }

    /// The machine under test (for cache metrics etc.).
    pub fn machine(&self) -> &Machine<NullObserver> {
        &self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use crate::study::Study;
    use nt_analysis::burstiness::bin_arrivals;
    use nt_analysis::profile::fit_profile;

    #[test]
    fn synthetic_load_preserves_the_statistical_shape() {
        // Fit from a real study run…
        let data = Study::run(&StudyConfig::smoke_test(31));
        let profile = fit_profile(&data.trace_set).expect("fit succeeds");
        let source_median_read = profile.read_sizes.median();
        let control_target = profile.control_fraction;

        // …generate fresh traffic…
        let mut bench = SyntheticBench::new(profile, MachineConfig::default(), 400, 9);
        let metrics = bench.run(SimDuration::from_secs(900));
        assert!(metrics.opens > 100, "generator produced work: {metrics:?}");

        // …and check the shape carried over.
        let data_opens = {
            // control-only fraction approximated through counters.
            let reads_writes = metrics.fastio_reads
                + metrics.irp_reads
                + metrics.fastio_writes
                + metrics.irp_writes;
            reads_writes > 0
        };
        assert!(data_opens);
        assert!(
            metrics.control_ops > 0,
            "control traffic present (target fraction {control_target})"
        );
        // Burstiness: the generated arrivals stay overdispersed.
        let binned = bin_arrivals(&bench.open_ticks, 1);
        assert!(
            binned.dispersion() > 1.5,
            "synthetic arrivals keep their burstiness: {}",
            binned.dispersion()
        );
        assert!(source_median_read > 0.0);
    }

    #[test]
    fn synthetic_bench_compares_cache_configs() {
        let data = Study::run(&StudyConfig::smoke_test(32));
        let profile = fit_profile(&data.trace_set).expect("fit succeeds");
        let run = |fastio: bool| {
            let mut bench = SyntheticBench::new(
                profile.clone(),
                MachineConfig {
                    disable_fastio: !fastio,
                    ..MachineConfig::default()
                },
                300,
                4,
            );
            bench.run(SimDuration::from_secs(60))
        };
        let with = run(true);
        let without = run(false);
        assert!(with.fastio_reads > 0);
        assert_eq!(without.fastio_reads, 0, "the knob reaches the bench");
    }
}
