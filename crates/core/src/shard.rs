//! The sharded collection tree: agent → shard collector → aggregator →
//! fleet.
//!
//! The paper traced 45 desktops through three collection servers; the
//! org-scale question is what the same pipeline looks like at 1,000 or
//! 10,000 machines. This module partitions the fleet into contiguous
//! shards, gives each shard its own three-server [`StreamingPool`] and
//! [`AnalysisSet`] (so per-shard analysis state is bounded by the
//! shard's machine count, not the fleet's), runs every machine
//! simulation on one fleet-wide work-stealing pool
//! ([`nt_trace::steal`]), and reduces the per-shard
//! [`ShardSummary`] partials hierarchically — shards into aggregators,
//! aggregators into the fleet root, where tail alphas and (under
//! retain) the exact fact tables are computed once.
//!
//! The load-bearing invariant: **shard count and worker count are pure
//! performance knobs.** Every machine derives its faults from its fleet
//! index and ships through a 3-server pool whose outage windows come
//! from one shared [`FaultSchedule`], so each machine's experience is
//! identical to the flat topology's; and every aggregate the sinks keep
//! is integer or min/max state, so the hierarchical merge is exact, not
//! merely close. `tests/shard_scale.rs` pins this: digests of the fact
//! tables, name tables and loss ledgers are bit-identical across shard
//! counts 1/4/8 and worker counts 1/N.

use std::path::PathBuf;
use std::sync::Arc;

use nt_analysis::stream::{AnalysisSet, ShardSummary, StreamConfig};
use nt_obs::{FlightEvent, HealthFinding, MachineTelemetry, RecorderScope, Telemetry, Watchdog};
use nt_trace::{ShipmentConsumer, StreamingPool};

use crate::config::StudyConfig;
use crate::fault::FaultSchedule;
use crate::run::MachineRun;
use crate::study::{
    dump_flight_recorder, write_trace_artefact, Instruments, MachineOutput, StreamedStudyData,
    Study, StudyFault,
};

/// Knobs of the sharded driver. The defaults reproduce the flat
/// topology (one shard, auto-sized workers).
#[derive(Clone, Debug)]
pub struct ShardOptions {
    /// Number of shard collectors; clamped to `1..=machines`.
    pub shards: usize,
    /// Worker threads for the fleet-wide work-stealing pool; `None`
    /// sizes like [`Study::run`].
    pub workers: Option<usize>,
    /// Shards merged per aggregator at the middle tier.
    pub aggregator_fanout: usize,
    /// Keep raw records and rebuild the exact fact tables (identity
    /// testing only — defeats the memory bound).
    pub retain: bool,
    /// Spill directory for the tail-analysis sample runs; shared across
    /// shards (run files are namespaced by machine id).
    pub spill_dir: Option<PathBuf>,
    /// Export the run as an NTT warehouse into this directory; shared
    /// across shards (segment files are namespaced by machine id, and
    /// each shard's sink only owns its own machine range).
    pub warehouse: Option<PathBuf>,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            shards: 1,
            workers: None,
            aggregator_fanout: 4,
            retain: false,
            spill_dir: None,
            warehouse: None,
        }
    }
}

/// What one shard contributed, before its partial was merged away.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Fleet machine indices this shard collected, `[start, end)`.
    pub machines: std::ops::Range<usize>,
    /// Records the shard's sinks analysed.
    pub records: u64,
    /// Records shipped through the shard's pool (its head-count).
    pub total_records: usize,
    /// Compressed footprint at the shard's collection servers, bytes.
    pub stored_bytes: usize,
    /// Peak live analysis state across the shard's sinks, bytes — the
    /// quantity the per-shard memory budget bounds.
    pub peak_state_bytes: usize,
    /// Shard-level health findings (currently the post-run stall check);
    /// empty with watchdogs off.
    pub findings: Vec<HealthFinding>,
}

/// A sharded streaming run: the fleet-level data (same shape as the
/// flat [`Study::run_streaming`] output) plus the per-tier accounting.
pub struct ShardedStudyData {
    /// The fleet-root study data, bit-identical to a flat run.
    pub data: StreamedStudyData,
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
    /// Aggregators the middle tier used (`ceil(shards / fanout)`).
    pub aggregators: usize,
}

/// Contiguous, near-even split of `0..n` into `k` ranges (the first
/// `n % k` get one extra).
pub(crate) fn shard_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let k = k.clamp(1, n.max(1));
    let base = n / k;
    let extra = n % k;
    let mut next = 0;
    (0..k)
        .map(|s| {
            let len = base + usize::from(s < extra);
            let range = next..next + len;
            next += len;
            range
        })
        .collect()
}

impl Study {
    /// [`Study::run_streaming`] over the sharded collection tree.
    pub fn run_sharded(config: &StudyConfig, options: &ShardOptions) -> ShardedStudyData {
        Self::try_run_sharded(config, options).unwrap_or_else(|fault| panic!("{fault}"))
    }

    /// [`Study::run_sharded`], with worker and collection-server panics
    /// surfaced as a [`StudyFault`] instead of re-raised.
    pub fn try_run_sharded(
        config: &StudyConfig,
        options: &ShardOptions,
    ) -> Result<ShardedStudyData, StudyFault> {
        let instruments = Instruments::for_config(config);
        let result = Self::sharded_run_inner(config, options, &instruments);
        match &result {
            Err(fault) => dump_flight_recorder(
                &instruments.recorder,
                config,
                &format!("study-fault: {fault}"),
            ),
            Ok(sharded) if instruments.dump_on_loss && sharded.data.total_lost() > 0 => {
                sharded.data.dump_flight_recorder(&format!(
                    "loss-on-shutdown: {} records lost",
                    sharded.data.total_lost()
                ));
            }
            Ok(_) => {}
        }
        result
    }

    fn sharded_run_inner(
        config: &StudyConfig,
        options: &ShardOptions,
        instruments: &Instruments,
    ) -> Result<ShardedStudyData, StudyFault> {
        let n = config.machines.len();
        let workers = options
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(4)
            })
            .min(n.max(1));
        let ranges = shard_ranges(n, options.shards);
        // One schedule for the whole fleet, materialized exactly like
        // the flat path's (three servers): machine faults key off the
        // fleet index and every shard's pool replays the same collector
        // outage windows, so a machine cannot tell how many shards the
        // tree has.
        let schedule = FaultSchedule::materialize(config, 3);
        let analysis_telemetry = match config.telemetry.is_on() {
            true => Telemetry::profiler(),
            false => Telemetry::off(),
        };
        let consumers: Vec<Arc<AnalysisSet>> = ranges
            .iter()
            .enumerate()
            .map(|(s, r)| {
                let ids: Vec<u32> = (r.start as u32..r.end as u32).collect();
                Arc::new(AnalysisSet::new(
                    &ids,
                    &StreamConfig {
                        retain: options.retain,
                        spill_dir: options.spill_dir.clone(),
                        telemetry: analysis_telemetry.clone(),
                        tracer: instruments.tracer.for_shard(s as u32),
                        ..StreamConfig::default()
                    },
                ))
            })
            .collect();
        let warehouse_sinks: Vec<Option<Arc<nt_warehouse::WarehouseSink>>> =
            match &options.warehouse {
                Some(dir) => ranges
                    .iter()
                    .map(|r| {
                        let ids: Vec<u32> = (r.start as u32..r.end as u32).collect();
                        nt_warehouse::WarehouseSink::create(dir, &ids).map(|s| Some(Arc::new(s)))
                    })
                    .collect::<Result<_, _>>()?,
                None => vec![None; ranges.len()],
            };
        let pools: Vec<StreamingPool> = consumers
            .iter()
            .zip(&warehouse_sinks)
            .enumerate()
            .map(|(s, (c, w))| {
                let shard_tracer = instruments.tracer.for_shard(s as u32);
                let consumer: Arc<dyn ShipmentConsumer> = match w {
                    Some(sink) => Arc::new(crate::warehouse::Tee {
                        analysis: Arc::clone(c),
                        warehouse: Arc::clone(sink),
                        tracer: shard_tracer.clone(),
                    }),
                    None => Arc::clone(c) as Arc<dyn ShipmentConsumer>,
                };
                StreamingPool::start_traced(
                    3,
                    schedule.collectors.clone(),
                    consumer,
                    shard_tracer,
                    instruments.recorder.clone(),
                )
            })
            .collect();

        // Fleet index → owning shard, for the machine tasks.
        let shard_of: Vec<usize> = ranges
            .iter()
            .enumerate()
            .flat_map(|(s, r)| r.clone().map(move |_| s))
            .collect();

        // Every machine simulation, fleet-wide, on one stealing pool:
        // a shard of cheap WalkUp machines finishes early and its
        // workers drain the Scientific shard's backlog.
        let (outputs, panic) = nt_trace::steal::run_indexed(n, workers, |index| {
            let spec = &config.machines[index];
            let faults = schedule.for_machine(index);
            let mut run = MachineRun::build_with_faults(config, index, spec, &faults);
            run.set_instruments(
                &instruments.tracer.for_shard(shard_of[index] as u32),
                &instruments.recorder,
                instruments.watchdogs,
            );
            let mut sink = pools[shard_of[index]].handle_for(run.id);
            run.simulate_with_faults(config, &faults, &mut sink);
            MachineOutput {
                id: run.id,
                category: run.category,
                snapshots: std::mem::take(&mut run.snapshots),
                io: run.io_metrics(),
                cache: run.cache_metrics(),
                vm: run.vm_metrics(),
                loss: run.loss_ledger(),
                residual_dirty_bytes: run.residual_dirty_bytes(),
                telemetry: run.telemetry_report(),
                health: run.take_health(),
                last_delivery_ticks: run.last_delivery_ticks(),
            }
        });

        // Join every shard's servers before surfacing any fault — a
        // panicked machine must not leak forwarding threads.
        let mut totals = Vec::with_capacity(pools.len());
        let mut collection_fault = None;
        for pool in pools {
            match pool.finish() {
                Ok(t) => totals.push(t),
                Err(fault) => {
                    collection_fault.get_or_insert(fault);
                }
            }
        }
        if let Some(p) = panic {
            return Err(StudyFault::Worker(format!(
                "machine {}: {}",
                p.index, p.message
            )));
        }
        if let Some(fault) = collection_fault {
            return Err(fault.into());
        }
        let mut machines: Vec<MachineOutput> = outputs.into_iter().flatten().collect();
        machines.sort_by_key(|m| m.id);

        // Shard tier: close each shard's sinks into a mergeable partial.
        let mut shard_summaries: Vec<ShardSummary> = Vec::with_capacity(consumers.len());
        let mut shards = Vec::with_capacity(consumers.len());
        let end_ticks = config.duration.ticks();
        for (s, consumer) in consumers.into_iter().enumerate() {
            let consumer = Arc::try_unwrap(consumer)
                .unwrap_or_else(|_| panic!("server threads still hold shard {s} after finish"));
            let partial = consumer.finish_shard();
            // Shard boundary crossed: note what this collector merged
            // away, then run the post-run stall check over its machines'
            // last successful deliveries.
            instruments.recorder.record(
                RecorderScope::Shard(s as u32),
                FlightEvent::MergeBoundary {
                    shard: s as u32,
                    machines: ranges[s].len() as u64,
                    records: partial.summary.records,
                },
            );
            let mut findings = Vec::new();
            if instruments.watchdogs {
                let last = machines[ranges[s].clone()]
                    .iter()
                    .map(|m| m.last_delivery_ticks)
                    .max()
                    .unwrap_or(0);
                if let Some(f) = Watchdog::stalled_shard(s as u32, last, end_ticks) {
                    instruments.recorder.record(
                        RecorderScope::Shard(s as u32),
                        FlightEvent::Finding(f.clone()),
                    );
                    findings.push(f);
                }
            }
            shards.push(ShardReport {
                shard: s,
                machines: ranges[s].clone(),
                records: partial.summary.records,
                total_records: totals[s].total_records,
                stored_bytes: totals[s].stored_bytes,
                peak_state_bytes: partial.summary.peak_state_bytes,
                findings,
            });
            shard_summaries.push(partial);
        }

        // Aggregator tier: contiguous groups of `fanout` shards merge
        // first, then the fleet root merges the aggregators. Exactness
        // of the partial merge makes this tree shape (or any other)
        // invisible in the result.
        let fanout = options.aggregator_fanout.max(1);
        let mut aggregators_tier: Vec<ShardSummary> = Vec::new();
        let mut iter = shard_summaries.into_iter().peekable();
        while iter.peek().is_some() {
            let mut aggregator = ShardSummary::default();
            for partial in iter.by_ref().take(fanout) {
                aggregator.merge(partial);
            }
            aggregators_tier.push(aggregator);
        }
        let aggregators = aggregators_tier.len();
        let mut fleet = ShardSummary::default();
        for aggregator in aggregators_tier {
            fleet.merge(aggregator);
        }
        let analysis = fleet.into_analysis();

        // Warehouse tier: each shard's sink writes its own machine range
        // into the shared directory; the stats concatenate in machine
        // order because shards are contiguous and ascending.
        let warehouse_stats = match options.warehouse.is_some() {
            true => {
                let _span = analysis_telemetry
                    .span_child(nt_obs::Phase::Warehouse, "warehouse.export_sharded");
                let mut stats = Vec::with_capacity(n);
                for (s, sink) in warehouse_sinks.into_iter().enumerate() {
                    let sink = sink.expect("warehouse sinks exist for every shard");
                    let sink = Arc::try_unwrap(sink).unwrap_or_else(|_| {
                        panic!("the tee still holds shard {s}'s warehouse after finish")
                    });
                    stats.extend(sink.finish()?);
                }
                Some(stats)
            }
            false => None,
        };

        let profile = crate::study::fleet_profile(&machines, &analysis_telemetry);
        write_sharded_telemetry(config, &machines, &shard_of);
        let total_records = shards.iter().map(|s| s.total_records).sum();
        let stored_bytes = shards.iter().map(|s| s.stored_bytes).sum();
        // Every shard tracer shares the root tracer's span store, so one
        // drain collects the whole tree.
        let shipment_spans = instruments.tracer.take_sorted();
        write_trace_artefact(config, &instruments.tracer, &shipment_spans);
        let health: Vec<HealthFinding> = machines
            .iter()
            .flat_map(|m| m.health.iter().cloned())
            .chain(shards.iter().flat_map(|s| s.findings.iter().cloned()))
            .collect();
        Ok(ShardedStudyData {
            data: StreamedStudyData {
                config: config.clone(),
                summary: analysis.summary,
                trace_set: analysis.trace_set,
                machines,
                total_records,
                stored_bytes,
                profile,
                warehouse: warehouse_stats,
                shipment_spans,
                health,
                flight_recorder: instruments.recorder.clone(),
            },
            shards,
            aggregators,
        })
    }
}

/// The sharded counterpart of the flat telemetry export: rows carry
/// `shard:<k>` scopes between the category and machine scopes. Export
/// must never fail the study; errors are reported and swallowed.
fn write_sharded_telemetry(config: &StudyConfig, machines: &[MachineOutput], shard_of: &[usize]) {
    let Some(dir) = config.telemetry.options().and_then(|o| o.dir.as_ref()) else {
        return;
    };
    let labelled: Vec<(u32, String, usize, &MachineTelemetry)> = machines
        .iter()
        .filter_map(|m| {
            m.telemetry.as_ref().map(|t| {
                let shard = shard_of.get(m.id.0 as usize).copied().unwrap_or(0);
                (m.id.0, format!("{:?}", m.category), shard, t)
            })
        })
        .collect();
    let borrowed: Vec<(u32, &str, usize, &MachineTelemetry)> = labelled
        .iter()
        .map(|(id, cat, shard, t)| (*id, cat.as_str(), *shard, *t))
        .collect();
    let rows = nt_obs::export::sharded_rows(&borrowed);
    let path = dir.join("timeseries.jsonl");
    if let Err(e) = nt_obs::write_timeseries_jsonl(&path, &rows) {
        eprintln!("nt-obs: cannot write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StreamOptions;

    #[test]
    fn shard_ranges_cover_contiguously() {
        for (n, k) in [(45, 8), (10, 3), (3, 8), (1_000, 8), (5, 1), (0, 4)] {
            let ranges = shard_ranges(n, k);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "n={n} k={k}");
                next = r.end;
            }
            assert_eq!(next, n, "n={n} k={k}");
            let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(max - min <= 1, "near-even split: {lens:?}");
        }
    }

    #[test]
    fn one_shard_equals_the_flat_streaming_run() {
        let config = StudyConfig::smoke_test(17);
        let flat = Study::run_streaming(&config, &StreamOptions::default());
        let sharded = Study::run_sharded(&config, &ShardOptions::default());
        assert_eq!(sharded.shards.len(), 1);
        assert_eq!(sharded.aggregators, 1);
        assert_eq!(sharded.data.total_records, flat.total_records);
        assert_eq!(sharded.data.stored_bytes, flat.stored_bytes);
        assert_eq!(sharded.data.summary, flat.summary);
    }

    #[test]
    fn shard_reports_partition_the_head_count() {
        let config = StudyConfig::smoke_test(18);
        let sharded = Study::run_sharded(
            &config,
            &ShardOptions {
                shards: 3,
                ..ShardOptions::default()
            },
        );
        assert_eq!(sharded.shards.len(), 3);
        let per_shard: usize = sharded.shards.iter().map(|s| s.total_records).sum();
        assert_eq!(per_shard, sharded.data.total_records);
        let analysed: u64 = sharded.shards.iter().map(|s| s.records).sum();
        assert_eq!(analysed, sharded.data.summary.records);
        for s in &sharded.shards {
            assert!(!s.machines.is_empty());
            assert!(s.peak_state_bytes > 0);
        }
    }
}
