//! Driving one traced workstation through the study period.

use nt_fs::VolumeConfig;
use nt_io::{DiskParams, FastIoVeto, Machine, MachineConfig, ProcessId, SpanFilter};
use nt_obs::{
    FlightEvent, FlightRecorder, HealthFinding, RecorderScope, ShipmentTracer, Telemetry, Watchdog,
};
use nt_sim::{rng_for, Engine, SimDuration, SimRng, SimTime};
use nt_trace::{MachineId, RecordSink, Snapshot, SnapshotWalker, TraceFilter};
use nt_workload::{
    plan::{run_plan, run_plan_keep_open},
    users::WorkingSet,
    ContentBuilder, ContentPlan, UsageCategory, UserModel,
};
use rand::Rng;

use crate::config::{MachineSpec, StudyConfig};
use crate::fault::MachineFaults;

/// One workstation mid-flight: the machine, its user model and the
/// bookkeeping the §3 agent performs.
pub struct MachineRun {
    /// The collection-server identity of this machine.
    pub id: MachineId,
    /// The usage category (drives analysis breakdowns).
    pub category: UsageCategory,
    machine: Machine<TraceFilter>,
    user: UserModel,
    rng: SimRng,
    /// Snapshots taken so far.
    pub snapshots: Vec<Snapshot>,
    telemetry: Telemetry,
    /// Simulated cadence of the gauge/counter sampler; `None` when
    /// telemetry is off (the engine then carries no sampler events).
    sample_interval: Option<SimDuration>,
    /// Flight-recorder handle; off unless armed via
    /// [`MachineRun::set_instruments`].
    recorder: FlightRecorder,
    /// Health watchdog; `None` unless armed (findings then ride the
    /// telemetry sampler cadence).
    watchdog: Option<Watchdog>,
    /// Findings the watchdog raised during the run, in sample order.
    health: Vec<HealthFinding>,
    /// The fault plan's squeezed buffer capacity, remembered so arming
    /// the recorder can log the squeeze it missed at build time.
    squeezed_capacity: Option<usize>,
}

impl MachineRun {
    /// Builds the machine for a spec: volumes, §5-like initial content,
    /// working set, user model, filter driver.
    pub fn build(config: &StudyConfig, index: usize, spec: &MachineSpec) -> Self {
        Self::build_with_faults(config, index, spec, &MachineFaults::default())
    }

    /// [`MachineRun::build`] under a fault schedule: a squeezed buffer
    /// capacity shrinks the agent's storage buffers. The machine's
    /// workload RNG stream is untouched by the fault layer, so a clean
    /// schedule builds a bit-identical machine.
    pub fn build_with_faults(
        config: &StudyConfig,
        index: usize,
        spec: &MachineSpec,
        faults: &MachineFaults,
    ) -> Self {
        let id = MachineId(index as u32);
        let mut rng = rng_for(config.seed, &[index as u64]);
        let mut machine_config = MachineConfig {
            seed: rng.gen(),
            ..MachineConfig::default()
        };
        machine_config.disable_fastio = config.disable_fastio;
        machine_config.cache.readahead_enabled = !config.disable_readahead;
        machine_config.cache.force_write_through = config.force_write_through;
        let telemetry = match config.telemetry.options() {
            Some(opts) => Telemetry::for_machine(id.0, opts),
            None => Telemetry::off(),
        };
        let mut filter = match faults.buffer_capacity {
            Some(cap) => TraceFilter::with_capacity(id, cap),
            None => TraceFilter::new(id),
        };
        filter.set_telemetry(telemetry.clone());
        let mut machine = Machine::new(machine_config, filter);
        machine.set_telemetry(telemetry.clone());
        if config.telemetry.options().is_some() {
            // Dispatch spans ride the driver stack: the span layer sits
            // above the trace agent and brackets every packet's descent.
            machine.attach_filter(Box::new(SpanFilter::new(telemetry.clone())));
        }
        if config.force_irp_fallback {
            machine.attach_filter(Box::new(FastIoVeto));
        }

        // §2 hardware: scientific machines have 9–18 GB SCSI disks,
        // everyone else 2–6 GB IDE.
        let (capacity, disk) = match spec.category {
            UsageCategory::Scientific => (rng.gen_range(9..=18u64) << 30, DiskParams::local_scsi()),
            _ => (rng.gen_range(2..=6u64) << 30, DiskParams::local_ide()),
        };
        // §2/§3.1: the fleet mixed FAT and NTFS; FAT volumes do not
        // maintain creation or last-access times, which the §5 analysis
        // has to cope with.
        let use_fat = !matches!(spec.category, UsageCategory::Scientific) && rng.gen_bool(0.25);
        let volume_config = if use_fat {
            VolumeConfig::local_fat(capacity)
        } else {
            VolumeConfig::local_ntfs(capacity)
        };
        let local = machine.add_local_volume('C', volume_config, disk);
        let share = machine.add_share(
            "fileserv",
            &format!("{}$", spec.user),
            VolumeConfig::local_ntfs(2 << 30),
            DiskParams::network_share(),
        );

        // Initial content.
        let mut plan = match spec.category {
            UsageCategory::Pool => ContentPlan::developer(&spec.user),
            _ => ContentPlan::desktop(&spec.user),
        };
        plan.target_files = config.files_per_volume;
        plan.web_cache_files = config.web_cache_files;
        {
            let vol = machine
                .namespace_mut()
                .volume_mut(local)
                .expect("local volume exists");
            ContentBuilder::build(vol, &plan, SimTime::ZERO, &mut rng)
                .expect("initial content fits the volume");
        }
        // Scientific machines get their large data sets.
        if spec.category == UsageCategory::Scientific {
            let vol = machine
                .namespace_mut()
                .volume_mut(local)
                .expect("local volume exists");
            let root = vol.root();
            let data = vol.mkdir(root, "data", SimTime::ZERO).expect("fresh dir");
            for i in 0..6 {
                let f = vol
                    .create_file(data, &format!("run{i}.mat"), SimTime::ZERO)
                    .expect("fresh file");
                // §6.1: 100–300 MB simulation files.
                let size = rng.gen_range(100..300u64) << 20;
                vol.set_file_size(f, size, SimTime::ZERO)
                    .expect("capacity reserved for data sets");
            }
        }
        // The user's share holds some documents.
        {
            let vol = machine
                .namespace_mut()
                .volume_mut(share)
                .expect("share volume exists");
            let plan = ContentPlan::user_share(150);
            ContentBuilder::build(vol, &plan, SimTime::ZERO, &mut rng).expect("share content fits");
        }

        let ws = {
            let vol = machine.namespace().volume(local).expect("local volume");
            WorkingSet::sample(local, vol, 1_500)
        };
        let user = UserModel::new(spec.category, &spec.user, local, Some(share), ws);
        MachineRun {
            id,
            category: spec.category,
            machine,
            user,
            rng,
            snapshots: Vec::new(),
            telemetry,
            sample_interval: config
                .telemetry
                .options()
                .map(|o| o.sample_interval)
                .filter(|d| *d > SimDuration::ZERO && *d < SimDuration::MAX),
            recorder: FlightRecorder::off(),
            watchdog: None,
            health: Vec::new(),
            squeezed_capacity: faults.buffer_capacity,
        }
    }

    /// Arms the observability instruments on this machine: the shipment
    /// tracer and flight recorder hook into the agent's delivery path,
    /// and (when `watchdogs` is set) health findings are evaluated on
    /// the telemetry sampler cadence. Off handles make this a no-op, so
    /// the study drivers call it unconditionally after build.
    pub fn set_instruments(
        &mut self,
        tracer: &ShipmentTracer,
        recorder: &FlightRecorder,
        watchdogs: bool,
    ) {
        self.machine
            .observer_mut()
            .set_shipment_hooks(tracer.clone(), recorder.clone());
        self.recorder = recorder.clone();
        if watchdogs {
            self.watchdog = Some(Watchdog::new());
        }
        if let Some(capacity) = self.squeezed_capacity {
            self.recorder.record(
                RecorderScope::Machine(self.id.0),
                FlightEvent::BufferSqueezed {
                    capacity: capacity as u64,
                },
            );
        }
    }

    /// Drains the findings the watchdog raised during the run.
    pub fn take_health(&mut self) -> Vec<HealthFinding> {
        std::mem::take(&mut self.health)
    }

    /// Latest simulated tick a shipment delivery succeeded at (0 when
    /// none did) — feeds the post-run shard-stall check.
    pub fn last_delivery_ticks(&self) -> u64 {
        self.machine.observer().last_delivery_ticks()
    }

    /// Takes a §3.1 snapshot of every volume.
    pub fn take_snapshot(&mut self, now: SimTime) {
        self.snapshots.extend(SnapshotWalker::walk_namespace(
            self.machine.namespace(),
            now,
        ));
    }

    /// Runs the machine for the configured duration, shipping trace
    /// buffers into `server`, and returns the end-of-run metrics.
    pub fn simulate<S: RecordSink + 'static>(&mut self, config: &StudyConfig, server: &mut S) {
        self.simulate_with_faults(config, &MachineFaults::default(), server)
    }

    /// [`MachineRun::simulate`] under a fault schedule: the agent
    /// suspends during its outage windows (losing what it would have
    /// recorded), shipping retries with backoff when the collectors
    /// refuse delivery, and the network link drops during partition
    /// windows, failing requests against remote volumes.
    pub fn simulate_with_faults<S: RecordSink + 'static>(
        &mut self,
        config: &StudyConfig,
        faults: &MachineFaults,
        server: &mut S,
    ) {
        let end = SimTime::ZERO + config.duration;
        self.take_snapshot(SimTime::ZERO);

        // Logon: winlogon syncs the profile (§5), then the loadwc-style
        // services open their session-long handles (§8.1 — the far tail
        // of figure 12).
        let mut now = SimTime::from_millis(self.rng.gen_range(10..2_000));
        let logon = self.user.logon_plan(&mut self.rng);
        now = run_plan(&mut self.machine, ProcessId(1), &logon, now).end;
        let persistent_targets: Vec<_> = self.user.ws.docs.iter().take(10).cloned().collect();
        let service_plan = nt_workload::apps::persistent_service_open(
            self.user.local,
            &persistent_targets,
            &mut self.rng,
        );
        let (sstats, mut persistent_handles) =
            run_plan_keep_open(&mut self.machine, ProcessId(7), &service_plan, now);
        now = sstats.end;

        // The shell keeps the profile directory open and watched for the
        // whole session (explorer's change notifications).
        let profile_dir =
            nt_fs::NtPath::parse(&nt_workload::filetypes::paths::profile_of(&self.user.user));
        let (reply, shell_handle) = self.machine.create(
            ProcessId(2),
            self.user.local,
            &profile_dir,
            nt_io::AccessMode::Control,
            nt_io::Disposition::Open,
            nt_io::CreateOptions {
                directory: true,
                ..nt_io::CreateOptions::default()
            },
            now,
        );
        now = reply.end;
        if let Some(h) = shell_handle {
            now = self.machine.watch_directory(h, now).end;
            persistent_handles.push(h);
        }

        // The tracing period proper runs on the discrete-event engine:
        // sessions, lazy-writer scans, agent shipping, snapshots and the
        // §3.4 server noise are all timed events over this world.
        struct World<'a, S: RecordSink> {
            run: &'a mut MachineRun,
            server: &'a mut S,
            end: SimTime,
            snapshot_interval: SimDuration,
            /// Delay before the next shipping retry after a refusal;
            /// doubles per refusal, resets on success.
            ship_backoff: SimDuration,
            shell_watch: Option<nt_io::HandleId>,
            // §7: applications start, live a heavy-tailed lifetime, exit.
            live: Vec<(ProcessId, SimTime)>,
            next_pid: u32,
            sample_every: Option<SimDuration>,
        }
        fn lazy_tick<S: RecordSink + 'static>(
            w: &mut World<'_, S>,
            eng: &mut Engine<World<'_, S>>,
        ) {
            w.run.machine.lazy_tick(eng.now());
            if eng.now() < w.end {
                eng.schedule_in(SimDuration::from_secs(1), lazy_tick);
            }
        }
        // The telemetry sampler: reads gauges off the machine and the
        // engine, touches no RNG and no machine state, and re-arms on
        // aligned multiples of the cadence so stamps line up across the
        // fleet for exact aggregation. Only scheduled when telemetry is
        // on, so a disabled run carries zero extra events.
        fn sample<S: RecordSink + 'static>(w: &mut World<'_, S>, eng: &mut Engine<World<'_, S>>) {
            use nt_obs::SeriesKind::{Counter, Gauge};
            let m = &w.run.machine;
            let io = m.metrics();
            let ops = io.opens
                + io.open_failures
                + io.read_dispatches
                + io.write_dispatches
                + io.control_ops
                + io.cleanups
                + io.closes;
            let lost = m.observer().ledger().lost();
            w.run.telemetry.record_many(
                eng.now(),
                &[
                    (
                        "cache.resident_bytes",
                        Gauge,
                        m.cache_resident_bytes() as f64,
                    ),
                    ("cache.dirty_bytes", Gauge, m.residual_dirty_bytes() as f64),
                    (
                        "cache.map_inits",
                        Counter,
                        m.cache_metrics().cache_inits as f64,
                    ),
                    ("engine.queue_depth", Gauge, eng.queue_depth() as f64),
                    ("engine.events_fired", Counter, eng.events_fired() as f64),
                    ("io.open_handles", Gauge, m.open_handles() as f64),
                    ("io.ops", Counter, ops as f64),
                    ("io.bytes_read", Counter, io.bytes_read as f64),
                    ("io.bytes_written", Counter, io.bytes_written as f64),
                    ("trace.lost_records", Counter, lost as f64),
                ],
            );
            // Health watchdogs ride the same deterministic cadence. The
            // inputs are all simulated quantities (ledger counters and
            // taken-but-undelivered batches), never live channel depths.
            let (recorded, pending_batches, pending_records) = {
                let agent = w.run.machine.observer();
                (
                    agent.ledger().recorded,
                    agent.pending_batches() as u64,
                    agent.pending_records() as u64,
                )
            };
            let (machine_id, ticks) = (w.run.id.0, eng.now().ticks());
            if let Some(wd) = w.run.watchdog.as_mut() {
                for f in wd.sample(
                    machine_id,
                    ticks,
                    recorded,
                    lost,
                    pending_batches,
                    pending_records,
                ) {
                    w.run.recorder.record(
                        RecorderScope::Machine(machine_id),
                        FlightEvent::Finding(f.clone()),
                    );
                    w.run.health.push(f);
                }
            }
            if let Some(d) = w.sample_every {
                if eng.now() < w.end {
                    eng.schedule_at(eng.now() + d, sample);
                }
            }
        }
        fn ship<S: RecordSink + 'static>(w: &mut World<'_, S>, eng: &mut Engine<World<'_, S>>) {
            use nt_trace::AgentState;
            let now_ticks = eng.now().ticks();
            // A suspended agent does not ship (§3); delivery resumes on
            // the regular cadence after reconnection.
            let delivered = w.run.machine.observer().state() != AgentState::Connected
                || w.run.machine.observer_mut().ship_at(w.server, now_ticks);
            let next = if delivered {
                w.ship_backoff = SimDuration::from_secs(15);
                SimDuration::from_secs(30)
            } else {
                // Every collector refused: retry with doubling backoff.
                let wait = w.ship_backoff;
                w.ship_backoff = (wait * 2).min(SimDuration::from_secs(240));
                wait
            };
            if eng.now() < w.end {
                eng.schedule_in(next, ship);
            }
        }
        fn snapshot<S: RecordSink + 'static>(w: &mut World<'_, S>, eng: &mut Engine<World<'_, S>>) {
            let at = eng.now();
            w.run.take_snapshot(at);
            if at < w.end {
                eng.schedule_in(w.snapshot_interval, snapshot);
            }
        }
        fn server_noise<S: RecordSink + 'static>(
            w: &mut World<'_, S>,
            eng: &mut Engine<World<'_, S>>,
        ) {
            if !w.run.user.ws.docs.is_empty() {
                let pick = w.run.rng.gen_range(0..w.run.user.ws.docs.len());
                let target = w.run.user.ws.docs[pick].clone();
                let plan = nt_workload::apps::cifs_server_session(&target, &mut w.run.rng);
                // ProcessId(0) is the system process serving remotes.
                run_plan(&mut w.run.machine, ProcessId(0), &plan, eng.now());
            }
            if eng.now() < w.end {
                let gap = SimDuration::from_secs(w.run.rng.gen_range(120..900));
                eng.schedule_in(gap, server_noise);
            }
        }
        fn rearm_watch<S: RecordSink + 'static>(
            w: &mut World<'_, S>,
            eng: &mut Engine<World<'_, S>>,
        ) {
            if let Some(h) = w.shell_watch {
                // Re-arm the shell's change notification (no-op when the
                // previous one is still pending).
                w.run.machine.watch_directory(h, eng.now());
            }
            if eng.now() < w.end {
                eng.schedule_in(SimDuration::from_secs(20), rearm_watch);
            }
        }

        fn session<S: RecordSink + 'static>(w: &mut World<'_, S>, eng: &mut Engine<World<'_, S>>) {
            let now = eng.now();
            let plan = w.run.user.next_plan(&mut w.run.rng);
            // Retire exited processes; launch a new one when few remain
            // or occasionally anyway (application churn).
            w.live.retain(|(_, exit)| *exit > now);
            if w.live.len() < 2 || w.run.rng.gen_bool(0.04) {
                let lifetime =
                    nt_workload::dist::heavy_gap(&mut w.run.rng, SimDuration::from_secs(45), 1.2);
                w.live.push((ProcessId(w.next_pid), now + lifetime));
                w.next_pid += 1;
            }
            let process = w.live[w.run.rng.gen_range(0..w.live.len())].0;
            let stats = run_plan(&mut w.run.machine, process, &plan, now);
            let gap = w.run.user.session_gap(&mut w.run.rng);
            let next = stats.end.max(now) + gap;
            if next < w.end {
                eng.schedule_at(next, session);
            }
        }

        {
            let mut engine: Engine<World<'_, S>> = Engine::new();
            engine.schedule_at(SimTime::from_secs(1).max(now), lazy_tick);
            engine.schedule_at(SimTime::from_secs(30).max(now), ship);
            engine.schedule_at(
                (SimTime::ZERO + config.snapshot_interval).max(now),
                snapshot,
            );
            engine.schedule_at(
                now + SimDuration::from_secs(self.rng.gen_range(60..400)),
                server_noise,
            );
            engine.schedule_at(now, session);
            engine.schedule_in(SimDuration::from_secs(20), rearm_watch);
            let sample_every = self.sample_interval;
            if let Some(d) = sample_every {
                // First sample on the first cadence multiple at or after
                // the logon sequence, keeping stamps fleet-aligned.
                let first = now.ticks().div_ceil(d.ticks()) * d.ticks();
                engine.schedule_at(SimTime::from_ticks(first), sample);
            }
            // Fault windows were materialized up front from the study
            // seed's dedicated fault stream; enact each boundary as a
            // timed event. The connection drops; the agent suspends
            // local tracing until it is re-established (§3).
            for w in &faults.agent_outages {
                let (s, e) = (w.start_ticks, w.end_ticks);
                engine.schedule_at(SimTime::from_ticks(s), move |w: &mut World<'_, S>, _| {
                    w.run
                        .machine
                        .observer_mut()
                        .transition(nt_trace::AgentState::Suspended, s);
                });
                engine.schedule_at(SimTime::from_ticks(e), move |w: &mut World<'_, S>, _| {
                    w.run
                        .machine
                        .observer_mut()
                        .transition(nt_trace::AgentState::Connected, e);
                });
            }
            for w in &faults.partitions {
                let (s, e) = (w.start_ticks, w.end_ticks);
                engine.schedule_at(SimTime::from_ticks(s), move |w: &mut World<'_, S>, _| {
                    w.run.machine.set_network_available(false);
                });
                engine.schedule_at(SimTime::from_ticks(e), move |w: &mut World<'_, S>, _| {
                    w.run.machine.set_network_available(true);
                });
            }
            let mut world = World {
                run: self,
                server,
                end,
                snapshot_interval: config.snapshot_interval,
                ship_backoff: SimDuration::from_secs(15),
                shell_watch: shell_handle,
                live: Vec::new(),
                next_pid: 8,
                sample_every,
            };
            engine.run_until(&mut world, end);
        }

        // Close any fault window still open at period end: the study's
        // shutdown reconnects every agent and heals the network before
        // the final flush.
        self.machine
            .observer_mut()
            .transition(nt_trace::AgentState::Connected, end.ticks());
        self.machine.set_network_available(true);

        // Logoff: the services release their session-long handles.
        let mut t = end;
        for h in persistent_handles {
            t = self.machine.close(h, t).end;
        }
        // Drain: the lazy writer finishes every deferred close before the
        // agent's final flush (big dirty development files can take a
        // while at one burst per scan).
        let mut s = 0;
        while (self.machine.deferred_closes() > 0 || s < 5) && s < 2_000 {
            s += 1;
            self.machine.lazy_tick(end + SimDuration::from_secs(s));
        }
        self.machine.pump(end + SimDuration::from_secs(s + 10));
        self.take_snapshot(end);
        self.machine.observer_mut().final_flush(server);
    }

    /// The machine's I/O counters.
    pub fn io_metrics(&self) -> nt_io::IoMetrics {
        self.machine.metrics()
    }

    /// The agent's end-of-run loss accounting (§3 fault injection).
    pub fn loss_ledger(&self) -> nt_trace::LossLedger {
        self.machine.observer().ledger()
    }

    /// The machine's cache counters (§9).
    pub fn cache_metrics(&self) -> nt_cache::CacheMetrics {
        self.machine.cache_metrics()
    }

    /// The machine's VM counters (§3.3).
    pub fn vm_metrics(&self) -> nt_vm::VmMetrics {
        self.machine.vm_metrics()
    }

    /// Dirty bytes still resident at end of run — the closing balance of
    /// the cache's dirty-lifecycle conservation account.
    pub fn residual_dirty_bytes(&self) -> u64 {
        self.machine.residual_dirty_bytes()
    }

    /// Everything telemetry recorded for this machine; `None` when the
    /// study runs with [`nt_obs::TelemetryConfig::Off`].
    pub fn telemetry_report(&self) -> Option<nt_obs::MachineTelemetry> {
        self.telemetry.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_trace::CollectionServer;

    #[test]
    fn one_machine_runs_and_ships() {
        let config = StudyConfig::smoke_test(7);
        let mut run = MachineRun::build(&config, 0, &config.machines[0]);
        let mut server = CollectionServer::new();
        run.simulate(&config, &mut server);
        assert!(server.total_records() > 100, "records shipped");
        assert!(run.snapshots.len() >= 4, "initial + periodic + final");
        let m = run.io_metrics();
        assert!(m.opens > 10);
        assert!(m.bytes_read + m.bytes_written > 0);
    }

    #[test]
    fn runs_are_reproducible() {
        let config = StudyConfig::smoke_test(9);
        let count = |seed: u64| {
            let mut c = config.clone();
            c.seed = seed;
            let mut run = MachineRun::build(&c, 0, &c.machines[0]);
            let mut server = CollectionServer::new();
            run.simulate(&c, &mut server);
            server.total_records()
        };
        assert_eq!(count(9), count(9), "same seed, same trace");
        assert_ne!(count(9), count(10), "different seed, different trace");
    }
}
