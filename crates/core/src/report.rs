//! Rendering every table and figure of the paper's evaluation.
//!
//! Each function regenerates one artefact from [`StudyData`] as text: the
//! same rows (tables) or series (figures) the paper prints, so a run of
//! the benchmark harness can be compared side-by-side with the published
//! numbers (see EXPERIMENTS.md for that comparison).

use std::fmt::Write as _;

use nt_analysis::{
    activity, arrivals, burstiness, cdf::Cdf, content, dimensions, latency, lifetimes, ops,
    patterns, processes, runs, sessions, sizes, tails,
};
use nt_workload::UsageCategory;

use crate::study::StudyData;

fn render_cdf(out: &mut String, title: &str, unit: &str, cdf: &Cdf, points: usize) {
    let _ = writeln!(out, "  {title} (n={})", cdf.len());
    if cdf.is_empty() {
        let _ = writeln!(out, "    (no samples)");
        return;
    }
    for (x, pct) in cdf.log_points(points) {
        let bar = "#".repeat((pct / 4.0).round() as usize);
        let _ = writeln!(out, "    {x:>12.1} {unit:<6} {pct:>5.1}% {bar}");
    }
    for q in [0.5, 0.75, 0.9] {
        if let Some(v) = cdf.quantile(q) {
            let _ = writeln!(out, "    p{:<4} = {v:.1} {unit}", (q * 100.0) as u32);
        }
    }
}

/// Table 1: the summary of observations, computed from this run.
pub fn table1(data: &StudyData) -> String {
    let ts = &data.trace_set;
    let o = ops::operational_stats(ts);
    let l = latency::path_latencies(ts);
    let lt = lifetimes::lifetimes(ts);
    let act = activity::user_activity(ts);
    let s = sessions::session_durations(ts);
    let sz = sizes::accessed_sizes(ts);
    let cache_reads: (u64, u64) = data
        .machines
        .iter()
        .map(|m| (m.cache.read_hits, m.cache.read_misses))
        .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    let hit_rate = if cache_reads.0 + cache_reads.1 == 0 {
        0.0
    } else {
        cache_reads.0 as f64 / (cache_reads.0 + cache_reads.1) as f64
    };
    let arrival_ticks: Vec<f64> = {
        let t = burstiness::open_arrival_ticks(ts);
        t.windows(2)
            .map(|w| (w[1].saturating_sub(w[0])) as f64)
            .filter(|&g| g > 0.0)
            .collect()
    };
    let alpha = tails::hill_alpha(&arrival_ticks);
    let mut out = String::new();
    let _ = writeln!(out, "Table 1 — summary of observations (this run)");
    let _ = writeln!(
        out,
        "  per-user throughput (10-min avg): {:.1} KB/s (paper: 24.4)",
        act.ten_minutes.throughput_kbs.mean
    );
    let _ = writeln!(
        out,
        "  data sessions open < 10 ms: {:.0}% (paper: ~75%)",
        100.0 * s.data.fraction_at_or_below(10.0)
    );
    let _ = writeln!(
        out,
        "  accessed files < 26 KB: {:.0}% (paper: ~80%)",
        100.0 * sz.all_by_opens.fraction_at_or_below(26.0 * 1024.0)
    );
    let _ = writeln!(
        out,
        "  new files dead within 4 s: {:.0}% (paper: ~80%)",
        100.0 * lt.dead_within_4s
    );
    let _ = writeln!(
        out,
        "  control-only opens: {:.0}% (paper: 74%)",
        100.0 * o.control_only_fraction
    );
    let _ = writeln!(
        out,
        "  reads served from cache: {:.0}% (paper: 60%)",
        100.0 * hit_rate
    );
    let _ = writeln!(
        out,
        "  FastIO share: reads {:.0}% / writes {:.0}% (paper: 59% / 96%)",
        100.0 * l.fastio_read_fraction,
        100.0 * l.fastio_write_fraction
    );
    let _ = writeln!(
        out,
        "  open inter-arrival Hill alpha: {alpha:.2} (paper: 1.2–1.7)"
    );
    let _ = writeln!(
        out,
        "  open failures: {:.1}% (paper: 12%), control failures: {:.1}% (paper: 8%)",
        100.0
            * data
                .machines
                .iter()
                .map(|m| m.io.open_failures as f64)
                .sum::<f64>()
            / (o.opens_ok + o.opens_failed).max(1) as f64,
        100.0 * o.control_failure_rate
    );
    out
}

/// Table 2: user activity at 10-minute and 10-second intervals, with the
/// BSD and Sprite baselines.
pub fn table2(data: &StudyData) -> String {
    use activity::baselines as b;
    let a = activity::user_activity(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(out, "Table 2 — user activity (KB/s; stdev in parens)");
    let _ = writeln!(
        out,
        "  {:<42} {:>10} {:>10} {:>10}",
        "", "NT (sim)", "Sprite", "BSD"
    );
    let row = |out: &mut String, label: &str, nt: String, sp: &str, bsd: &str| {
        let _ = writeln!(out, "  {label:<42} {nt:>10} {sp:>10} {bsd:>10}");
    };
    let _ = writeln!(out, "  -- 10-minute intervals --");
    row(
        &mut out,
        "max active users",
        format!("{}", a.ten_minutes.max_active_users),
        "27",
        "31",
    );
    row(
        &mut out,
        "avg active users",
        format!("{:.1}", a.ten_minutes.active_users.mean),
        "9.1",
        "12.6",
    );
    row(
        &mut out,
        "avg user throughput",
        format!(
            "{:.1} ({:.0})",
            a.ten_minutes.throughput_kbs.mean, a.ten_minutes.throughput_kbs.stdev
        ),
        "8.0 (36)",
        "0.40",
    );
    row(
        &mut out,
        "peak user throughput",
        format!("{:.0}", a.ten_minutes.peak_user_kbs),
        &format!("{:.0}", b::SPRITE_10MIN_PEAK_USER_KBS),
        "NA",
    );
    row(
        &mut out,
        "peak system throughput",
        format!("{:.0}", a.ten_minutes.peak_system_kbs),
        "681",
        "NA",
    );
    let _ = writeln!(out, "  -- 10-second intervals --");
    row(
        &mut out,
        "max active users",
        format!("{}", a.ten_seconds.max_active_users),
        "12",
        "NA",
    );
    row(
        &mut out,
        "avg active users",
        format!("{:.1}", a.ten_seconds.active_users.mean),
        "1.6",
        "2.5",
    );
    row(
        &mut out,
        "avg user throughput",
        format!(
            "{:.1} ({:.0})",
            a.ten_seconds.throughput_kbs.mean, a.ten_seconds.throughput_kbs.stdev
        ),
        "47.0 (268)",
        "1.5",
    );
    row(
        &mut out,
        "peak user throughput",
        format!("{:.0}", a.ten_seconds.peak_user_kbs),
        &format!("{:.0}", b::SPRITE_10SEC_PEAK_USER_KBS),
        "NA",
    );
    row(
        &mut out,
        "peak system throughput",
        format!("{:.0}", a.ten_seconds.peak_system_kbs),
        "9977",
        "NA",
    );
    let _ = writeln!(
        out,
        "  (paper's NT values: 10-min avg {:.1}, peak {:.0}; 10-sec avg {:.1}, peak {:.0})",
        b::NT_10MIN_AVG_USER_KBS,
        b::NT_10MIN_PEAK_USER_KBS,
        b::NT_10SEC_AVG_USER_KBS,
        b::NT_10SEC_PEAK_USER_KBS
    );
    out
}

/// Table 3: access patterns with per-machine ranges.
pub fn table3(data: &StudyData) -> String {
    let t = patterns::access_patterns(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3 — access patterns (mean [min..max] %, W=this run, S=Sprite)"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:<26} {:<26} transfer breakdown (accesses / bytes)",
        "usage", "accesses% W (S)", "bytes% W (S)"
    );
    let fmt_cell =
        |c: &nt_analysis::patterns::Cell| format!("{:.0} [{:.0}..{:.0}]", c.mean, c.min, c.max);
    let mut row = |label: &str,
                   r: &nt_analysis::patterns::Row,
                   s_acc: &str,
                   s_bytes: &str,
                   s_breakdown: [&str; 3]| {
        let _ = writeln!(
            out,
            "  {:<12} {:<26} {:<26}",
            label,
            format!("{} ({})", fmt_cell(&r.share_accesses), s_acc),
            format!("{} ({})", fmt_cell(&r.share_bytes), s_bytes),
        );
        let _ = writeln!(
            out,
            "      whole-file {} / {}   (S {})",
            fmt_cell(&r.whole_accesses),
            fmt_cell(&r.whole_bytes),
            s_breakdown[0]
        );
        let _ = writeln!(
            out,
            "      other-seq  {} / {}   (S {})",
            fmt_cell(&r.seq_accesses),
            fmt_cell(&r.seq_bytes),
            s_breakdown[1]
        );
        let _ = writeln!(
            out,
            "      random     {} / {}   (S {})",
            fmt_cell(&r.random_accesses),
            fmt_cell(&r.random_bytes),
            s_breakdown[2]
        );
    };
    row(
        "read-only",
        &t.read_only,
        "88",
        "80",
        ["78/89", "19/5", "3/7"],
    );
    row(
        "write-only",
        &t.write_only,
        "11",
        "19",
        ["67/69", "29/19", "4/11"],
    );
    row(
        "read/write",
        &t.read_write,
        "1",
        "1",
        ["0/0", "0/0", "100/100"],
    );
    out
}

/// Figures 1–2: sequential run length CDFs.
pub fn fig_runs(data: &StudyData) -> String {
    let r = runs::sequential_runs(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1 — sequential run length, weighted by files");
    render_cdf(&mut out, "read runs", "bytes", &r.read_by_files, 12);
    render_cdf(&mut out, "write runs", "bytes", &r.write_by_files, 12);
    let _ = writeln!(out, "Figure 2 — sequential run length, weighted by bytes");
    render_cdf(&mut out, "read runs", "bytes", &r.read_by_bytes, 12);
    render_cdf(&mut out, "write runs", "bytes", &r.write_by_bytes, 12);
    let _ = writeln!(
        out,
        "  80% run-length mark (reads): {:.0} bytes (paper: ~11 KB)",
        r.read_by_files.quantile(0.8).unwrap_or(0.0)
    );
    out
}

/// Figures 3–4: accessed file-size CDFs.
pub fn fig_sizes(data: &StudyData) -> String {
    let s = sizes::accessed_sizes(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 3 — file size CDF, weighted by opens");
    render_cdf(&mut out, "read-only", "bytes", &s.read_only_by_opens, 12);
    render_cdf(&mut out, "write-only", "bytes", &s.write_only_by_opens, 12);
    render_cdf(&mut out, "read-write", "bytes", &s.read_write_by_opens, 12);
    let _ = writeln!(
        out,
        "Figure 4 — file size CDF, weighted by bytes transferred"
    );
    render_cdf(&mut out, "read-only", "bytes", &s.read_only_by_bytes, 12);
    render_cdf(&mut out, "write-only", "bytes", &s.write_only_by_bytes, 12);
    render_cdf(&mut out, "read-write", "bytes", &s.read_write_by_bytes, 12);
    out
}

/// Figure 5: open-duration CDF, all/local/network.
pub fn fig5(data: &StudyData) -> String {
    let s = sessions::session_durations(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 5 — file open time CDF (data sessions)");
    render_cdf(&mut out, "all files", "ms", &s.data, 12);
    render_cdf(&mut out, "local file system", "ms", &s.data_local, 12);
    render_cdf(&mut out, "network file server", "ms", &s.data_network, 12);
    out
}

/// Figures 6–7: new-file lifetimes.
pub fn fig_lifetimes(data: &StudyData) -> String {
    let l = lifetimes::lifetimes(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 6 — lifetime of new files by deletion method");
    render_cdf(&mut out, "overwrite/truncate", "ms", &l.overwrite_ms, 12);
    render_cdf(&mut out, "explicit delete", "ms", &l.delete_ms, 12);
    let (o, d, t) = l.mechanism_shares;
    let _ = writeln!(
        out,
        "  mechanism shares: overwrite {:.0}% / delete {:.0}% / temporary {:.0}% (paper: 37/62/1)",
        o * 100.0,
        d * 100.0,
        t * 100.0
    );
    // §6.3's close-to-death latencies: overwrites follow the close almost
    // immediately; explicit deletes take seconds.
    let after_close = |kind: lifetimes::DeathKind| {
        Cdf::from_samples(
            lifetimes::deaths_of(&l, kind)
                .filter_map(|de| de.after_close_ticks)
                .map(|g| g as f64 / 10_000.0),
        )
    };
    let oc = after_close(lifetimes::DeathKind::Overwrite);
    let dc = after_close(lifetimes::DeathKind::ExplicitDelete);
    if let (Some(o75), Some(d60)) = (oc.quantile(0.75), dc.quantile(0.6)) {
        let _ = writeln!(
            out,
            "  close-to-overwrite p75: {o75:.2} ms (paper: 0.7 ms); close-to-delete p60: {:.1} s (paper: 1.5 s)",
            d60 / 1000.0
        );
    }
    let _ = writeln!(out, "Figure 7 — lifetime vs size at death (sample)");
    for death in l.deaths.iter().take(25) {
        let _ = writeln!(
            out,
            "    size {:>10} B   lifetime {:>12.3} ms",
            death.size,
            death.lifetime_ticks as f64 / 10_000.0
        );
    }
    let _ = writeln!(
        out,
        "  size-lifetime correlation: {:?} (paper: no statistical justification)",
        l.size_lifetime_correlation
    );
    out
}

/// Figure 8: arrivals at three time scales vs Poisson synthesis.
pub fn fig8(data: &StudyData) -> String {
    let b = burstiness::burstiness(&data.trace_set, data.config.seed);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 8 — open arrivals vs Poisson at three scales");
    for s in &b.scales {
        let _ = writeln!(
            out,
            "  {}s bins: traced mean {:.2}/interval dispersion {:.2} | poisson dispersion {:.2}",
            s.traced.interval_secs,
            s.traced.mean(),
            s.traced.dispersion(),
            s.poisson.dispersion()
        );
    }
    let _ = writeln!(
        out,
        "  (Poisson dispersion stays ~1 at every scale; traced arrivals stay overdispersed)"
    );
    if let Some(base) = b.scales.iter().find(|s| s.traced.interval_secs == 1) {
        let vt = burstiness::variance_time(&base.traced);
        let vt_poisson = burstiness::variance_time(&base.poisson);
        let _ = writeln!(
            out,
            "  variance-time Hurst: traced {:.2} vs poisson {:.2} (H > 0.5 = long-range dependence)",
            vt.hurst, vt_poisson.hurst
        );
    }
    out
}

/// Figure 9: QQ comparison of the arrival sample vs Normal and Pareto.
pub fn fig9(data: &StudyData) -> String {
    let ticks = burstiness::open_arrival_ticks(&data.trace_set);
    let gaps: Vec<f64> = ticks
        .windows(2)
        .map(|w| (w[1].saturating_sub(w[0])) as f64)
        .filter(|&g| g > 0.0)
        .collect();
    let qq = tails::qq_plot(&gaps, 40);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 9 — QQ of open inter-arrivals (ticks)");
    let _ = writeln!(
        out,
        "  mean |relative deviation|: vs Normal {:.2}, vs Pareto {:.2}",
        qq.normal_deviation, qq.pareto_deviation
    );
    let _ = writeln!(out, "  (theoretical, observed) against Pareto:");
    for (t, o) in qq.against_pareto.iter().step_by(5) {
        let _ = writeln!(out, "    {t:>14.0} {o:>14.0}");
    }
    let _ = writeln!(
        out,
        "  verdict: {} (paper: 'an almost perfect match' to Pareto)",
        if qq.pareto_deviation < qq.normal_deviation {
            "Pareto fits better"
        } else {
            "Normal fits better"
        }
    );
    out
}

/// Figure 10: LLCD plot of the arrival tail with the alpha estimate.
pub fn fig10(data: &StudyData) -> String {
    let ticks = burstiness::open_arrival_ticks(&data.trace_set);
    let gaps: Vec<f64> = ticks
        .windows(2)
        .map(|w| (w[1].saturating_sub(w[0])) as f64 / 10_000.0)
        .filter(|&g| g > 0.0)
        .collect();
    let l = tails::llcd(&gaps, 0.1);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 10 — LLCD of open inter-arrivals (ms)");
    for (x, y) in l.points.iter().step_by((l.points.len() / 20).max(1)) {
        let _ = writeln!(out, "    log10(x)={x:>7.2}  log10(P[X>x])={y:>7.2}");
    }
    let _ = writeln!(
        out,
        "  fitted tail slope {:.2} -> alpha = {:.2} (paper: 1.2; 1.2-1.7 across variables)",
        l.tail_slope, l.alpha
    );
    out
}

/// Figure 11: open inter-arrival CDF per usage type.
pub fn fig11(data: &StudyData) -> String {
    let a = arrivals::open_arrivals(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 11 — inter-arrival of open requests");
    render_cdf(&mut out, "open for I/O", "ms", &a.for_io, 12);
    render_cdf(&mut out, "open for control", "ms", &a.for_control, 12);
    let _ = writeln!(
        out,
        "  within 1 ms: {:.0}% (paper: 40%), within 30 ms: {:.0}% (paper: 90%)",
        100.0 * a.all.fraction_at_or_below(1.0),
        100.0 * a.all.fraction_at_or_below(30.0)
    );
    let _ = writeln!(
        out,
        "  active 1-second intervals: {:.0}% (paper: <=24%)",
        100.0 * a.active_second_fraction
    );
    out
}

/// Figure 12: session lifetime CDF per usage type.
pub fn fig12(data: &StudyData) -> String {
    let s = sessions::session_durations(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 12 — file session lifetimes");
    render_cdf(&mut out, "all usage types", "ms", &s.all, 12);
    render_cdf(&mut out, "control operations", "ms", &s.control, 12);
    render_cdf(&mut out, "data operations", "ms", &s.data, 12);
    let _ = writeln!(
        out,
        "  closed within 1 ms: {:.0}% (paper: 40%), within 1 s: {:.0}% (paper: 90%)",
        100.0 * s.all.fraction_at_or_below(1.0),
        100.0 * s.all.fraction_at_or_below(1_000.0)
    );
    out
}

/// Figures 13–14: latency and size per request class.
pub fn fig_paths(data: &StudyData) -> String {
    let p = latency::path_latencies(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 13 — request completion latency");
    render_cdf(&mut out, "FastIO read", "us", &p.fastio_read_latency, 12);
    render_cdf(&mut out, "FastIO write", "us", &p.fastio_write_latency, 12);
    render_cdf(&mut out, "IRP read", "us", &p.irp_read_latency, 12);
    render_cdf(&mut out, "IRP write", "us", &p.irp_write_latency, 12);
    let _ = writeln!(out, "Figure 14 — requested data size");
    render_cdf(&mut out, "FastIO read", "bytes", &p.fastio_read_size, 12);
    render_cdf(&mut out, "FastIO write", "bytes", &p.fastio_write_size, 12);
    render_cdf(&mut out, "IRP read", "bytes", &p.irp_read_size, 12);
    render_cdf(&mut out, "IRP write", "bytes", &p.irp_write_size, 12);
    let _ = writeln!(
        out,
        "  FastIO share: {:.0}% of reads, {:.0}% of writes (paper: 59% / 96%)",
        100.0 * p.fastio_read_fraction,
        100.0 * p.fastio_write_fraction
    );
    out
}

/// §4: the dimension-table drill-down report (the OLAP cube example).
pub fn section4(data: &StudyData) -> String {
    let cube = dimensions::type_cube(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(out, "Section 4 — dimension drill-down (the .mbx example)");
    let _ = writeln!(
        out,
        "  {} opens total; roll-up consistent: {}",
        cube.total.opens,
        cube.consistent()
    );
    let mut tops: Vec<_> = cube.by_top.iter().collect();
    tops.sort_by_key(|(_, m)| std::cmp::Reverse(m.bytes()));
    for (top, m) in tops {
        let _ = writeln!(
            out,
            "  {:?}: {} opens, {:.1} MB, mean session {:.1} ms",
            top,
            m.opens,
            m.bytes() as f64 / 1.0e6,
            m.mean_duration_ms()
        );
        for (leaf, lm) in cube.drill_down(*top).into_iter().take(3) {
            let _ = writeln!(
                out,
                "      {:?}: {} opens, {:.1} MB",
                leaf,
                lm.opens,
                lm.bytes() as f64 / 1.0e6
            );
        }
    }
    out
}

/// §7 (process view): activity is process-controlled.
pub fn section7(data: &StudyData) -> String {
    let a = processes::process_analysis(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(out, "Section 7 — per-process activity");
    let _ = writeln!(
        out,
        "  {} (machine, process) pairs; busiest decile issues {:.0}% of opens",
        a.per_process.len(),
        100.0 * a.top_decile_share
    );
    let _ = writeln!(
        out,
        "  Hill alpha: activity spans {:.2}, files-per-process {:.2} (paper: heavy tails in both)",
        a.span_alpha, a.files_alpha
    );
    let mut rows: Vec<_> = a.per_process.iter().collect();
    rows.sort_by_key(|(_, s)| std::cmp::Reverse(s.opens));
    for ((m, p), s) in rows.into_iter().take(8) {
        let _ = writeln!(
            out,
            "    machine {m:>2} process {p:>2}: {} opens, {} files, {:.1} MB, span {:.0}s, max {} concurrent",
            s.opens,
            s.distinct_files,
            s.bytes as f64 / 1.0e6,
            s.span_ticks() as f64 / 1e7,
            s.max_concurrent_opens
        );
    }
    out
}

/// §5: file-system content report over the snapshots.
pub fn section5(data: &StudyData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Section 5 — file system content");
    for m in &data.machines {
        // First and last snapshot of the local volume (volume 0).
        let locals: Vec<&nt_trace::Snapshot> = m
            .snapshots
            .iter()
            .filter(|s| s.volume == nt_fs::VolumeId(0))
            .collect();
        let (Some(first), Some(last)) = (locals.first(), locals.last()) else {
            continue;
        };
        let stats = content::content_stats(last);
        let _ = writeln!(
            out,
            "  machine {:>2} ({:?}): {} files, {} dirs, {:.1} MB, exe/dll/font {:.0}% of bytes, \
             web cache {} files {:.1} MB, inconsistent times {:.1}%",
            m.id.0,
            m.category,
            stats.files,
            stats.directories,
            stats.total_bytes as f64 / 1.0e6,
            100.0 * stats.exe_dll_font_byte_fraction,
            stats.web_cache_files,
            stats.web_cache_bytes as f64 / 1.0e6,
            100.0 * stats.inconsistent_time_fraction
        );
        if locals.len() >= 2 {
            let churn = content::churn_stats(first, last);
            let _ = writeln!(
                out,
                "      churn over the period: {} files ({} removed), {:.0}% in profile, {:.0}% in web cache",
                churn.churn,
                churn.removed,
                100.0 * churn.profile_fraction,
                100.0 * churn.web_cache_fraction
            );
        }
    }
    out
}

/// §8: operational characteristics report.
pub fn section8(data: &StudyData) -> String {
    let o = ops::operational_stats(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(out, "Section 8 — operational characteristics");
    let _ = writeln!(
        out,
        "  opens: {} ok, {} failed ({:.0}% not-found, {:.0}% collision; paper: 52%/31%)",
        o.opens_ok,
        o.opens_failed,
        100.0 * o.open_fail_not_found,
        100.0 * o.open_fail_collision
    );
    let _ = writeln!(
        out,
        "  open failure rate: {:.1}% (paper: 12%)",
        100.0 * o.opens_failed as f64 / (o.opens_ok + o.opens_failed).max(1) as f64
    );
    let _ = writeln!(
        out,
        "  control-only opens: {:.0}% (paper: 74%)",
        100.0 * o.control_only_fraction
    );
    let _ = writeln!(
        out,
        "  error rates: control {:.1}% (8%), read {:.2}% (0.2%), write {:.2}% (0%)",
        100.0 * o.control_failure_rate,
        100.0 * o.read_failure_rate,
        100.0 * o.write_failure_rate
    );
    let _ = writeln!(
        out,
        "  read gaps: 80% within {:.0} us (paper: 90 us); write gaps: 80% within {:.0} us (paper: 30 us)",
        o.read_gaps_us.quantile(0.8).unwrap_or(0.0),
        o.write_gaps_us.quantile(0.8).unwrap_or(0.0)
    );
    let _ = writeln!(
        out,
        "  512/4096-byte reads: {:.0}% (paper: 59%)",
        100.0 * o.read_512_4096_fraction
    );
    let _ = writeln!(
        out,
        "  read-only files reopened: {:.0}% (paper: 24-40%)",
        100.0 * o.read_reopen_fraction
    );
    let _ = writeln!(
        out,
        "  cleanup->close: reads median {:.0} us (paper: ~4-10 us); writes median {:.0} ms (paper: 1-4 s)",
        o.cleanup_to_close_read_us.median().unwrap_or(0.0),
        o.cleanup_to_close_write_ms.median().unwrap_or(0.0)
    );
    out
}

/// §9: cache-manager report from the per-machine counters.
pub fn section9(data: &StudyData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Section 9 — the cache manager");
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut ra_ios = 0u64;
    let mut lazy = 0u64;
    let mut lazy_bytes = 0u64;
    let mut purged_dirty = 0u64;
    let mut temp_spared = 0u64;
    for m in &data.machines {
        hits += m.cache.read_hits;
        misses += m.cache.read_misses;
        ra_ios += m.cache.readahead_ios;
        lazy += m.cache.lazy_writes;
        lazy_bytes += m.cache.lazy_write_bytes;
        purged_dirty += m.cache.purged_with_dirty;
        temp_spared += m.cache.temporary_bytes_spared;
    }
    let _ = writeln!(
        out,
        "  copy-read hit rate: {:.0}% (paper: 60% of reads from cache)",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );
    // Single-prefetch sufficiency: read sessions needing <= 1 read-ahead.
    let read_sessions: Vec<&nt_analysis::Instance> = data
        .trace_set
        .instances
        .iter()
        .filter(|i| i.reads > 0 && i.writes == 0)
        .collect();
    let single = read_sessions.iter().filter(|i| i.paging_reads <= 1).count();
    let _ = writeln!(
        out,
        "  read sessions satisfied by a single prefetch: {:.0}% (paper: 92%)",
        100.0 * single as f64 / read_sessions.len().max(1) as f64
    );
    let _ = writeln!(out, "  read-ahead I/Os issued: {ra_ios}");
    let _ = writeln!(
        out,
        "  lazy writer: {} paging writes, {:.1} MB",
        lazy,
        lazy_bytes as f64 / 1.0e6
    );
    let bursts = nt_analysis::paging::paging_bursts(&data.trace_set, 1_000_000);
    if let (Some(med), Some(p90)) = (
        bursts.write_burst_requests.median(),
        bursts.write_burst_requests.quantile(0.9),
    ) {
        let _ = writeln!(
            out,
            "  write bursts: median {med:.0} requests, p90 {p90:.0} (paper: groups of 2-8), max request {:.0} KB (paper: up to 64 KB)",
            bursts.write_request_sizes.range().map(|(_, m)| m).unwrap_or(0.0) / 1024.0
        );
    }
    let _ = writeln!(
        out,
        "  files purged with unwritten dirty pages: {purged_dirty} (the §6.3 23%/5% populations)"
    );
    let _ = writeln!(
        out,
        "  bytes the temporary attribute kept off the disk queue: {:.1} MB",
        temp_spared as f64 / 1.0e6
    );
    out
}

/// §10: the FastIO path report.
pub fn section10(data: &StudyData) -> String {
    let p = latency::path_latencies(&data.trace_set);
    let mut out = String::new();
    let _ = writeln!(out, "Section 10 — FastIO");
    let _ = writeln!(
        out,
        "  FastIO carries {:.0}% of reads and {:.0}% of writes (paper: 59% / 96%)",
        100.0 * p.fastio_read_fraction,
        100.0 * p.fastio_write_fraction
    );
    let f = p.fastio_read_latency.median().unwrap_or(0.0);
    let i = p.irp_read_latency.median().unwrap_or(0.0);
    let _ = writeln!(
        out,
        "  median read latency: FastIO {f:.1} us vs IRP {i:.1} us ({:.0}x)",
        if f > 0.0 { i / f } else { 0.0 }
    );
    let _ = writeln!(
        out,
        "  median request size: FastIO read {:.0} B vs IRP read {:.0} B (FastIO skews smaller)",
        p.fastio_read_size.median().unwrap_or(0.0),
        p.irp_read_size.median().unwrap_or(0.0)
    );
    out
}

/// Per-category table-1 style breakdown (a this-reproduction extra).
pub fn category_breakdown(data: &StudyData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Per-category machine counters");
    for cat in UsageCategory::ALL {
        let machines: Vec<_> = data.machines.iter().filter(|m| m.category == cat).collect();
        if machines.is_empty() {
            continue;
        }
        let opens: u64 = machines.iter().map(|m| m.io.opens).sum();
        let bytes: u64 = machines
            .iter()
            .map(|m| m.io.bytes_read + m.io.bytes_written)
            .sum();
        let _ = writeln!(
            out,
            "  {:?}: {} machines, {} opens, {:.1} MB moved",
            cat,
            machines.len(),
            opens,
            bytes as f64 / 1.0e6
        );
    }
    out
}

/// Every figure's primary series as `(name, points)` rows, for CSV
/// export and external plotting.
pub fn csv_series(data: &StudyData) -> Vec<(String, Vec<(f64, f64)>)> {
    let ts = &data.trace_set;
    let mut out = Vec::new();
    let mut push = |name: &str, cdf: &Cdf| {
        out.push((name.to_string(), cdf.log_points(64)));
    };
    let r = runs::sequential_runs(ts);
    push("fig01_read_runs_by_files", &r.read_by_files);
    push("fig01_write_runs_by_files", &r.write_by_files);
    push("fig02_read_runs_by_bytes", &r.read_by_bytes);
    push("fig02_write_runs_by_bytes", &r.write_by_bytes);
    let sz = sizes::accessed_sizes(ts);
    push("fig03_read_only_by_opens", &sz.read_only_by_opens);
    push("fig03_write_only_by_opens", &sz.write_only_by_opens);
    push("fig03_read_write_by_opens", &sz.read_write_by_opens);
    push("fig04_read_only_by_bytes", &sz.read_only_by_bytes);
    push("fig04_write_only_by_bytes", &sz.write_only_by_bytes);
    push("fig04_read_write_by_bytes", &sz.read_write_by_bytes);
    let sd = sessions::session_durations(ts);
    push("fig05_all_files_ms", &sd.data);
    push("fig05_local_ms", &sd.data_local);
    push("fig05_network_ms", &sd.data_network);
    let lt = lifetimes::lifetimes(ts);
    push("fig06_overwrite_ms", &lt.overwrite_ms);
    push("fig06_delete_ms", &lt.delete_ms);
    let ar = arrivals::open_arrivals(ts);
    push("fig11_open_for_io_ms", &ar.for_io);
    push("fig11_open_for_control_ms", &ar.for_control);
    push("fig12_all_ms", &sd.all);
    push("fig12_control_ms", &sd.control);
    push("fig12_data_ms", &sd.data);
    let pl = latency::path_latencies(ts);
    push("fig13_fastio_read_us", &pl.fastio_read_latency);
    push("fig13_fastio_write_us", &pl.fastio_write_latency);
    push("fig13_irp_read_us", &pl.irp_read_latency);
    push("fig13_irp_write_us", &pl.irp_write_latency);
    push("fig14_fastio_read_bytes", &pl.fastio_read_size);
    push("fig14_fastio_write_bytes", &pl.fastio_write_size);
    push("fig14_irp_read_bytes", &pl.irp_read_size);
    push("fig14_irp_write_bytes", &pl.irp_write_size);
    // Figure 8's arrival counts per interval at the three scales.
    {
        let ticks = burstiness::open_arrival_ticks(ts);
        for scale in [1u64, 10, 100] {
            let binned = burstiness::bin_arrivals(&ticks, scale);
            let series: Vec<(f64, f64)> = binned
                .counts
                .iter()
                .enumerate()
                .map(|(i, &c)| (i as f64, c as f64))
                .collect();
            out.push((format!("fig08_arrivals_per_{scale}s"), series));
        }
    }
    // Figure 10's LLCD points.
    let ticks = burstiness::open_arrival_ticks(ts);
    let gaps: Vec<f64> = ticks
        .windows(2)
        .map(|w| (w[1].saturating_sub(w[0])) as f64 / 10_000.0)
        .filter(|&g| g > 0.0)
        .collect();
    let llcd = tails::llcd(&gaps, 0.1);
    out.push(("fig10_llcd_log10".to_string(), llcd.points));
    out
}

/// The complete report: every table, figure and section.
pub fn full_report(data: &StudyData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "NT 4.0 file-system usage study — reproduction run\n\
         machines: {}, period: {}s, records: {}, stored: {:.1} MB\n",
        data.config.machines.len(),
        data.config.duration.as_secs(),
        data.total_records,
        data.stored_bytes as f64 / 1.0e6
    );
    for part in [
        table1(data),
        table2(data),
        table3(data),
        section4(data),
        section7(data),
        fig_runs(data),
        fig_sizes(data),
        fig5(data),
        fig_lifetimes(data),
        fig8(data),
        fig9(data),
        fig10(data),
        fig11(data),
        fig12(data),
        fig_paths(data),
        section5(data),
        section8(data),
        section9(data),
        section10(data),
        category_breakdown(data),
    ] {
        out.push_str(&part);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use crate::study::Study;
    use std::sync::OnceLock;

    fn data() -> &'static StudyData {
        static DATA: OnceLock<StudyData> = OnceLock::new();
        DATA.get_or_init(|| Study::run(&StudyConfig::smoke_test(17)))
    }

    #[test]
    fn every_artefact_renders() {
        let d = data();
        for (name, text) in [
            ("table1", table1(d)),
            ("table2", table2(d)),
            ("table3", table3(d)),
            ("fig_runs", fig_runs(d)),
            ("fig_sizes", fig_sizes(d)),
            ("fig5", fig5(d)),
            ("fig_lifetimes", fig_lifetimes(d)),
            ("fig8", fig8(d)),
            ("fig9", fig9(d)),
            ("fig10", fig10(d)),
            ("fig11", fig11(d)),
            ("fig12", fig12(d)),
            ("fig_paths", fig_paths(d)),
            ("section4", section4(d)),
            ("section5", section5(d)),
            ("section7", section7(d)),
            ("section8", section8(d)),
            ("section9", section9(d)),
            ("section10", section10(d)),
        ] {
            assert!(text.len() > 40, "{name} rendered almost nothing: {text}");
        }
        let full = full_report(d);
        assert!(full.contains("Table 2"));
        assert!(full.contains("Figure 10"));
        assert!(full.contains("Section 9"));
    }

    #[test]
    fn table2_contains_baselines() {
        let t = table2(data());
        assert!(t.contains("Sprite"));
        assert!(t.contains("BSD"));
        assert!(t.contains("10-minute"));
        assert!(t.contains("10-second"));
    }

    #[test]
    fn fig8_reports_three_scales() {
        let f = fig8(data());
        assert!(f.contains("1s bins"));
        assert!(f.contains("10s bins"));
        assert!(f.contains("100s bins"));
    }
}
