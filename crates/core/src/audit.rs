//! Conservation audits and differential cross-checks of the pipeline.
//!
//! The paper's tables are accounting identities over ~190 M records, so
//! the reproduction carries its own bookkeeping: every simulator layer
//! posts debits and credits into [`nt_audit::Ledger`]s —
//! one per machine plus one fleet-global — and
//! [`Study::run_audited`] reconciles them at end of run, failing loudly
//! with the first unbalanced account instead of silently rendering
//! drifted tables. The accounts tie the layers to each other:
//!
//! - the I/O dispatcher's request counts against its §10 path split
//!   (FastIO / IRP / lock conflicts / stat failures);
//! - paging I/O counts and bytes against their originators (cache demand
//!   misses + read-ahead + VM section faults; lazy writer + flushes);
//! - the cache's requested bytes against both the dispatcher's view and
//!   the cache's own hit/resident/pending split;
//! - every newly dirtied byte against its exit route (lazy write, flush,
//!   purge, or residue still dirty at shutdown);
//! - trace events emitted against the agent's intake, the agent's intake
//!   against delivery + loss, delivery against records analysed, and the
//!   per-machine deliveries against the pool's global total.
//!
//! On top sits [`differential_check`]: the same configuration is run
//! through the batch path, the streaming path (with retained fact
//! tables), and trace replay, and the resulting fact tables and replay
//! behaviour are compared row by row — at whatever scale (and under
//! whatever fault plan) the caller configures.

use std::collections::BTreeMap;
use std::fmt;

use nt_audit::{accounts, Imbalance, Ledger};

use crate::config::StudyConfig;
use crate::replay::{replay, ReplayConfig, ReplayReport};
use crate::shard::{ShardOptions, ShardedStudyData};
use crate::study::{StreamOptions, StreamedStudyData, Study, StudyFault};

/// A streamed study together with its reconciled conservation ledgers.
pub struct AuditedStudy {
    /// The study output (streaming pipeline).
    pub data: StreamedStudyData,
    /// One reconciled ledger per machine, in machine order.
    pub ledgers: Vec<Ledger>,
    /// The fleet-global ledger (pool-level record conservation).
    pub fleet: Ledger,
}

impl AuditedStudy {
    /// Every ledger's account-by-account report, for logging.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for l in &self.ledgers {
            out.push_str(&l.report());
        }
        out.push_str(&self.fleet.report());
        out
    }
}

/// Why [`Study::run_audited`] failed.
#[derive(Debug)]
pub enum AuditFailure {
    /// The run itself did not complete (worker or collector panic).
    Study(StudyFault),
    /// The run completed but a conservation account did not balance.
    Drift {
        /// The first unbalanced account.
        imbalance: Imbalance,
        /// The full report of the ledger that failed, for diagnosis.
        report: String,
    },
}

impl fmt::Display for AuditFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditFailure::Study(fault) => fault.fmt(f),
            AuditFailure::Drift { imbalance, report } => {
                write!(f, "{imbalance}\n{report}")
            }
        }
    }
}

impl std::error::Error for AuditFailure {}

impl From<StudyFault> for AuditFailure {
    fn from(fault: StudyFault) -> Self {
        AuditFailure::Study(fault)
    }
}

/// Builds the per-machine and fleet ledgers from a finished run by
/// letting each layer post its own side of every account.
fn build_ledgers(data: &StreamedStudyData) -> (Vec<Ledger>, Ledger) {
    let analysed: BTreeMap<u32, u64> = data.summary.machine_records.iter().copied().collect();
    let mut ledgers = Vec::with_capacity(data.machines.len());
    let mut fleet = Ledger::new("fleet");
    for m in &data.machines {
        let mut ledger = Ledger::new(format!("machine-{}", m.id.0));
        m.io.post_conservation(&mut ledger);
        m.cache
            .post_conservation(m.residual_dirty_bytes, &mut ledger);
        m.vm.post_conservation(&mut ledger);
        m.loss.post_conservation(&mut ledger);
        ledger.credit(
            accounts::ANALYSIS_RECORDS,
            analysed.get(&m.id.0).copied().unwrap_or(0),
        );
        fleet.debit(accounts::POOL_RECORDS, m.loss.delivered);
        ledgers.push(ledger);
    }
    fleet.credit(accounts::POOL_RECORDS, data.total_records as u64);
    (ledgers, fleet)
}

impl Study {
    /// [`Study::run_streaming`] with end-of-run conservation auditing.
    ///
    /// Each machine's layers post their debits and credits into the
    /// machine's ledger; the pool totals post into the fleet ledger; and
    /// every ledger is reconciled before the data is handed back. The
    /// first unbalanced account aborts the run with
    /// [`AuditFailure::Drift`], carrying the offending ledger's full
    /// report — counters that drift apart are a bug in the pipeline, not
    /// a property of the workload, so the caller must never see them as
    /// data.
    pub fn run_audited(
        config: &StudyConfig,
        options: &StreamOptions,
    ) -> Result<AuditedStudy, AuditFailure> {
        let data = Self::try_run_streaming(config, options)?;
        let (ledgers, fleet) = build_ledgers(&data);
        for ledger in ledgers.iter().chain(std::iter::once(&fleet)) {
            if let Err(imbalance) = ledger.reconcile() {
                // Drift is a pipeline bug: capture the black box before
                // surfacing it (a no-op if a loss dump already fired).
                data.dump_flight_recorder(&format!("conservation-drift: {imbalance}"));
                return Err(AuditFailure::Drift {
                    imbalance,
                    report: ledger.report(),
                });
            }
        }
        Ok(AuditedStudy {
            data,
            ledgers,
            fleet,
        })
    }
}

/// A sharded study with reconciled conservation ledgers at every tier:
/// machine, shard collector, and fleet root.
pub struct ShardedAudit {
    /// The study output (sharded streaming pipeline).
    pub data: ShardedStudyData,
    /// One reconciled ledger per machine, in machine order.
    pub ledgers: Vec<Ledger>,
    /// One reconciled ledger per shard collector, in shard order.
    pub shard_ledgers: Vec<Ledger>,
    /// The fleet-root ledger: the flat pool account plus the sharded
    /// roll-up account.
    pub fleet: Ledger,
}

/// Builds the three ledger tiers of a sharded run. Public so the audit
/// suite can rebuild ledgers from deliberately perturbed shard reports
/// and prove the reconciliation names the offending shard.
///
/// - Each **machine** ledger posts the full per-layer accounts, exactly
///   like the flat audit.
/// - Each **shard** ledger balances [`accounts::SHARD_RECORDS`]: the
///   shard's machines' delivered records (debit) against the shard
///   pool's own head-count (credit).
/// - The **fleet** ledger balances [`accounts::POOL_RECORDS`] (every
///   machine's deliveries vs the fleet total, as in the flat audit) and
///   [`accounts::FLEET_ROLLUP_RECORDS`] (per-shard pool totals vs the
///   fleet total) — the roll-up leg that makes a drifting shard visible
///   at the root even when every machine balances.
pub fn sharded_ledgers(data: &ShardedStudyData) -> (Vec<Ledger>, Vec<Ledger>, Ledger) {
    let (ledgers, mut fleet) = build_ledgers(&data.data);
    let mut shard_ledgers = Vec::with_capacity(data.shards.len());
    for report in &data.shards {
        let mut ledger = Ledger::new(format!("shard-{}", report.shard));
        for m in &data.data.machines[report.machines.clone()] {
            ledger.debit(accounts::SHARD_RECORDS, m.loss.delivered);
        }
        ledger.credit(accounts::SHARD_RECORDS, report.total_records as u64);
        shard_ledgers.push(ledger);
        fleet.debit(accounts::FLEET_ROLLUP_RECORDS, report.total_records as u64);
    }
    fleet.credit(
        accounts::FLEET_ROLLUP_RECORDS,
        data.data.total_records as u64,
    );
    (ledgers, shard_ledgers, fleet)
}

impl Study {
    /// [`Study::run_sharded`] with end-of-run conservation auditing
    /// across all three tiers. Reconciliation order is bottom-up —
    /// machines, then shards, then the fleet root — so the first
    /// [`AuditFailure::Drift`] names the lowest tier that broke.
    pub fn run_sharded_audited(
        config: &StudyConfig,
        options: &ShardOptions,
    ) -> Result<ShardedAudit, AuditFailure> {
        let data = Self::try_run_sharded(config, options)?;
        let (ledgers, shard_ledgers, fleet) = sharded_ledgers(&data);
        for ledger in ledgers
            .iter()
            .chain(shard_ledgers.iter())
            .chain(std::iter::once(&fleet))
        {
            if let Err(imbalance) = ledger.reconcile() {
                data.data
                    .dump_flight_recorder(&format!("conservation-drift: {imbalance}"));
                return Err(AuditFailure::Drift {
                    imbalance,
                    report: ledger.report(),
                });
            }
        }
        Ok(ShardedAudit {
            data,
            ledgers,
            shard_ledgers,
            fleet,
        })
    }
}

/// Row-level drift of one fact table between the batch and streaming
/// builds.
#[derive(Clone, Copy, Debug)]
pub struct TableDrift {
    /// Table name (`records`, `instances`, `names`).
    pub table: &'static str,
    /// Rows in the batch-built table.
    pub batch_rows: usize,
    /// Rows in the streaming-built table.
    pub streaming_rows: usize,
    /// Rows that differ (position-wise for ordered tables, key-wise for
    /// the name map), plus rows present on only one side.
    pub mismatches: usize,
}

impl TableDrift {
    /// True when the two builds agree exactly.
    pub fn clean(&self) -> bool {
        self.mismatches == 0 && self.batch_rows == self.streaming_rows
    }
}

/// What [`differential_check`] produces.
#[derive(Debug)]
pub struct DifferentialReport {
    /// Per-table drift, batch vs streaming.
    pub tables: Vec<TableDrift>,
    /// The batch-built tables replayed through a fresh stack.
    pub replay_batch: ReplayReport,
    /// The streaming-built tables replayed identically.
    pub replay_streaming: ReplayReport,
    /// Records collected by the batch run.
    pub batch_records: usize,
    /// Records collected by the streaming run.
    pub streaming_records: usize,
}

impl DifferentialReport {
    /// True when every table matches and the two replays behaved
    /// identically.
    pub fn clean(&self) -> bool {
        self.tables.iter().all(TableDrift::clean) && self.replays_agree()
    }

    /// True when replaying either build drives the fresh stack the same
    /// way (a drift here with clean tables means replay is order- or
    /// content-sensitive to something the row comparison missed).
    pub fn replays_agree(&self) -> bool {
        let a = &self.replay_batch;
        let b = &self.replay_streaming;
        (
            a.replayed_requests,
            a.skipped_records,
            a.read_hits,
            a.read_misses,
            a.fastio_reads,
            a.irp_reads,
            a.paging_reads,
            a.paging_writes,
            a.demand_read_bytes,
            a.readahead_bytes,
        ) == (
            b.replayed_requests,
            b.skipped_records,
            b.read_hits,
            b.read_misses,
            b.fastio_reads,
            b.irp_reads,
            b.paging_reads,
            b.paging_writes,
            b.demand_read_bytes,
            b.readahead_bytes,
        )
    }

    /// One line per table plus the replay verdict, for logging.
    pub fn render(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for t in &self.tables {
            let state = if t.clean() { "ok" } else { "DRIFT" };
            let _ = writeln!(
                out,
                "  {:<10} batch {:>9} streaming {:>9} mismatched {:>9} {state}",
                t.table, t.batch_rows, t.streaming_rows, t.mismatches
            );
        }
        let _ = writeln!(
            out,
            "  replay     {}",
            if self.replays_agree() { "ok" } else { "DRIFT" }
        );
        out
    }
}

/// Positional mismatch count of two ordered tables: rows that differ at
/// the same index, plus the length difference.
fn slice_mismatches<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let shared = a.len().min(b.len());
    let differing = (0..shared).filter(|&i| a[i] != b[i]).count();
    differing + a.len().abs_diff(b.len())
}

/// Positional mismatch count of two columnar fact tables: rows that
/// differ at the same index, plus the length difference.
fn fact_mismatches(a: &nt_analysis::FactTable, b: &nt_analysis::FactTable) -> usize {
    let shared = a.len().min(b.len());
    let differing = (0..shared)
        .filter(|&i| a.machine_at(i) != b.machine_at(i) || a.get(i) != b.get(i))
        .count();
    differing + a.len().abs_diff(b.len())
}

/// Runs the same configuration through the batch pipeline, the streaming
/// pipeline (with retained fact tables), and trace replay, and compares
/// the three leg by leg. Scale and fault plan come from `config` — this
/// is the harness the audit suite runs well beyond smoke scale, with
/// fault injection active, to prove the paths agree record for record.
pub fn differential_check(
    config: &StudyConfig,
    replay_config: &ReplayConfig,
) -> Result<DifferentialReport, StudyFault> {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(config.machines.len().max(1));
    let batch = Study::try_run_with_workers(config, workers)?;
    let streaming = Study::try_run_streaming(
        config,
        &StreamOptions {
            retain: true,
            ..StreamOptions::default()
        },
    )?;
    let streamed_tables = streaming
        .trace_set
        .as_ref()
        .expect("retain mode keeps the fact tables");

    let bt = &batch.trace_set;
    let mut tables = vec![
        TableDrift {
            table: "records",
            batch_rows: bt.records.len(),
            streaming_rows: streamed_tables.records.len(),
            mismatches: fact_mismatches(&bt.records, &streamed_tables.records),
        },
        TableDrift {
            table: "instances",
            batch_rows: bt.instances.len(),
            streaming_rows: streamed_tables.instances.len(),
            mismatches: slice_mismatches(&bt.instances, &streamed_tables.instances),
        },
    ];
    // The name table is keyed, not ordered: count keys whose values
    // disagree plus keys present on one side only.
    let name_mismatches = bt
        .names
        .iter()
        .filter(|(k, v)| streamed_tables.names.get(*k) != Some(*v))
        .count()
        + streamed_tables
            .names
            .keys()
            .filter(|k| !bt.names.contains_key(*k))
            .count();
    tables.push(TableDrift {
        table: "names",
        batch_rows: bt.names.len(),
        streaming_rows: streamed_tables.names.len(),
        mismatches: name_mismatches,
    });

    let replay_batch = replay(bt, replay_config);
    let replay_streaming = replay(streamed_tables, replay_config);
    Ok(DifferentialReport {
        tables,
        replay_batch,
        replay_streaming,
        batch_records: batch.total_records,
        streaming_records: streaming.total_records,
    })
}
