//! What-if replay studies: one trace, many policies, answered as a
//! service.
//!
//! The paper collected its traces so that they "could be used as input
//! for file system simulation studies" (§1, §9). This module is that
//! study mode, promoted from the one-shot [`crate::replay()`] helper into
//! a subsystem that cuts through the whole stack:
//!
//! * **Trace sources.** A study replays from wherever the trace lives —
//!   a live [`TraceSet`] a study just produced ([`LiveSource`]) or an
//!   NTT warehouse directory scanned zero-copy ([`nt_warehouse::Warehouse`]) —
//!   through the one [`TraceSource`] abstraction `nt-warehouse` defines
//!   and the analysis re-ingest shares.
//! * **Variant matrix.** A baseline [`ReplayConfig`] plus named policy
//!   variants: read-ahead depth, lazy-writer cadence, FastIO removal,
//!   cache budget, and the disk latency-model axis (1998 IDE vs
//!   SSD-class [`nt_io::DiskParams`]).
//! * **Scheduling.** Every (variant × machine) cell is one task on the
//!   `nt-trace` work-stealing pool; results land in index-ordered
//!   slots, so worker count never changes a single output bit.
//! * **Audit.** Each variant's machines are reconciled by the `nt-audit`
//!   conservation ledger; a drifting variant fails loudly, named by
//!   variant, before any table is built.
//! * **Attribution.** Replay work shows up in the runtime profile under
//!   [`Phase::Replay`].
//!
//! The determinism contract, pinned by `tests/whatif.rs`: same seed +
//! same segments → bit-identical differential fact tables, regardless
//! of worker count and regardless of which source held the trace.

use std::collections::BTreeSet;
use std::fmt;

use nt_analysis::whatif::{DeltaSummary, DifferentialTable, ReplayFacts};
use nt_analysis::TraceSet;
use nt_audit::{accounts, Imbalance, Ledger};
use nt_obs::{Phase, RuntimeProfile, Telemetry};
use nt_trace::steal::run_indexed;
use nt_trace::{NameRecord, TraceRecord};
use nt_warehouse::{NttError, TraceSource};

use crate::replay::{replay_stream, MachineVariantOutcome, ReplayConfig, ReplayStream};

/// A live, in-memory trace as a [`TraceSource`]: the bridge that lets
/// the engine treat "the study that just ran" and "a warehouse on disk"
/// identically. Machines are the fact table's, ascending; each machine
/// contributes one batch in table order (normalization sorts it anyway)
/// and its name dimension sorted by file object.
pub struct LiveSource<'a>(pub &'a TraceSet);

impl TraceSource for LiveSource<'_> {
    fn machines(&self) -> Vec<u32> {
        let mut set: BTreeSet<u32> = self.0.records.iter().map(|(m, _)| m).collect();
        set.extend(self.0.names.keys().map(|(m, _)| *m));
        set.into_iter().collect()
    }

    fn visit_batches(
        &self,
        machine: u32,
        visit: &mut dyn FnMut(u64, Vec<TraceRecord>),
    ) -> Result<(), NttError> {
        let records: Vec<TraceRecord> = self
            .0
            .records
            .iter()
            .filter(|(m, _)| *m == machine)
            .map(|(_, r)| r)
            .collect();
        if !records.is_empty() {
            visit(0, records);
        }
        Ok(())
    }

    fn visit_names(
        &self,
        machine: u32,
        visit: &mut dyn FnMut(u64, NameRecord),
    ) -> Result<(), NttError> {
        let mut names: Vec<(u64, &String)> = self
            .0
            .names
            .iter()
            .filter(|((m, _), _)| *m == machine)
            .map(|((_, fo), path)| (*fo, path))
            .collect();
        names.sort_by_key(|(fo, _)| *fo);
        for (seq, (fo, path)) in names.into_iter().enumerate() {
            visit(
                seq as u64,
                NameRecord {
                    file_object: fo,
                    volume: 0,
                    process: 0,
                    path: path.clone(),
                    at_ticks: 0,
                },
            );
        }
        Ok(())
    }
}

/// Extracts per-machine replay streams from any trace source, in
/// ascending machine order, each normalized to canonical replay order.
pub fn extract_streams(source: &dyn TraceSource) -> Result<Vec<ReplayStream>, NttError> {
    let mut streams = Vec::new();
    for machine in source.machines() {
        let mut records = Vec::new();
        source.visit_batches(machine, &mut |_seq, mut batch| records.append(&mut batch))?;
        let mut names = std::collections::BTreeMap::new();
        source.visit_names(machine, &mut |_seq, n| {
            // Last recorded name wins — the fact-table rule.
            names.insert(n.file_object, n.path);
        })?;
        let mut stream = ReplayStream {
            machine,
            records,
            names,
        };
        stream.normalize();
        streams.push(stream);
    }
    Ok(streams)
}

/// Why a what-if study failed. Everything is loud and named: a study
/// that cannot answer honestly for one variant answers for none.
#[derive(Debug)]
pub enum WhatIfError {
    /// The trace source could not be read.
    Source(NttError),
    /// A replay task panicked on the pool.
    Task {
        /// The variant whose task died.
        variant: String,
        /// The machine it was replaying.
        machine: u32,
        /// The rendered panic payload.
        message: String,
    },
    /// A variant's replayed stack failed conservation reconciliation.
    Drift {
        /// The drifting variant — the name the matrix gave it.
        variant: String,
        /// The first unbalanced account.
        imbalance: Imbalance,
        /// Full ledger report of the unbalanced scope, for the log.
        report: String,
    },
}

impl fmt::Display for WhatIfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhatIfError::Source(e) => write!(f, "what-if trace source failed: {e}"),
            WhatIfError::Task {
                variant,
                machine,
                message,
            } => write!(
                f,
                "what-if replay task died (variant '{variant}', machine {machine}): {message}"
            ),
            WhatIfError::Drift {
                variant,
                imbalance,
                report,
            } => write!(
                f,
                "what-if variant '{variant}' failed conservation: {imbalance}\n{report}"
            ),
        }
    }
}

impl std::error::Error for WhatIfError {}

/// One variant's complete result: per-machine fact rows, the fleet
/// total, and the raw outcomes the audit reconciled.
#[derive(Clone, Debug)]
pub struct VariantRun {
    /// The variant's name ("baseline" for the baseline).
    pub name: String,
    /// Per-machine fact rows, ascending by machine id.
    pub rows: Vec<ReplayFacts>,
    /// The fleet-total row (machine `u32::MAX`).
    pub total: ReplayFacts,
    /// Per-machine outcomes with full layer metrics.
    pub outcomes: Vec<MachineVariantOutcome>,
}

/// What a what-if study answers with.
#[derive(Clone, Debug)]
pub struct WhatIfReport {
    /// Machines replayed, ascending.
    pub machines: Vec<u32>,
    /// The baseline's run.
    pub baseline: VariantRun,
    /// Each variant's run, in matrix order.
    pub variants: Vec<VariantRun>,
    /// Per-variant differential fact tables (variant − baseline), in
    /// matrix order. Bit-identical for a given (trace, matrix) — the
    /// determinism contract.
    pub tables: Vec<DifferentialTable>,
    /// The §9-style delta summary: baseline first, then each variant.
    pub summaries: Vec<DeltaSummary>,
    /// Wall-clock attribution of the study ([`Phase::Replay`] for
    /// extraction and replay work). Not part of the determinism
    /// contract — wall-clock never is.
    pub profile: RuntimeProfile,
}

impl WhatIfReport {
    /// The delta summary rendered as a fixed-width table.
    pub fn render_summary(&self) -> String {
        nt_analysis::whatif::render_delta_table(&self.baseline.name, &self.summaries)
    }
}

/// A what-if study: a baseline policy plus a matrix of named variants,
/// replayed over every machine of a trace source.
///
/// ```
/// use nt_study::{LiveSource, ReplayConfig, Study, StudyConfig, WhatIfStudy};
///
/// let data = Study::run(&StudyConfig::smoke_test(42));
/// let report = WhatIfStudy::new(ReplayConfig::default())
///     .variant("no-readahead", {
///         let mut c = ReplayConfig::default();
///         c.cache.readahead_enabled = false;
///         c
///     })
///     .run(&LiveSource(&data.trace_set))
///     .expect("variants reconcile");
/// assert_eq!(report.variants.len(), 1);
/// assert!(report.summaries[1].hit_rate_delta < 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct WhatIfStudy {
    /// The baseline every variant is differenced against.
    pub baseline: ReplayConfig,
    /// The named variant matrix.
    pub variants: Vec<(String, ReplayConfig)>,
    /// Worker threads for the (variant × machine) task grid; 0 means
    /// one per available core. Never changes a single output bit.
    pub workers: usize,
}

impl WhatIfStudy {
    /// A study with the given baseline and no variants yet.
    pub fn new(baseline: ReplayConfig) -> Self {
        WhatIfStudy {
            baseline,
            variants: Vec::new(),
            workers: 0,
        }
    }

    /// Adds a named policy variant to the matrix.
    pub fn variant(mut self, name: &str, config: ReplayConfig) -> Self {
        self.variants.push((name.to_string(), config));
        self
    }

    /// Sets the worker-thread count (0 = one per core).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Runs the matrix over `source` and builds the report.
    pub fn run(&self, source: &(dyn TraceSource + Sync)) -> Result<WhatIfReport, WhatIfError> {
        let telemetry = Telemetry::profiler();
        let streams = {
            let _span = telemetry.span_child(Phase::Replay, "replay.extract");
            extract_streams(source).map_err(WhatIfError::Source)?
        };
        let machines: Vec<u32> = streams.iter().map(|s| s.machine).collect();

        // The task grid: variant-major, machine-minor; row 0 is the
        // baseline. Slot order is the result order, so scheduling can
        // never reorder anything.
        let mut names: Vec<&str> = vec!["baseline"];
        let mut configs: Vec<&ReplayConfig> = vec![&self.baseline];
        for (name, config) in &self.variants {
            names.push(name);
            configs.push(config);
        }
        let per_variant = streams.len();
        let tasks = configs.len() * per_variant;
        let workers = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        };

        let (slots, panic) = run_indexed(tasks, workers, |i| {
            let task_telemetry = Telemetry::profiler();
            let outcome = {
                let _span = task_telemetry.span_child(Phase::Replay, "replay.machine");
                replay_stream(&streams[i % per_variant], configs[i / per_variant])
            };
            let profile = task_telemetry
                .report()
                .map(|r| r.profile)
                .unwrap_or_default();
            (outcome, profile)
        });
        if let Some(p) = panic {
            return Err(WhatIfError::Task {
                variant: names[p.index / per_variant].to_string(),
                machine: machines
                    .get(p.index % per_variant)
                    .copied()
                    .unwrap_or(u32::MAX),
                message: p.message,
            });
        }

        // Merge profiles in slot order and regroup outcomes by variant.
        let mut profile = RuntimeProfile::default();
        if let Some(report) = telemetry.report() {
            profile.merge(&report.profile);
        }
        let mut per_task: Vec<MachineVariantOutcome> = Vec::with_capacity(tasks);
        for slot in slots {
            let (outcome, task_profile) = slot.expect("pool fills every non-panicked slot");
            profile.merge(&task_profile);
            per_task.push(outcome);
        }

        let mut runs: Vec<VariantRun> = Vec::with_capacity(configs.len());
        for (v, chunk) in per_task.chunks(per_variant.max(1)).enumerate() {
            if chunk.len() < per_variant {
                break; // zero-machine source: no chunks at all
            }
            let outcomes = chunk.to_vec();
            audit_variant(names[v], &outcomes)?;
            let rows: Vec<ReplayFacts> = outcomes.iter().map(|o| o.facts).collect();
            let total = ReplayFacts::fleet_total(&rows);
            runs.push(VariantRun {
                name: names[v].to_string(),
                rows,
                total,
                outcomes,
            });
        }
        if runs.is_empty() {
            // A source with no machines still answers, with empty runs.
            runs = names
                .iter()
                .map(|n| VariantRun {
                    name: n.to_string(),
                    rows: Vec::new(),
                    total: ReplayFacts::fleet_total(&[]),
                    outcomes: Vec::new(),
                })
                .collect();
        }

        let baseline = runs.remove(0);
        let tables: Vec<DifferentialTable> = runs
            .iter()
            .map(|r| DifferentialTable::build(&r.name, &r.rows, &baseline.rows))
            .collect();
        let mut summaries = vec![DeltaSummary::compute(
            &baseline.name,
            &baseline.total,
            &baseline.total,
        )];
        summaries.extend(
            runs.iter()
                .map(|r| DeltaSummary::compute(&r.name, &r.total, &baseline.total)),
        );
        Ok(WhatIfReport {
            machines,
            baseline,
            variants: runs,
            tables,
            summaries,
            profile,
        })
    }

    /// [`WhatIfStudy::run`] over a live fact table.
    pub fn run_trace_set(&self, ts: &TraceSet) -> Result<WhatIfReport, WhatIfError> {
        self.run(&LiveSource(ts))
    }
}

/// Builds one conservation ledger per replayed machine of a variant —
/// the same double-entry accounts a live study reconciles, plus the
/// replay's own record account: every source record fed to the machine
/// must come out as replayed, skipped, or control traffic.
///
/// Public so tests can perturb an outcome and prove the reconciliation
/// failure names the variant it came from.
pub fn variant_ledgers(variant: &str, outcomes: &[MachineVariantOutcome]) -> Vec<Ledger> {
    outcomes
        .iter()
        .map(|o| {
            let mut ledger = Ledger::new(format!("whatif:{variant}:machine:{}", o.machine));
            o.io.post_conservation(&mut ledger);
            o.cache
                .post_conservation(o.residual_dirty_bytes, &mut ledger);
            o.vm.post_conservation(&mut ledger);
            // The replay stack runs under a NullObserver: every emitted
            // trace event is consumed on the spot, so the null sink
            // credits the I/O layer's event debit in full.
            ledger.credit(accounts::TRACE_EVENTS, o.io.events_emitted);
            ledger.debit(accounts::REPLAY_RECORDS, o.facts.source_records);
            ledger.credit(
                accounts::REPLAY_RECORDS,
                o.facts.replayed_requests + o.facts.skipped_records + o.facts.control_records,
            );
            ledger
        })
        .collect()
}

/// Reconciles one variant's outcomes; the first drifting machine fails
/// the study, named by variant.
pub fn audit_variant(variant: &str, outcomes: &[MachineVariantOutcome]) -> Result<(), WhatIfError> {
    for ledger in variant_ledgers(variant, outcomes) {
        if let Err(imbalance) = ledger.reconcile() {
            return Err(WhatIfError::Drift {
                variant: variant.to_string(),
                imbalance,
                report: ledger.report(),
            });
        }
    }
    Ok(())
}
