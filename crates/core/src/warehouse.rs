//! NTT warehouse integration: the live-export tee and the re-ingest
//! driver.
//!
//! Export happens *during* a streaming study: [`super::study::StreamOptions::warehouse`]
//! (or its sharded twin) tees every shipment into a
//! [`nt_warehouse::WarehouseSink`] beside the live analysis sinks, and
//! the segment files are serialized at study finish. Re-ingest is
//! [`Study::ingest_warehouse`]: it opens a warehouse directory and
//! drives the stored batches through a fresh
//! [`nt_analysis::stream::AnalysisSet`] — in the segments' canonical
//! stamp order, batch boundaries intact — so the resulting summary is
//! bit-identical to the live run's (`tests/determinism.rs` pins this at
//! fleet scale, faults included).

use std::path::Path;
use std::sync::Arc;

use nt_analysis::stream::{AnalysisSet, StreamConfig, StudySummary};
use nt_analysis::TraceSet;
use nt_obs::{Hop, Phase, RuntimeProfile, ShipmentTracer, Telemetry};
use nt_trace::{BatchMeta, MachineId, NameRecord, ShipmentConsumer, TraceRecord};
use nt_warehouse::{NttError, TraceSource, Warehouse, WarehouseSink};

use crate::study::{StreamOptions, Study};

/// Forwards every shipment to both the live analysis sinks and the
/// warehouse export. The warehouse copy goes first so the analysis side
/// can take ownership of the (unclonable) record vector.
pub(crate) struct Tee {
    pub(crate) analysis: Arc<AnalysisSet>,
    pub(crate) warehouse: Arc<WarehouseSink>,
    /// Emits the `warehouse.export` hop for each teed batch; the sink
    /// itself stays tracer-free (nt-warehouse does not depend on
    /// nt-obs).
    pub(crate) tracer: ShipmentTracer,
}

impl ShipmentConsumer for Tee {
    fn batch(
        &self,
        machine: MachineId,
        seq: Option<u64>,
        records: Vec<TraceRecord>,
        meta: Option<BatchMeta>,
    ) {
        if let (Some(meta), Some(seq)) = (meta, seq) {
            self.tracer.downstream(
                Hop::Export,
                meta.ctx,
                machine.0,
                seq,
                meta.deliver_ticks,
                records.len() as u64,
            );
        }
        self.warehouse.batch(machine, seq, records.clone(), None);
        self.analysis.batch(machine, seq, records, meta);
    }

    fn name(&self, machine: MachineId, seq: Option<u64>, name: NameRecord) {
        self.warehouse.name(machine, seq, name.clone());
        self.analysis.name(machine, seq, name);
    }
}

/// What re-ingesting a warehouse produces — the same analytical payload
/// as a live streaming run, minus the machine artefacts (counters,
/// snapshots, loss ledgers) that exist only while a fleet is simulated.
pub struct WarehouseIngest {
    /// The merged streaming aggregates.
    pub summary: StudySummary,
    /// The exact fact tables, only under [`StreamOptions::retain`].
    pub trace_set: Option<TraceSet>,
    /// Records ingested across all segments.
    pub records: u64,
    /// Machines the warehouse held, ascending.
    pub machines: Vec<u32>,
    /// Wall-clock attribution: segment validation and decode under
    /// [`Phase::Warehouse`], sink work under [`Phase::Analysis`].
    pub profile: RuntimeProfile,
}

impl Study {
    /// Re-runs the analysis stage over a stored warehouse.
    ///
    /// Ingest goes through the [`TraceSource`] abstraction — the same
    /// seam the what-if replay engine consumes traces through — so both
    /// subsystems see machines ascending and each machine's batches
    /// with ascending sequence stamps in stored order, which *is* the
    /// canonical stamp order the live `MachineSink`s processed (the
    /// export sink reassembles with the same discipline).
    /// `options.retain` and `options.spill_dir` mean what they do for
    /// [`Study::run_streaming`]; `workers` and `warehouse` are ignored
    /// (ingest is sequential and re-exporting what was just read would
    /// be a copy).
    pub fn ingest_warehouse(
        dir: &Path,
        options: &StreamOptions,
    ) -> Result<WarehouseIngest, NttError> {
        let telemetry = Telemetry::profiler();
        let warehouse = {
            let _span = telemetry.span_child(Phase::Warehouse, "warehouse.open");
            Warehouse::open(dir)?
        };
        let machines = warehouse.machines();
        let set = AnalysisSet::new(
            &machines,
            &StreamConfig {
                retain: options.retain,
                spill_dir: options.spill_dir.clone(),
                telemetry: telemetry.clone(),
                ..StreamConfig::default()
            },
        );
        let mut records = 0u64;
        for &machine in &machines {
            let _span = telemetry.span_child(Phase::Warehouse, "warehouse.ingest_segment");
            let id = MachineId(machine);
            warehouse.visit_batches(machine, &mut |seq, decoded| {
                records += decoded.len() as u64;
                set.batch(id, Some(seq), decoded, None);
            })?;
            warehouse.visit_names(machine, &mut |seq, name| {
                set.name(id, Some(seq), name);
            })?;
        }
        let analysis = set.finish();
        let mut profile = RuntimeProfile::default();
        if let Some(report) = telemetry.report() {
            profile.merge(&report.profile);
        }
        Ok(WarehouseIngest {
            summary: analysis.summary,
            trace_set: analysis.trace_set,
            records,
            machines,
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nt-warehouse-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_then_ingest_reproduces_the_live_summary() {
        let dir = temp_dir("smoke");
        let config = StudyConfig::smoke_test(7);
        let options = StreamOptions {
            retain: true,
            warehouse: Some(dir.clone()),
            ..StreamOptions::default()
        };
        let live = Study::run_streaming(&config, &options);
        let stats = live.warehouse.as_ref().expect("export stats present");
        assert_eq!(stats.len(), live.machines.len());
        assert_eq!(
            stats.iter().map(|s| s.records).sum::<u64>(),
            live.summary.records
        );

        let ingest = Study::ingest_warehouse(&dir, &options).expect("warehouse re-ingests");
        assert_eq!(ingest.records, live.summary.records);
        assert_eq!(ingest.machines.len(), live.machines.len());
        // The streaming aggregates must match bit-for-bit; only the
        // scheduling watermarks (parked records, live state bytes) are
        // allowed to differ between a threaded run and a sequential
        // re-ingest.
        let mut a = live.summary;
        let mut b = ingest.summary;
        a.peak_parked_records = 0;
        b.peak_parked_records = 0;
        a.peak_state_bytes = 0;
        b.peak_state_bytes = 0;
        assert_eq!(a, b);
        // Under retain, the exact fact tables match too.
        let live_set = live.trace_set.expect("retained");
        let ingest_set = ingest.trace_set.expect("retained");
        assert_eq!(live_set.records, ingest_set.records);
        assert_eq!(live_set.instances.len(), ingest_set.instances.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_of_a_missing_directory_is_a_typed_error() {
        let err = Study::ingest_warehouse(
            std::path::Path::new("/nonexistent/nt-warehouse"),
            &StreamOptions::default(),
        )
        .err()
        .expect("opening a missing warehouse must fail");
        assert!(matches!(err, NttError::Io(_)), "got {err}");
    }
}
