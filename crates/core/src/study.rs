//! Running the whole deployment and collecting the study data.

use std::sync::Arc;

use std::fmt;

use nt_analysis::stream::{AnalysisSet, StreamConfig, StudySummary};
use nt_analysis::TraceSet;
use nt_obs::{
    FlightRecorder, HealthFinding, HopSpan, MachineTelemetry, Phase, RuntimeProfile,
    ShipmentTracer, Telemetry,
};
use nt_sim::SimDuration;
use nt_trace::{
    CollectionFault, CollectorPool, LossLedger, MachineId, ShipmentConsumer, Snapshot,
    StreamingPool,
};
use nt_workload::UsageCategory;

use crate::config::StudyConfig;
use crate::fault::FaultSchedule;
use crate::run::MachineRun;

/// End-of-run artefacts of one machine.
pub struct MachineOutput {
    /// Collection-server identity.
    pub id: MachineId,
    /// Usage category.
    pub category: UsageCategory,
    /// §3.1 snapshots, in time order (interleaved across volumes).
    pub snapshots: Vec<Snapshot>,
    /// I/O counters.
    pub io: nt_io::IoMetrics,
    /// Cache counters (§9).
    pub cache: nt_cache::CacheMetrics,
    /// VM counters (§3.3).
    pub vm: nt_vm::VmMetrics,
    /// The agent's loss accounting under the fault plan (all-zero on a
    /// clean run).
    pub loss: LossLedger,
    /// Dirty bytes still resident in the cache at end of run — the
    /// closing balance of the dirty-lifecycle conservation account.
    pub residual_dirty_bytes: u64,
    /// Telemetry snapshot (profile, ring series, span-log line count);
    /// `None` when the study runs with telemetry off.
    pub telemetry: Option<MachineTelemetry>,
    /// Health findings the machine's watchdog raised, in sample order;
    /// empty with watchdogs off.
    pub health: Vec<HealthFinding>,
    /// Latest simulated tick a shipment delivery succeeded at (0 when
    /// none did) — feeds the post-run shard-stall check.
    pub last_delivery_ticks: u64,
}

/// Why a study run could not complete cleanly. Collection faults carry
/// on to the caller instead of aborting the process, so a deployment can
/// report what the surviving servers gathered.
#[derive(Debug)]
pub enum StudyFault {
    /// A machine worker thread panicked (payload message attached).
    Worker(String),
    /// A collection-server thread panicked.
    Collection(CollectionFault),
    /// The NTT warehouse export could not be created or written.
    Warehouse(nt_warehouse::NttError),
}

impl fmt::Display for StudyFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyFault::Worker(msg) => write!(f, "machine worker panicked: {msg}"),
            StudyFault::Collection(fault) => fault.fmt(f),
            StudyFault::Warehouse(e) => write!(f, "warehouse export failed: {e}"),
        }
    }
}

impl std::error::Error for StudyFault {}

impl From<CollectionFault> for StudyFault {
    fn from(fault: CollectionFault) -> Self {
        StudyFault::Collection(fault)
    }
}

impl From<nt_warehouse::NttError> for StudyFault {
    fn from(e: nt_warehouse::NttError) -> Self {
        StudyFault::Warehouse(e)
    }
}

/// The per-run observability instruments, built once from the study
/// configuration and shared (by cheap handle clones) across every tier:
/// agents, collector pools, analysis sinks, and the export tee.
pub(crate) struct Instruments {
    /// Causal shipment tracer; off unless
    /// [`nt_obs::TelemetryOptions::trace_shipments`] is set.
    pub(crate) tracer: ShipmentTracer,
    /// Fleet flight recorder; off unless
    /// [`nt_obs::TelemetryOptions::flight_recorder`] is set.
    pub(crate) recorder: FlightRecorder,
    /// Evaluate health watchdogs on the telemetry sampler cadence.
    pub(crate) watchdogs: bool,
    /// Dump the flight recorder at end of run when records were lost.
    pub(crate) dump_on_loss: bool,
}

impl Instruments {
    /// Tick horizon the tracer clamps final-flush spans to: the study
    /// period plus a bound on the shutdown drain (up to 2,000 one-second
    /// lazy-writer catch-up scans plus the closing pump).
    pub(crate) fn horizon_ticks(config: &StudyConfig) -> u64 {
        (config.duration + SimDuration::from_secs(2_100)).ticks()
    }

    /// Instruments for a study configuration; everything off when the
    /// corresponding telemetry knob is.
    pub(crate) fn for_config(config: &StudyConfig) -> Self {
        let Some(opts) = config.telemetry.options() else {
            return Instruments::off();
        };
        Instruments {
            tracer: match opts.trace_shipments {
                true => ShipmentTracer::new(config.seed, Self::horizon_ticks(config)),
                false => ShipmentTracer::off(),
            },
            recorder: match opts.flight_recorder {
                true => FlightRecorder::new(opts.flight_recorder_capacity),
                false => FlightRecorder::off(),
            },
            watchdogs: opts.watchdogs,
            dump_on_loss: opts.dump_on_loss,
        }
    }

    /// Fully disabled instruments.
    pub(crate) fn off() -> Self {
        Instruments {
            tracer: ShipmentTracer::off(),
            recorder: FlightRecorder::off(),
            watchdogs: false,
            dump_on_loss: false,
        }
    }
}

/// Dumps `recorder` into the telemetry artefact directory (exactly once
/// per run — later triggers are no-ops). A dump must never fail the
/// study; write errors are reported and swallowed.
pub(crate) fn dump_flight_recorder(recorder: &FlightRecorder, config: &StudyConfig, reason: &str) {
    let Some(dir) = config.telemetry.options().and_then(|o| o.dir.clone()) else {
        return;
    };
    let path = dir.join("flight-recorder.jsonl");
    if let Err(e) = recorder.dump(&path, reason) {
        eprintln!(
            "nt-obs: cannot dump flight recorder to {}: {e}",
            path.display()
        );
    }
}

/// Writes the Chrome trace-event artefact (`trace.json`) when shipment
/// tracing is on and an artefact directory is configured. Like the
/// other telemetry exports, failure is reported, not fatal.
pub(crate) fn write_trace_artefact(
    config: &StudyConfig,
    tracer: &ShipmentTracer,
    spans: &[HopSpan],
) {
    if !tracer.is_enabled() {
        return;
    }
    let Some(dir) = config.telemetry.options().and_then(|o| o.dir.clone()) else {
        return;
    };
    let path = dir.join("trace.json");
    if let Err(e) = nt_obs::write_chrome_trace(&path, spans) {
        eprintln!("nt-obs: cannot write {}: {e}", path.display());
    }
}

/// One machine's loss accounting, as surfaced by [`StudyData`].
#[derive(Clone, Copy, Debug)]
pub struct LossReport {
    /// Collection-server identity.
    pub machine: MachineId,
    /// The agent's ledger.
    pub ledger: LossLedger,
}

/// Everything the analysis stage consumes.
pub struct StudyData {
    /// The configuration that produced the data.
    pub config: StudyConfig,
    /// The fact tables built from every machine's records.
    pub trace_set: TraceSet,
    /// Per-machine artefacts.
    pub machines: Vec<MachineOutput>,
    /// Total records collected (pre-analysis, §4's head-count).
    pub total_records: usize,
    /// Compressed footprint at the collection server, bytes.
    pub stored_bytes: usize,
    /// Wall-clock attribution across the fleet plus the analysis ingest;
    /// all-zero with telemetry off.
    pub profile: RuntimeProfile,
}

impl StudyData {
    /// Per-machine loss accounting, in machine order.
    pub fn loss_reports(&self) -> Vec<LossReport> {
        self.machines
            .iter()
            .map(|m| LossReport {
                machine: m.id,
                ledger: m.loss,
            })
            .collect()
    }

    /// Records lost across the fleet (overflow + suspension), for quick
    /// degradation checks.
    pub fn total_lost(&self) -> u64 {
        self.machines.iter().map(|m| m.loss.lost()).sum()
    }

    /// The per-driver-layer ns/op budget from the self-profiler: one row
    /// per phase that ran, averaging exclusive host time per operation.
    /// Empty when the study ran with telemetry off.
    pub fn layer_budget(&self) -> Vec<nt_obs::PhaseBudget> {
        self.profile.layer_budget()
    }
}

/// The study driver.
pub struct Study;

impl Study {
    /// Runs every machine of the deployment and builds the fact tables.
    ///
    /// Machines are independent (separate engines, separate RNG streams)
    /// and run on worker threads; their agents stream trace buffers over
    /// channels to a pool of three collection-server threads — the §3
    /// topology — whose stores are merged before analysis.
    pub fn run(config: &StudyConfig) -> StudyData {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(config.machines.len().max(1));
        Self::run_with_workers(config, workers)
    }

    /// [`Study::run`] with an explicit worker count. `run_with_workers(c,
    /// 1)` forces a serial study; the determinism suite asserts it equals
    /// the parallel one, since machines share no mutable state.
    pub fn run_with_workers(config: &StudyConfig, workers: usize) -> StudyData {
        Self::try_run_with_workers(config, workers).unwrap_or_else(|fault| panic!("{fault}"))
    }

    /// [`Study::run_with_workers`], with worker and collection-server
    /// panics surfaced as a [`StudyFault`] instead of re-raised.
    pub fn try_run_with_workers(
        config: &StudyConfig,
        workers: usize,
    ) -> Result<StudyData, StudyFault> {
        // The legacy batch path stores shipments instead of forwarding
        // them, so there is no causal chain to trace — but the flight
        // recorder and watchdogs are agent-side and work the same.
        let mut instruments = Instruments::for_config(config);
        instruments.tracer = ShipmentTracer::off();
        let result = Self::batch_run_inner(config, workers, &instruments);
        if let Err(fault) = &result {
            dump_flight_recorder(
                &instruments.recorder,
                config,
                &format!("study-fault: {fault}"),
            );
        }
        result
    }

    fn batch_run_inner(
        config: &StudyConfig,
        workers: usize,
        instruments: &Instruments,
    ) -> Result<StudyData, StudyFault> {
        let schedule = FaultSchedule::materialize(config, 3);
        let pool = CollectorPool::start_with_outages(3, schedule.collectors.clone());

        let (mut machines, worker_fault) =
            run_machines(config, workers, &schedule, instruments, |id| {
                pool.handle_for(id)
            });
        machines.sort_by_key(|m| m.id);

        // Always join the servers, even after a worker fault: the fault
        // would otherwise leak threads blocked on their channels.
        let server = pool.finish()?;
        if let Some(fault) = worker_fault {
            return Err(fault);
        }
        let total_records = server.total_records();
        let stored_bytes = server.stored_bytes();
        let streams: Vec<(u32, Vec<nt_trace::TraceRecord>, Vec<nt_trace::NameRecord>)> = machines
            .iter()
            .map(|m| {
                (
                    m.id.0,
                    server.records_for(m.id),
                    server.names_for(m.id).into_iter().cloned().collect(),
                )
            })
            .collect();
        // The batch path's analysis ingest happens here, not in the
        // machine workers; give it a study-side profiler span.
        let analysis_telemetry = match config.telemetry.is_on() {
            true => Telemetry::profiler(),
            false => Telemetry::off(),
        };
        let trace_set = {
            let _span = analysis_telemetry.span_child(Phase::Analysis, "analysis.trace_set_build");
            TraceSet::build(streams)
        };
        let profile = fleet_profile(&machines, &analysis_telemetry);
        write_telemetry_artefacts(config, &machines);
        Ok(StudyData {
            config: config.clone(),
            trace_set,
            machines,
            total_records,
            stored_bytes,
            profile,
        })
    }
}

/// Merges every machine's profile with the study-side analysis profiler.
pub(crate) fn fleet_profile(machines: &[MachineOutput], analysis: &Telemetry) -> RuntimeProfile {
    let mut profile = RuntimeProfile::default();
    for m in machines {
        if let Some(t) = &m.telemetry {
            profile.merge(&t.profile);
        }
    }
    if let Some(report) = analysis.report() {
        profile.merge(&report.profile);
    }
    profile
}

/// Writes the fleet-aggregated `timeseries.jsonl` when telemetry is on
/// and an artefact directory is configured. Telemetry export must never
/// fail the study; write errors are reported and swallowed.
fn write_telemetry_artefacts(config: &StudyConfig, machines: &[MachineOutput]) {
    let Some(dir) = config.telemetry.options().and_then(|o| o.dir.as_ref()) else {
        return;
    };
    let labelled: Vec<(u32, String, &MachineTelemetry)> = machines
        .iter()
        .filter_map(|m| {
            m.telemetry
                .as_ref()
                .map(|t| (m.id.0, format!("{:?}", m.category), t))
        })
        .collect();
    let borrowed: Vec<(u32, &str, &MachineTelemetry)> = labelled
        .iter()
        .map(|(id, cat, t)| (*id, cat.as_str(), *t))
        .collect();
    let rows = nt_obs::export::fleet_rows(&borrowed);
    let path = dir.join("timeseries.jsonl");
    if let Err(e) = nt_obs::write_timeseries_jsonl(&path, &rows) {
        eprintln!("nt-obs: cannot write {}: {e}", path.display());
    }
}

/// Simulates every machine on `workers` threads, shipping through the
/// per-machine sinks `handle_for` hands out. A panicked worker becomes a
/// [`StudyFault::Worker`] (first one wins) and the surviving workers'
/// outputs are still returned.
fn run_machines<S, F>(
    config: &StudyConfig,
    workers: usize,
    schedule: &FaultSchedule,
    instruments: &Instruments,
    handle_for: F,
) -> (Vec<MachineOutput>, Option<StudyFault>)
where
    S: nt_trace::RecordSink + 'static,
    F: Fn(MachineId) -> S + Sync,
{
    let n = config.machines.len();
    let mut fault = None;
    let machines = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in partition(n, workers) {
            let handle_for = &handle_for;
            let schedule = &*schedule;
            let instruments = &*instruments;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for index in chunk {
                    let spec = &config.machines[index];
                    let faults = schedule.for_machine(index);
                    let mut run = MachineRun::build_with_faults(config, index, spec, &faults);
                    run.set_instruments(
                        &instruments.tracer,
                        &instruments.recorder,
                        instruments.watchdogs,
                    );
                    let mut sink = handle_for(run.id);
                    run.simulate_with_faults(config, &faults, &mut sink);
                    out.push(MachineOutput {
                        id: run.id,
                        category: run.category,
                        snapshots: std::mem::take(&mut run.snapshots),
                        io: run.io_metrics(),
                        cache: run.cache_metrics(),
                        vm: run.vm_metrics(),
                        loss: run.loss_ledger(),
                        residual_dirty_bytes: run.residual_dirty_bytes(),
                        telemetry: run.telemetry_report(),
                        health: run.take_health(),
                        last_delivery_ticks: run.last_delivery_ticks(),
                    });
                }
                out
            }));
        }
        let mut machines = Vec::new();
        for h in handles {
            match h.join() {
                Ok(out) => machines.extend(out),
                Err(payload) => {
                    fault.get_or_insert(StudyFault::Worker(panic_message(payload)));
                }
            }
        }
        machines
    });
    (machines, fault)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Options for the streaming study driver.
#[derive(Clone, Debug, Default)]
pub struct StreamOptions {
    /// Keep raw records and rebuild the exact fact tables (smoke-scale
    /// identity testing only — defeats the memory bound).
    pub retain: bool,
    /// Spill directory for the tail-analysis sample runs; `None` keeps
    /// them resident.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Worker threads; `None` sizes like [`Study::run`].
    pub workers: Option<usize>,
    /// Export the run as an NTT warehouse into this directory (created
    /// if missing): every shipment is teed into a
    /// [`nt_warehouse::WarehouseSink`] beside the live analysis, one
    /// segment file per machine at finish.
    pub warehouse: Option<std::path::PathBuf>,
}

/// What [`Study::run_streaming`] produces: the per-machine artefacts and
/// the merged online aggregates, with no materialized record stream
/// (unless retained).
pub struct StreamedStudyData {
    /// The configuration that produced the data.
    pub config: StudyConfig,
    /// The merged streaming aggregates.
    pub summary: StudySummary,
    /// The exact fact tables, only under [`StreamOptions::retain`].
    pub trace_set: Option<TraceSet>,
    /// Per-machine artefacts.
    pub machines: Vec<MachineOutput>,
    /// Total records shipped through the pool.
    pub total_records: usize,
    /// Compressed footprint the batches would occupy on a collection
    /// server (accounting parity with the legacy path).
    pub stored_bytes: usize,
    /// Wall-clock attribution across the fleet plus the analysis ingest;
    /// all-zero with telemetry off.
    pub profile: RuntimeProfile,
    /// Per-segment export stats, when [`StreamOptions::warehouse`] (or
    /// the sharded twin) was set; in machine order.
    pub warehouse: Option<Vec<nt_warehouse::SegmentStats>>,
    /// Every causal hop span the shipment tracer captured, sorted by
    /// (machine, batch, hop); empty with tracing off. The same spans are
    /// written to `trace.json` (Chrome trace-event format) when a
    /// telemetry artefact directory is configured.
    pub shipment_spans: Vec<HopSpan>,
    /// Fleet-wide health findings — every machine's watchdog findings in
    /// machine order, plus shard-level findings on the sharded path.
    pub health: Vec<HealthFinding>,
    /// The run's flight recorder handle, so post-run consumers (the
    /// conservation audit, diagnostics tooling) can inspect rings or
    /// trigger the exactly-once dump. Off-handle when disabled.
    pub flight_recorder: FlightRecorder,
}

impl StreamedStudyData {
    /// Records lost across the fleet (overflow + suspension).
    pub fn total_lost(&self) -> u64 {
        self.machines.iter().map(|m| m.loss.lost()).sum()
    }

    /// Dumps the run's flight recorder into the telemetry artefact
    /// directory (exactly once per run; later calls are no-ops). No-op
    /// without a directory or with the recorder off.
    pub fn dump_flight_recorder(&self, reason: &str) {
        dump_flight_recorder(&self.flight_recorder, &self.config, reason);
    }

    /// The per-driver-layer ns/op budget from the self-profiler (see
    /// [`StudyData::layer_budget`]).
    pub fn layer_budget(&self) -> Vec<nt_obs::PhaseBudget> {
        self.profile.layer_budget()
    }
}

impl Study {
    /// [`Study::run`] on the streaming pipeline: agents ship through a
    /// [`StreamingPool`] whose servers forward every buffer into
    /// per-machine [`nt_analysis::MachineSink`]s instead of storing it,
    /// so memory stays bounded by live analysis state — open sessions,
    /// CDF sketches, spill buffers — rather than by trace volume. This
    /// is the path that makes `Scale::Paper` feasible in-process.
    ///
    /// With `options.retain` the sinks additionally keep the stream and
    /// the result carries the exact [`TraceSet`]; the determinism suite
    /// uses that to prove the two paths produce bit-identical fact
    /// tables at smoke scale.
    pub fn run_streaming(config: &StudyConfig, options: &StreamOptions) -> StreamedStudyData {
        Self::try_run_streaming(config, options).unwrap_or_else(|fault| panic!("{fault}"))
    }

    /// [`Study::run_streaming`], with worker and collection-server panics
    /// surfaced as a [`StudyFault`] instead of re-raised.
    pub fn try_run_streaming(
        config: &StudyConfig,
        options: &StreamOptions,
    ) -> Result<StreamedStudyData, StudyFault> {
        let instruments = Instruments::for_config(config);
        let result = Self::streaming_run_inner(config, options, &instruments);
        match &result {
            Err(fault) => dump_flight_recorder(
                &instruments.recorder,
                config,
                &format!("study-fault: {fault}"),
            ),
            Ok(data) if instruments.dump_on_loss && data.total_lost() > 0 => {
                data.dump_flight_recorder(&format!(
                    "loss-on-shutdown: {} records lost",
                    data.total_lost()
                ));
            }
            Ok(_) => {}
        }
        result
    }

    fn streaming_run_inner(
        config: &StudyConfig,
        options: &StreamOptions,
        instruments: &Instruments,
    ) -> Result<StreamedStudyData, StudyFault> {
        let n = config.machines.len();
        let workers = options
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(4)
            })
            .min(n.max(1));
        let schedule = FaultSchedule::materialize(config, 3);
        let machine_ids: Vec<u32> = (0..n as u32).collect();
        let analysis_telemetry = match config.telemetry.is_on() {
            true => Telemetry::profiler(),
            false => Telemetry::off(),
        };
        let consumer = Arc::new(AnalysisSet::new(
            &machine_ids,
            &StreamConfig {
                retain: options.retain,
                spill_dir: options.spill_dir.clone(),
                telemetry: analysis_telemetry.clone(),
                tracer: instruments.tracer.clone(),
                ..StreamConfig::default()
            },
        ));
        let warehouse_sink = match &options.warehouse {
            Some(dir) => Some(Arc::new(nt_warehouse::WarehouseSink::create(
                dir,
                &machine_ids,
            )?)),
            None => None,
        };
        let pool_consumer: Arc<dyn ShipmentConsumer> = match &warehouse_sink {
            Some(sink) => Arc::new(crate::warehouse::Tee {
                analysis: Arc::clone(&consumer),
                warehouse: Arc::clone(sink),
                tracer: instruments.tracer.clone(),
            }),
            None => Arc::clone(&consumer) as Arc<dyn ShipmentConsumer>,
        };
        let pool = StreamingPool::start_traced(
            3,
            schedule.collectors.clone(),
            pool_consumer,
            instruments.tracer.clone(),
            instruments.recorder.clone(),
        );

        let (mut machines, worker_fault) =
            run_machines(config, workers, &schedule, instruments, |id| {
                pool.handle_for(id)
            });
        machines.sort_by_key(|m| m.id);

        // Join the servers first regardless of faults — a panicked
        // worker must not leak forwarding threads.
        let totals = pool.finish()?;
        if let Some(fault) = worker_fault {
            return Err(fault);
        }
        let warehouse_stats = match warehouse_sink {
            Some(sink) => {
                let _span = analysis_telemetry.span_child(Phase::Warehouse, "warehouse.export");
                let sink = Arc::try_unwrap(sink)
                    .unwrap_or_else(|_| panic!("the tee still holds the warehouse after finish"));
                Some(sink.finish()?)
            }
            None => None,
        };
        let consumer = Arc::try_unwrap(consumer)
            .unwrap_or_else(|_| panic!("server threads still hold the consumer after finish"));
        let analysis = consumer.finish();
        let profile = fleet_profile(&machines, &analysis_telemetry);
        write_telemetry_artefacts(config, &machines);
        let shipment_spans = instruments.tracer.take_sorted();
        write_trace_artefact(config, &instruments.tracer, &shipment_spans);
        let health: Vec<HealthFinding> = machines
            .iter()
            .flat_map(|m| m.health.iter().cloned())
            .collect();
        Ok(StreamedStudyData {
            config: config.clone(),
            summary: analysis.summary,
            trace_set: analysis.trace_set,
            machines,
            total_records: totals.total_records,
            stored_bytes: totals.stored_bytes,
            profile,
            warehouse: warehouse_stats,
            shipment_spans,
            health,
            flight_recorder: instruments.recorder.clone(),
        })
    }
}

/// Splits `0..n` into `workers` near-equal index chunks.
fn partition(n: usize, workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.max(1);
    let mut chunks = vec![Vec::new(); workers.min(n.max(1))];
    let k = chunks.len();
    for i in 0..n {
        chunks[i % k].push(i);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything() {
        for (n, w) in [(10, 3), (3, 8), (0, 4), (45, 16)] {
            let chunks = partition(n, w);
            let mut all: Vec<usize> = chunks.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "n={n} w={w}");
        }
    }

    #[test]
    fn smoke_study_produces_everything() {
        let config = StudyConfig::smoke_test(3);
        let data = Study::run(&config);
        assert_eq!(data.machines.len(), 5);
        assert!(data.total_records > 500, "got {}", data.total_records);
        assert!(data.stored_bytes > 0);
        assert!(!data.trace_set.instances.is_empty());
        // Every machine contributed.
        for m in &data.machines {
            assert!(m.io.opens > 0, "machine {:?} was idle", m.id);
            assert!(!m.snapshots.is_empty());
        }
        // Records span multiple machines.
        assert_eq!(data.trace_set.machines().len(), 5);
    }

    #[test]
    fn streaming_smoke_study_produces_summary() {
        let config = StudyConfig::smoke_test(3);
        let data = Study::run_streaming(&config, &StreamOptions::default());
        assert_eq!(data.machines.len(), 5);
        assert!(data.total_records > 500, "got {}", data.total_records);
        assert!(data.stored_bytes > 0);
        // Without retain, no fact tables are materialized …
        assert!(data.trace_set.is_none());
        // … yet the online aggregates saw the whole stream.
        assert_eq!(data.summary.machines, 5);
        assert!(data.summary.ops.opens_ok > 0);
        assert!(data.summary.peak_state_bytes > 0);
    }
}
