//! Orchestration of the Windows NT 4.0 file-system usage study.
//!
//! This crate is the study itself: it stands up a fleet of simulated
//! workstations (each the full `nt-io` stack with the `nt-trace` filter
//! driver attached), drives them with the `nt-workload` user models for a
//! configured tracing period, collects the trace streams and daily
//! snapshots the way §3 of the paper describes, and renders every table
//! and figure of the evaluation through `nt-analysis`.
//!
//! # Examples
//!
//! ```
//! use nt_study::{Study, StudyConfig};
//!
//! // A small deployment: one machine per usage category, short period.
//! let config = StudyConfig::smoke_test(42);
//! let data = Study::run(&config);
//! assert!(data.trace_set.records.len() > 100);
//! let table2 = nt_study::report::table2(&data);
//! assert!(table2.contains("10-minute"));
//! ```

pub mod audit;
pub mod config;
pub mod fault;
pub mod replay;
pub mod report;
pub mod run;
pub mod shard;
pub mod study;
pub mod synthetic;
pub mod warehouse;
pub mod whatif;

pub use audit::{
    differential_check, sharded_ledgers, AuditFailure, AuditedStudy, DifferentialReport,
    ShardedAudit, TableDrift,
};
pub use config::{MachineSpec, StudyConfig};
pub use fault::{FaultPlan, FaultSchedule, MachineFaults};
pub use nt_obs::{
    write_chrome_trace, FlightEvent, FlightRecorder, HealthFinding, Hop, HopSpan, MachineTelemetry,
    Phase, RecorderScope, RuntimeProfile, ShipmentTracer, Telemetry, TelemetryConfig,
    TelemetryOptions, TraceContext, Watchdog,
};
pub use replay::{
    compare_policies, replay, replay_stream, MachineVariantOutcome, ReplayConfig, ReplayReport,
    ReplayStream,
};
pub use run::MachineRun;
pub use shard::{ShardOptions, ShardReport, ShardedStudyData};
pub use study::{
    LossReport, MachineOutput, StreamOptions, StreamedStudyData, Study, StudyData, StudyFault,
};
pub use synthetic::SyntheticBench;
pub use warehouse::WarehouseIngest;
pub use whatif::{
    audit_variant, extract_streams, variant_ledgers, LiveSource, VariantRun, WhatIfError,
    WhatIfReport, WhatIfStudy,
};
