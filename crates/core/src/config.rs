//! Deployment configuration (§2 of the paper).

use nt_obs::TelemetryConfig;
use nt_sim::SimDuration;
use nt_workload::UsageCategory;

use crate::fault::FaultPlan;

/// One traced workstation.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// The §2 usage category; decides hardware, disks and workload mix.
    pub category: UsageCategory,
    /// The user's name (profile directory, share name).
    pub user: String,
}

impl MachineSpec {
    /// A machine of the given category for the numbered user.
    pub fn new(category: UsageCategory, index: usize) -> Self {
        let prefix = match category {
            UsageCategory::WalkUp => "walkup",
            UsageCategory::Pool => "pool",
            UsageCategory::Personal => "user",
            UsageCategory::Administrative => "admin",
            UsageCategory::Scientific => "sci",
        };
        MachineSpec {
            category,
            user: format!("{prefix}{index:02}"),
        }
    }
}

/// The whole deployment.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Master seed; every machine derives an independent stream.
    pub seed: u64,
    /// The traced machines.
    pub machines: Vec<MachineSpec>,
    /// Tracing period.
    pub duration: SimDuration,
    /// Interval between file-system snapshots (§3.1: daily at 4 a.m.;
    /// scaled runs snapshot more often so diffs exist).
    pub snapshot_interval: SimDuration,
    /// Target number of initial files per local volume (§5: 24k–45k; the
    /// scaled presets use less to keep test runtimes sane).
    pub files_per_volume: usize,
    /// Approximate WWW-cache population per profile.
    pub web_cache_files: usize,
    /// Ablation: force every data request down the IRP path (§10).
    pub disable_fastio: bool,
    /// Attach a [`FastIoVeto`](nt_io::FastIoVeto) filter to every
    /// machine, opting the whole FastIO table out so each procedural
    /// call takes its documented IRP fallback. Unlike
    /// [`disable_fastio`](Self::disable_fastio) — a latency-level
    /// ablation that charges the slow path — the veto only relabels the
    /// records (`tests/filter_stack.rs` proves the fact tables match
    /// modulo the `EventKind`).
    pub force_irp_fallback: bool,
    /// Ablation: disable read-ahead (§9.1).
    pub disable_readahead: bool,
    /// Ablation: force write-through caching (§9.2).
    pub force_write_through: bool,
    /// The fault-injection plan (§3: agents suspend on lost connections,
    /// buffers can squeeze, servers and the network can go down). The
    /// default plan injects nothing.
    pub faults: FaultPlan,
    /// Telemetry: spans, time-series sampling and runtime
    /// self-profiling (`nt-obs`). Off in every preset; enabling it must
    /// not change any fact table or ledger (`tests/obs.rs`).
    pub telemetry: TelemetryConfig,
}

impl StudyConfig {
    /// The paper's deployment shape: 45 machines across the five
    /// categories, four weeks of tracing, daily snapshots. This is the
    /// full-fidelity preset; expect a long run and a large trace.
    pub fn paper_scale(seed: u64) -> Self {
        let mut machines = Vec::new();
        // §2: walk-up pool plus group, personal, administrative and
        // scientific machines; the exact split is not published, so the
        // deployment spreads 45 machines across the categories with the
        // office population dominating.
        for i in 0..10 {
            machines.push(MachineSpec::new(UsageCategory::WalkUp, i));
        }
        for i in 0..12 {
            machines.push(MachineSpec::new(UsageCategory::Pool, i));
        }
        for i in 0..14 {
            machines.push(MachineSpec::new(UsageCategory::Personal, i));
        }
        for i in 0..5 {
            machines.push(MachineSpec::new(UsageCategory::Administrative, i));
        }
        for i in 0..4 {
            machines.push(MachineSpec::new(UsageCategory::Scientific, i));
        }
        StudyConfig {
            seed,
            machines,
            duration: SimDuration::from_secs(28 * 86_400),
            snapshot_interval: SimDuration::from_secs(86_400),
            files_per_volume: 28_000,
            web_cache_files: 4_000,
            disable_fastio: false,
            force_irp_fallback: false,
            disable_readahead: false,
            force_write_through: false,
            faults: FaultPlan::none(),
            telemetry: TelemetryConfig::Off,
        }
    }

    /// The default evaluation preset: the full 45-machine fleet for one
    /// simulated hour — enough for every distribution to populate while
    /// keeping the harness fast.
    pub fn evaluation(seed: u64) -> Self {
        let mut c = Self::paper_scale(seed);
        c.duration = SimDuration::from_secs(3_600);
        c.snapshot_interval = SimDuration::from_secs(1_200);
        c.files_per_volume = 6_000;
        c.web_cache_files = 800;
        c
    }

    /// An org-scale deployment: `machines` workstations drawn from the
    /// five §2 usage categories in the paper's 10/12/14/5/4 proportions
    /// (largest-remainder apportionment, so `org_scale(seed, 45)` has
    /// exactly the [`StudyConfig::paper_scale`] roster shape).
    ///
    /// Per-machine content is kept at smoke scale — the point of this
    /// preset is fleet *width* for the sharded collection tree, and a
    /// 10,000-machine run at paper-scale depth would be days of
    /// simulation. Raise `files_per_volume`/`duration` explicitly for a
    /// production-shaped run.
    pub fn org_scale(seed: u64, machines: usize) -> Self {
        let counts = UsageCategory::paper_mix(machines);
        let mut roster = Vec::with_capacity(machines);
        for (&category, &count) in UsageCategory::ALL.iter().zip(counts.iter()) {
            for i in 0..count {
                roster.push(MachineSpec::new(category, i));
            }
        }
        StudyConfig {
            machines: roster,
            duration: SimDuration::from_secs(300),
            snapshot_interval: SimDuration::from_secs(120),
            files_per_volume: 400,
            web_cache_files: 50,
            ..Self::smoke_test(seed)
        }
    }

    /// A tiny preset for unit tests and doc tests: one machine per
    /// category, a few minutes of tracing.
    pub fn smoke_test(seed: u64) -> Self {
        StudyConfig {
            seed,
            machines: UsageCategory::ALL
                .iter()
                .enumerate()
                .map(|(i, &c)| MachineSpec::new(c, i))
                .collect(),
            duration: SimDuration::from_secs(300),
            snapshot_interval: SimDuration::from_secs(120),
            files_per_volume: 1_200,
            web_cache_files: 150,
            disable_fastio: false,
            force_irp_fallback: false,
            disable_readahead: false,
            force_write_through: false,
            faults: FaultPlan::none(),
            telemetry: TelemetryConfig::Off,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_has_45_machines() {
        let c = StudyConfig::paper_scale(1);
        assert_eq!(c.machines.len(), 45);
        assert_eq!(c.duration.as_secs(), 28 * 86_400);
        let sci = c
            .machines
            .iter()
            .filter(|m| m.category == UsageCategory::Scientific)
            .count();
        assert_eq!(sci, 4);
    }

    #[test]
    fn presets_scale_down_consistently() {
        let e = StudyConfig::evaluation(1);
        assert_eq!(e.machines.len(), 45);
        assert!(e.duration.as_secs() <= 3_600);
        let s = StudyConfig::smoke_test(1);
        assert_eq!(s.machines.len(), 5);
        assert!(s.files_per_volume < e.files_per_volume);
    }

    #[test]
    fn org_scale_follows_the_paper_mix() {
        let c = StudyConfig::org_scale(9, 1_000);
        assert_eq!(c.machines.len(), 1_000);
        let count = |cat| c.machines.iter().filter(|m| m.category == cat).count();
        assert_eq!(count(UsageCategory::WalkUp), 222);
        assert_eq!(count(UsageCategory::Personal), 311);
        assert_eq!(count(UsageCategory::Scientific), 89);
        // At 45 machines the roster is exactly the paper deployment.
        let paper = StudyConfig::paper_scale(9);
        let small = StudyConfig::org_scale(9, 45);
        let cats = |c: &StudyConfig| {
            c.machines
                .iter()
                .map(|m| format!("{:?}", m.category))
                .collect::<Vec<_>>()
        };
        assert_eq!(cats(&small), cats(&paper));
    }

    #[test]
    fn user_names_are_unique() {
        let c = StudyConfig::paper_scale(1);
        let mut names: Vec<&str> = c.machines.iter().map(|m| m.user.as_str()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
